#include "codec/mpstz.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <fstream>
#include <iterator>
#include <type_traits>
#include <unordered_map>

#include "codec/huffman.hpp"
#include "codec/rle.hpp"
#include "obs/counters.hpp"
#include "obs/spans.hpp"
#include "support/crc32.hpp"
#include "support/digest.hpp"
#include "trace/event_wire.hpp"

namespace mpisect::codec {

namespace {

constexpr std::uint8_t kMethodStored = 0;
constexpr std::uint8_t kMethodRleHuffman = 1;

/// Upper bound on the wire size of one event (kind byte + f64 + a handful
/// of 10-byte varints) — used to reject absurd raw_size index entries
/// before allocating.
constexpr std::uint64_t kMaxEventWireBytes = 80;

// --------------------------------------------------------------------
// Chunk stream model. Events are split into three independently
// compressed streams whose residuals are near zero on periodic traces:
//
//   tags    one byte per event: kind | 0x80 when timed, XORed against
//           the best byte lag (the per-step event pattern repeats, so
//           the stream turns into zero runs).
//   fields  every integer field, zigzag-varint of the residual against
//           a per-kind / per-(kind, peer) / op-chain predictor (see
//           FieldContext below), then XORed against the best byte lag —
//           iterative apps repeat the same message pattern per step, so
//           what survives the predictors cancels against the previous
//           step's bytes.
//   times   per timed event, the 8 bytes of (bits XOR previous timed
//           bits), byte-plane transposed across the chunk — matching
//           exponents and high-mantissa bytes line up into zero planes.
//
// The split is purely an encoding: decode reconstructs the exact Event
// structs, which is what makes the .mpst re-encoding bit-exact.
// --------------------------------------------------------------------

struct ChunkStreams {
  std::vector<std::uint8_t> tags;
  std::vector<std::uint8_t> fields;
  std::vector<std::uint8_t> times;
};

/// Residual of an integer field against its same-kind predecessor.
/// Computed in uint64 (wraparound-exact), zigzagged so small +/- deltas
/// stay small varints.
void put_residual(trace::ByteWriter& w, std::uint64_t cur,
                  std::uint64_t prev) {
  w.varint(trace::zigzag_encode(static_cast<std::int64_t>(cur - prev)));
}

[[nodiscard]] std::uint64_t get_residual(trace::ByteReader& r,
                                         std::uint64_t prev) {
  return prev + static_cast<std::uint64_t>(trace::zigzag_decode(r.varint()));
}

/// Prediction context for the fields stream, reset per chunk. Three
/// predictor families, each chosen for which field repeats under it:
///   by_kind       last event of the same kind (comm, peer, backrefs,
///                 section labels — values that cycle with the kind),
///   by_kind_peer  last same-kind event with the same peer (per-edge
///                 seq/tag/bytes/post_src are constant or +1 per step
///                 along one edge, so these residuals are zero runs),
///   op_chain      the rank-global CPU-op id shared by SendPost,
///                 RecvWait and CollBegin, exactly the monotone chain
///                 the .mpst wire delta-encodes.
struct FieldContext {
  std::array<trace::Event, trace::kEventKindCount> by_kind{};
  std::unordered_map<std::uint64_t, trace::Event> by_kind_peer;
  std::uint64_t op_chain = 0;

  trace::Event& kind_prev(trace::EventKind kind) {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  trace::Event& peer_prev(trace::EventKind kind, int peer) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 32) ^
        static_cast<std::uint32_t>(peer);
    return by_kind_peer[key];  // value-initialized Event on first touch
  }
};

/// Encode one event's integer fields as residual varints. The decode
/// mirror below must read the exact same fields in the exact same order
/// against the exact same predictors.
void put_fields(trace::ByteWriter& w, FieldContext& ctx,
                const trace::Event& ev) {
  using K = trace::EventKind;
  trace::Event& k = ctx.kind_prev(ev.kind);
  switch (ev.kind) {
    case K::SendPost: {
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, static_cast<std::uint64_t>(ev.peer),
                   static_cast<std::uint64_t>(k.peer));
      trace::Event& p = ctx.peer_prev(ev.kind, ev.peer);
      put_residual(w, static_cast<std::uint64_t>(ev.tag),
                   static_cast<std::uint64_t>(p.tag));
      put_residual(w, ev.bytes, p.bytes);
      put_residual(w, ev.seq, p.seq);
      put_residual(w, ev.op, ctx.op_chain);
      ctx.op_chain = ev.op;
      p = ev;
      break;
    }
    case K::SendWait:
      put_residual(w, ev.op, k.op);  // backref
      break;
    case K::RecvPost:
    case K::Probe: {
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, static_cast<std::uint64_t>(ev.peer),
                   static_cast<std::uint64_t>(k.peer));
      trace::Event& p = ctx.peer_prev(ev.kind, ev.peer);
      put_residual(w, ev.seq, p.seq);
      put_residual(w, static_cast<std::uint64_t>(ev.post_src),
                   static_cast<std::uint64_t>(p.post_src));
      put_residual(w, static_cast<std::uint64_t>(ev.tag),
                   static_cast<std::uint64_t>(p.tag));
      p = ev;
      break;
    }
    case K::RecvWait:
      put_residual(w, ev.seq, k.seq);  // backref
      put_residual(w, ev.op, ctx.op_chain);
      ctx.op_chain = ev.op;
      break;
    case K::CollBegin:
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, static_cast<std::uint64_t>(ev.label),
                   static_cast<std::uint64_t>(k.label));
      put_residual(w, static_cast<std::uint64_t>(ev.peer),
                   static_cast<std::uint64_t>(k.peer));
      put_residual(w, ev.bytes, k.bytes);
      put_residual(w, ev.op, ctx.op_chain);
      ctx.op_chain = ev.op;
      break;
    case K::SectionEnter:
    case K::SectionExit:
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, static_cast<std::uint64_t>(ev.label),
                   static_cast<std::uint64_t>(k.label));
      break;
    case K::CommSync:
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, static_cast<std::uint64_t>(ev.peer),
                   static_cast<std::uint64_t>(k.peer));
      put_residual(w, ev.seq, k.seq);
      break;
    case K::Pcontrol:
      put_residual(w, static_cast<std::uint64_t>(ev.peer),
                   static_cast<std::uint64_t>(k.peer));
      put_residual(w, static_cast<std::uint64_t>(ev.label),
                   static_cast<std::uint64_t>(k.label));
      break;
    case K::NbcPost:
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, static_cast<std::uint64_t>(ev.label),
                   static_cast<std::uint64_t>(k.label));
      put_residual(w, static_cast<std::uint64_t>(ev.peer),
                   static_cast<std::uint64_t>(k.peer));
      put_residual(w, ev.bytes, k.bytes);
      put_residual(w, ev.seq, k.seq);  // generations step +1: zero runs
      put_residual(w, ev.op, ctx.op_chain);
      ctx.op_chain = ev.op;
      break;
    case K::NbcComplete:
      put_residual(w, static_cast<std::uint64_t>(ev.comm),
                   static_cast<std::uint64_t>(k.comm));
      put_residual(w, ev.seq, k.seq);
      break;
    case K::CollEnd:
    case K::Finalize:
      break;
  }
  k = ev;
}

void get_fields(trace::ByteReader& r, FieldContext& ctx, trace::Event& ev) {
  using K = trace::EventKind;
  trace::Event& k = ctx.kind_prev(ev.kind);
  switch (ev.kind) {
    case K::SendPost: {
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.peer = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.peer)));
      trace::Event& p = ctx.peer_prev(ev.kind, ev.peer);
      ev.tag = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(p.tag)));
      ev.bytes = get_residual(r, p.bytes);
      ev.seq = get_residual(r, p.seq);
      ev.op = get_residual(r, ctx.op_chain);
      ctx.op_chain = ev.op;
      p = ev;
      break;
    }
    case K::SendWait:
      ev.op = get_residual(r, k.op);
      break;
    case K::RecvPost:
    case K::Probe: {
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.peer = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.peer)));
      trace::Event& p = ctx.peer_prev(ev.kind, ev.peer);
      ev.seq = get_residual(r, p.seq);
      ev.post_src = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(p.post_src)));
      ev.tag = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(p.tag)));
      p = ev;
      break;
    }
    case K::RecvWait:
      ev.seq = get_residual(r, k.seq);
      ev.op = get_residual(r, ctx.op_chain);
      ctx.op_chain = ev.op;
      break;
    case K::CollBegin:
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.label = static_cast<std::uint32_t>(
          get_residual(r, static_cast<std::uint64_t>(k.label)));
      ev.peer = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.peer)));
      ev.bytes = get_residual(r, k.bytes);
      ev.op = get_residual(r, ctx.op_chain);
      ctx.op_chain = ev.op;
      break;
    case K::SectionEnter:
    case K::SectionExit:
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.label = static_cast<std::uint32_t>(
          get_residual(r, static_cast<std::uint64_t>(k.label)));
      break;
    case K::CommSync:
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.peer = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.peer)));
      ev.seq = get_residual(r, k.seq);
      break;
    case K::Pcontrol:
      ev.peer = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.peer)));
      ev.label = static_cast<std::uint32_t>(
          get_residual(r, static_cast<std::uint64_t>(k.label)));
      break;
    case K::NbcPost:
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.label = static_cast<std::uint32_t>(
          get_residual(r, static_cast<std::uint64_t>(k.label)));
      ev.peer = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.peer)));
      ev.bytes = get_residual(r, k.bytes);
      ev.seq = get_residual(r, k.seq);
      ev.op = get_residual(r, ctx.op_chain);
      ctx.op_chain = ev.op;
      break;
    case K::NbcComplete:
      ev.comm = static_cast<int>(
          get_residual(r, static_cast<std::uint64_t>(k.comm)));
      ev.seq = get_residual(r, k.seq);
      break;
    case K::CollEnd:
    case K::Finalize:
      break;
  }
  k = ev;
}

/// Pick the XOR lag that zeroes the most stream bytes. Iterative apps
/// repeat the same per-step pattern, so both the tag stream and the
/// residual fields stream are near-periodic at the per-step byte period;
/// XOR against that lag turns them into almost all zeros, which the RLE
/// stage then collapses. Lag 0 = identity (the baseline zero count).
std::uint64_t best_lag(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kMaxLag = 4096;
  std::uint64_t best = 0;
  std::size_t best_zeros = 0;
  for (const std::uint8_t b : bytes) {
    if (b == 0) ++best_zeros;
  }
  const std::size_t max_lag =
      bytes.empty() ? 0 : std::min(kMaxLag, bytes.size() - 1);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    std::size_t zeros = 0;
    for (std::size_t i = lag; i < bytes.size(); ++i) {
      if (bytes[i] == bytes[i - lag]) ++zeros;
    }
    if (zeros > best_zeros) {
      best_zeros = zeros;
      best = lag;
    }
  }
  return best;
}

std::vector<std::uint8_t> lag_apply(std::span<const std::uint8_t> bytes,
                                    std::uint64_t lag) {
  std::vector<std::uint8_t> out(bytes.begin(), bytes.end());
  if (lag == 0 || lag >= out.size()) return out;
  // Back to front so every XOR reads an original value.
  for (std::size_t i = out.size(); i-- > static_cast<std::size_t>(lag);) {
    out[i] ^= bytes[i - static_cast<std::size_t>(lag)];
  }
  return out;
}

void lag_undo(std::vector<std::uint8_t>& bytes, std::uint64_t lag) {
  if (lag == 0 || lag >= bytes.size()) return;
  // Front to back: earlier bytes are already restored when read.
  for (std::size_t i = static_cast<std::size_t>(lag); i < bytes.size(); ++i) {
    bytes[i] ^= bytes[i - static_cast<std::size_t>(lag)];
  }
}

ChunkStreams encode_chunk_events(std::span<const trace::Event> events) {
  ChunkStreams out;
  out.tags.reserve(events.size());
  trace::ByteWriter fields;
  FieldContext ctx;
  std::vector<std::uint64_t> time_bits;
  std::uint64_t prev_bits = 0;
  for (const trace::Event& ev : events) {
    out.tags.push_back(static_cast<std::uint8_t>(ev.kind) |
                       (ev.has_time ? std::uint8_t{0x80} : std::uint8_t{0}));
    put_fields(fields, ctx, ev);
    if (ev.has_time) {
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(ev.t_before);
      time_bits.push_back(bits ^ prev_bits);
      prev_bits = bits;
    }
  }
  out.fields = fields.take();
  out.times.reserve(8 * time_bits.size());
  for (int plane = 0; plane < 8; ++plane) {
    for (const std::uint64_t bits : time_bits) {
      out.times.push_back(static_cast<std::uint8_t>(bits >> (8 * plane)));
    }
  }
  return out;
}

std::vector<trace::Event> decode_chunk_events(const ChunkStreams& s,
                                              std::uint64_t nevents) {
  if (s.tags.size() != nevents) {
    throw trace::TraceError("corrupt chunk: tag stream size mismatch");
  }
  std::size_t n_timed = 0;
  for (const std::uint8_t tag : s.tags) {
    if ((tag & 0x7F) >= trace::kEventKindCount) {
      throw trace::TraceError("corrupt chunk: unknown event kind " +
                              std::to_string(tag & 0x7F));
    }
    if (tag & 0x80) ++n_timed;
  }
  if (s.times.size() != 8 * n_timed) {
    throw trace::TraceError("corrupt chunk: time stream size mismatch");
  }
  trace::ByteReader fields(s.fields);
  FieldContext ctx;
  std::vector<trace::Event> events;
  events.reserve(static_cast<std::size_t>(nevents));
  std::uint64_t prev_bits = 0;
  std::size_t timed_idx = 0;
  for (const std::uint8_t tag : s.tags) {
    trace::Event ev;
    ev.kind = static_cast<trace::EventKind>(tag & 0x7F);
    ev.has_time = (tag & 0x80) != 0;
    // Fields encode_event never writes for this kind stay at their struct
    // defaults; get_fields touches exactly the encoded set.
    get_fields(fields, ctx, ev);
    if (ev.has_time) {
      std::uint64_t xbits = 0;
      for (int plane = 0; plane < 8; ++plane) {
        xbits |= static_cast<std::uint64_t>(s.times[plane * n_timed +
                                                    timed_idx])
                 << (8 * plane);
      }
      ++timed_idx;
      prev_bits ^= xbits;
      ev.t_before = std::bit_cast<double>(prev_bits);
    }
    events.push_back(ev);
  }
  if (fields.remaining() != 0) {
    throw trace::TraceError("corrupt chunk: trailing field bytes");
  }
  return events;
}

/// One compressed sub-block: u8 method + body. Picks stored when entropy
/// coding does not pay (tiny or incompressible streams).
std::vector<std::uint8_t> build_block(std::span<const std::uint8_t> raw) {
  const std::vector<std::uint8_t> rle = rle_encode(raw);
  const HuffmanEncoded huff = huffman_encode(rle);
  trace::ByteWriter w;
  w.u8(kMethodRleHuffman);
  w.varint(rle.size());
  w.varint(huff.nbits);
  // Lengths are mostly zero for sparse alphabets; RLE them too.
  const std::vector<std::uint8_t> lens =
      rle_encode(std::span<const std::uint8_t>(huff.lengths));
  w.varint(lens.size());
  std::vector<std::uint8_t> blob = w.take();
  blob.insert(blob.end(), lens.begin(), lens.end());
  blob.insert(blob.end(), huff.bits.begin(), huff.bits.end());
  if (blob.size() >= raw.size() + 1) {
    blob.assign(1, kMethodStored);
    blob.insert(blob.end(), raw.begin(), raw.end());
  }
  return blob;
}

std::vector<std::uint8_t> decode_block(std::span<const std::uint8_t> blob,
                                       std::uint64_t raw_size) {
  if (blob.empty()) {
    throw trace::TraceError("corrupt chunk: empty sub-block");
  }
  if (blob[0] == kMethodStored) {
    if (blob.size() - 1 != raw_size) {
      throw trace::TraceError("corrupt chunk: stored block size mismatch");
    }
    return {blob.begin() + 1, blob.end()};
  }
  if (blob[0] != kMethodRleHuffman) {
    throw trace::TraceError("corrupt chunk: unknown compression method " +
                            std::to_string(blob[0]));
  }
  trace::ByteReader r(blob.subspan(1));
  const std::uint64_t rle_size = r.varint();
  // RLE worst case expands 128 input bytes to a control byte + 128
  // literals; anything larger cannot have come from this raw size.
  if (rle_size > raw_size + raw_size / 128 + 16) {
    throw trace::TraceError("corrupt chunk: implausible RLE size");
  }
  const std::uint64_t nbits = r.varint();
  const std::uint64_t lens_size = r.varint();
  if (lens_size > r.remaining()) {
    throw trace::TraceError("corrupt chunk: length table overruns block");
  }
  const std::size_t lens_begin = blob.size() - r.remaining();
  const std::vector<std::uint8_t> lens_bytes = rle_decode(
      blob.subspan(lens_begin, static_cast<std::size_t>(lens_size)),
      kHuffSymbols);
  std::array<std::uint8_t, kHuffSymbols> lengths{};
  std::copy(lens_bytes.begin(), lens_bytes.end(), lengths.begin());
  const std::size_t bits_begin =
      lens_begin + static_cast<std::size_t>(lens_size);
  const std::size_t bits_bytes = static_cast<std::size_t>((nbits + 7) / 8);
  if (blob.size() - bits_begin != bits_bytes) {
    throw trace::TraceError("corrupt chunk: bitstream size mismatch");
  }
  const std::vector<std::uint8_t> rle = huffman_decode(
      lengths, blob.subspan(bits_begin), nbits,
      static_cast<std::size_t>(rle_size));
  return rle_decode(rle, static_cast<std::size_t>(raw_size));
}

}  // namespace

std::vector<std::uint8_t> compress_stream(
    const trace::TraceFile& skeleton,
    const std::function<const trace::RankStream&(int)>& rank_provider,
    const CompressOptions& options) {
  const obs::Span obs_span("codec.compress");
  const std::uint64_t t_start = obs::now_ns();
  const std::uint64_t chunk_events = std::max<std::uint64_t>(
      1, options.chunk_events);

  // Metadata blob: the skeleton (event lists empty) in ordinary .mpst
  // encoding. Event streams arrive one rank at a time from the provider,
  // so the caller never has to hold every rank's events in memory — the
  // compressed payload (typically ~10x smaller) is all that accumulates.
  const std::vector<std::uint8_t> meta = skeleton.encode();

  std::vector<std::uint64_t> event_counts;
  event_counts.reserve(skeleton.ranks.size());
  std::vector<ChunkInfo> index;
  std::vector<std::uint8_t> payload;
  for (int ri = 0; ri < static_cast<int>(skeleton.ranks.size()); ++ri) {
    const trace::RankStream& rs = rank_provider(ri);
    event_counts.push_back(rs.events.size());
    double clock = rs.t0;
    std::uint64_t first = 0;
    while (first < rs.events.size()) {
      const std::uint64_t n =
          std::min<std::uint64_t>(chunk_events, rs.events.size() - first);
      const std::span<const trace::Event> slice(
          rs.events.data() + first, static_cast<std::size_t>(n));
      ChunkInfo info;
      info.rank = rs.rank;
      info.first_event = first;
      info.nevents = n;
      info.t_begin = clock;
      for (const trace::Event& ev : slice) {
        if (ev.has_time) clock = ev.t_before;
      }
      info.t_end = clock;
      const ChunkStreams streams = encode_chunk_events(slice);
      info.raw_size =
          streams.tags.size() + streams.fields.size() + streams.times.size();
      std::uint32_t crc = support::crc32(streams.tags);
      crc = support::crc32(streams.fields, crc);
      crc = support::crc32(streams.times, crc);
      info.crc = crc;
      const std::uint64_t tag_lag = best_lag(streams.tags);
      const std::uint64_t field_lag = best_lag(streams.fields);
      const std::vector<std::uint8_t> tags_b =
          build_block(lag_apply(streams.tags, tag_lag));
      const std::vector<std::uint8_t> fields_b =
          build_block(lag_apply(streams.fields, field_lag));
      const std::vector<std::uint8_t> times_b = build_block(streams.times);
      trace::ByteWriter bw;
      bw.varint(tag_lag);
      bw.varint(field_lag);
      bw.varint(tags_b.size());
      bw.varint(fields_b.size());
      bw.varint(times_b.size());
      std::vector<std::uint8_t> blob = bw.take();
      blob.insert(blob.end(), tags_b.begin(), tags_b.end());
      blob.insert(blob.end(), fields_b.begin(), fields_b.end());
      blob.insert(blob.end(), times_b.begin(), times_b.end());
      info.offset = payload.size();
      info.size = blob.size();
      payload.insert(payload.end(), blob.begin(), blob.end());
      index.push_back(info);
      first += n;
    }
  }

  trace::ByteWriter w;
  w.u32le(kMpstzMagic);
  w.u32le(kMpstzVersion);
  w.varint(meta.size());
  for (const std::uint8_t b : meta) w.u8(b);
  w.u32le(support::crc32(meta));
  for (const std::uint64_t n : event_counts) w.varint(n);
  w.varint(index.size());
  for (const ChunkInfo& c : index) {
    w.varint(static_cast<std::uint64_t>(c.rank));
    w.varint(c.first_event);
    w.varint(c.nevents);
    w.f64(c.t_begin);
    w.f64(c.t_end);
    w.varint(c.offset);
    w.varint(c.size);
    w.varint(c.raw_size);
    w.u32le(c.crc);
  }
  w.varint(payload.size());
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());

  // Throughput accounting: raw stream bytes in, container bytes out.
  std::uint64_t raw_in = meta.size();
  for (const ChunkInfo& c : index) raw_in += c.raw_size;
  auto& oc = obs::counters();
  oc.codec_compress_bytes_in.fetch_add(raw_in, std::memory_order_relaxed);
  oc.codec_compress_bytes_out.fetch_add(out.size(),
                                        std::memory_order_relaxed);
  oc.codec_compress_ns.fetch_add(obs::now_ns() - t_start,
                                 std::memory_order_relaxed);
  return out;
}

std::vector<std::uint8_t> compress(const trace::TraceFile& tf,
                                   const CompressOptions& options) {
  // Skeleton: per-rank metadata without the event lists (no event copies).
  trace::TraceFile skeleton;
  skeleton.header = tf.header;
  skeleton.labels = tf.labels;
  skeleton.ranks.reserve(tf.ranks.size());
  for (const auto& rs : tf.ranks) {
    trace::RankStream s;
    s.rank = rs.rank;
    s.t0 = rs.t0;
    s.t_final = rs.t_final;
    s.totals = rs.totals;
    skeleton.ranks.push_back(std::move(s));
  }
  return compress_stream(
      skeleton,
      [&tf](int r) -> const trace::RankStream& {
        return tf.ranks[static_cast<std::size_t>(r)];
      },
      options);
}

bool is_mpstz(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < 4) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(data[static_cast<std::size_t>(i)])
             << (8 * i);
  }
  return magic == kMpstzMagic;
}

MpstzReader::MpstzReader(std::vector<std::uint8_t> data)
    : data_(std::move(data)) {
  trace::ByteReader r(data_);
  if (r.u32le() != kMpstzMagic) {
    throw trace::TraceError("not an mpisect compressed trace (bad magic)");
  }
  const std::uint32_t version = r.u32le();
  if (version < 1 || version > kMpstzVersion) {
    throw trace::TraceError("unsupported .mpstz version " +
                            std::to_string(version));
  }
  const std::uint64_t meta_size = r.varint();
  if (meta_size > r.remaining()) {
    throw trace::TraceError("truncated trace: metadata overruns file");
  }
  const std::size_t meta_begin = data_.size() - r.remaining();
  const std::span<const std::uint8_t> meta(data_.data() + meta_begin,
                                           static_cast<std::size_t>(meta_size));
  for (std::uint64_t i = 0; i < meta_size; ++i) (void)r.u8();
  if (r.u32le() != support::crc32(meta)) {
    throw trace::TraceError("corrupt trace: metadata CRC mismatch");
  }
  skeleton_ = trace::TraceFile::decode(meta);
  for (const trace::RankStream& rs : skeleton_.ranks) {
    if (!rs.events.empty()) {
      throw trace::TraceError("corrupt trace: metadata blob carries events");
    }
  }

  rank_event_counts_.reserve(skeleton_.ranks.size());
  for (std::size_t i = 0; i < skeleton_.ranks.size(); ++i) {
    rank_event_counts_.push_back(r.varint());
  }

  std::unordered_map<int, std::size_t> rank_index;
  for (std::size_t i = 0; i < skeleton_.ranks.size(); ++i) {
    rank_index[skeleton_.ranks[i].rank] = i;
  }

  const std::uint64_t nchunks = r.varint();
  std::uint64_t total_events = 0;
  for (const std::uint64_t c : rank_event_counts_) total_events += c;
  if (nchunks > total_events) {
    throw trace::TraceError("corrupt trace: more chunks than events");
  }
  std::vector<std::uint64_t> next_event(skeleton_.ranks.size(), 0);
  std::uint64_t next_offset = 0;
  chunks_.reserve(static_cast<std::size_t>(nchunks));
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    ChunkInfo c;
    c.rank = static_cast<int>(r.varint());
    c.first_event = r.varint();
    c.nevents = r.varint();
    c.t_begin = r.f64();
    c.t_end = r.f64();
    c.offset = r.varint();
    c.size = r.varint();
    c.raw_size = r.varint();
    c.crc = r.u32le();
    const auto it = rank_index.find(c.rank);
    if (it == rank_index.end()) {
      throw trace::TraceError("corrupt trace: chunk names unknown rank " +
                              std::to_string(c.rank));
    }
    if (c.nevents == 0 || c.first_event != next_event[it->second]) {
      throw trace::TraceError("corrupt trace: chunk index out of order");
    }
    next_event[it->second] = c.first_event + c.nevents;
    if (c.offset != next_offset) {
      throw trace::TraceError("corrupt trace: chunk payload not contiguous");
    }
    next_offset = c.offset + c.size;
    if (c.raw_size > c.nevents * kMaxEventWireBytes + 16) {
      throw trace::TraceError("corrupt trace: implausible chunk raw size");
    }
    chunks_.push_back(c);
  }
  for (std::size_t i = 0; i < skeleton_.ranks.size(); ++i) {
    if (next_event[i] != rank_event_counts_[i]) {
      throw trace::TraceError("corrupt trace: chunks do not cover rank " +
                              std::to_string(skeleton_.ranks[i].rank));
    }
  }

  payload_size_ = r.varint();
  if (payload_size_ != next_offset) {
    throw trace::TraceError("corrupt trace: payload size != chunk extents");
  }
  if (payload_size_ > r.remaining()) {
    throw trace::TraceError("truncated trace: payload overruns file");
  }
  payload_begin_ = data_.size() - r.remaining();
  if (r.remaining() != payload_size_) {
    throw trace::TraceError("corrupt trace: trailing bytes after payload");
  }
}

std::vector<trace::Event> MpstzReader::chunk_events(std::size_t index) {
  if (index >= chunks_.size()) {
    throw trace::TraceError("chunk index out of range");
  }
  const ChunkInfo& c = chunks_[index];
  const std::span<const std::uint8_t> blob(
      data_.data() + payload_begin_ + static_cast<std::size_t>(c.offset),
      static_cast<std::size_t>(c.size));
  bytes_decoded_ += c.size;
  if (blob.empty()) {
    throw trace::TraceError("corrupt chunk: empty payload");
  }
  trace::ByteReader r(blob);
  const std::uint64_t tag_lag = r.varint();
  const std::uint64_t field_lag = r.varint();
  const std::uint64_t tags_len = r.varint();
  const std::uint64_t fields_len = r.varint();
  const std::uint64_t times_len = r.varint();
  if (tags_len > r.remaining() || fields_len > r.remaining() - tags_len ||
      times_len != r.remaining() - tags_len - fields_len) {
    throw trace::TraceError("corrupt chunk: sub-block sizes != payload");
  }
  const std::size_t body = blob.size() - r.remaining();
  ChunkStreams s;
  s.tags = decode_block(
      blob.subspan(body, static_cast<std::size_t>(tags_len)), c.nevents);
  lag_undo(s.tags, tag_lag);
  std::uint64_t n_timed = 0;
  for (const std::uint8_t tag : s.tags) {
    if (tag & 0x80) ++n_timed;
  }
  const std::uint64_t times_raw = 8 * n_timed;
  if (c.raw_size < c.nevents + times_raw) {
    throw trace::TraceError("corrupt chunk: raw size below stream floor");
  }
  const std::uint64_t fields_raw = c.raw_size - c.nevents - times_raw;
  s.fields = decode_block(
      blob.subspan(body + static_cast<std::size_t>(tags_len),
                   static_cast<std::size_t>(fields_len)),
      fields_raw);
  lag_undo(s.fields, field_lag);
  s.times = decode_block(
      blob.subspan(body + static_cast<std::size_t>(tags_len + fields_len),
                   static_cast<std::size_t>(times_len)),
      times_raw);
  std::uint32_t crc = support::crc32(s.tags);
  crc = support::crc32(s.fields, crc);
  crc = support::crc32(s.times, crc);
  if (crc != c.crc) {
    throw trace::TraceError("corrupt chunk: CRC mismatch");
  }
  return decode_chunk_events(s, c.nevents);
}

trace::TraceFile MpstzReader::all() {
  trace::TraceFile out = skeleton_;
  std::unordered_map<int, std::size_t> rank_index;
  for (std::size_t i = 0; i < out.ranks.size(); ++i) {
    rank_index[out.ranks[i].rank] = i;
    out.ranks[i].events.reserve(
        static_cast<std::size_t>(rank_event_counts_[i]));
  }
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    std::vector<trace::Event> events = chunk_events(i);
    auto& dst = out.ranks[rank_index.at(chunks_[i].rank)].events;
    dst.insert(dst.end(), events.begin(), events.end());
  }
  return out;
}

std::vector<trace::Event> MpstzReader::window(int rank, double t0, double t1) {
  std::vector<trace::Event> out;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    const ChunkInfo& c = chunks_[i];
    if (c.rank != rank || c.t_begin > t1 || c.t_end < t0) continue;
    std::vector<trace::Event> events = chunk_events(i);
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

namespace {

/// Decode the full container, feeding the obs decompression throughput
/// counters (event bytes reconstructed per wall-clock nanosecond).
trace::TraceFile timed_all(MpstzReader&& reader) {
  const obs::Span obs_span("codec.decompress");
  const std::uint64_t t_start = obs::now_ns();
  trace::TraceFile tf = reader.all();
  auto& oc = obs::counters();
  oc.codec_decompress_bytes_out.fetch_add(reader.bytes_decoded(),
                                          std::memory_order_relaxed);
  oc.codec_decompress_ns.fetch_add(obs::now_ns() - t_start,
                                   std::memory_order_relaxed);
  return tf;
}

}  // namespace

trace::TraceFile decompress(std::span<const std::uint8_t> data) {
  return timed_all(
      MpstzReader(std::vector<std::uint8_t>(data.begin(), data.end())));
}

trace::TraceFile load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw trace::TraceError("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (is_mpstz(bytes)) {
    return timed_all(MpstzReader(std::move(bytes)));
  }
  return trace::TraceFile::decode(bytes);
}

std::uint64_t trace_digest(const trace::TraceFile& tf) {
  return support::fnv1a64(tf.encode());
}

}  // namespace mpisect::codec
