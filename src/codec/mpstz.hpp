// The .mpstz container: a chunked, compressed, random-access wrapper
// around .mpst traces.
//
// Layout (integers LEB128 unless noted):
//
//   u32  magic "MPSZ"            u32  version (1)
//   metadata blob: varint size + bytes + u32 crc
//     — the .mpst v3 encoding of the trace with every rank's event list
//       emptied. Header, machine model, label table, per-rank t0/t_final
//       and section-total footers all ride here unchanged, decoded by the
//       ordinary TraceFile reader.
//   per-rank expected event counts: varint count per rank
//   chunk index: varint nchunks, then per chunk
//       rank, first_event, nevents          (varints)
//       t_begin, t_end                      (f64; rank-clock coverage)
//       offset, size                        (varints, into payload section)
//       raw_size                            (varint; pre-RLE event bytes)
//       u32 crc                             (of the raw event bytes)
//   payload section: varint total size, then the chunk blobs
//       each blob: varint tag lag, varint field lag, varint sizes of
//       three sub-blocks, then the sub-blocks
//       each sub-block: u8 method (0 = stored, 1 = RLE+Huffman), then
//       method 0: raw stream bytes
//       method 1: varint rle_size, varint nbits, varint length-table
//                 size, RLE-coded 256-entry length table, packed bitstream
//
// Chunk payloads are self-contained: events split into three streams,
// each compressed independently —
//   tags    one byte per event (kind | 0x80 when timed),
//   fields  zigzag-varint residuals of every integer field against
//           per-kind / per-(kind, peer) / op-chain predictors,
//   times   XOR of consecutive timestamp bit patterns, byte-plane
//           transposed (matching exponents become zero planes).
// The tag and field streams are additionally XORed against the byte lag
// that cancels the most bytes — iterative apps repeat their per-step
// pattern, so both streams collapse into zero runs at the step period.
// Decoding a chunk rebuilds the exact Event structs, so re-encoding the
// whole trace reproduces the original .mpst bytes bit for bit.
//
// Every read failure throws trace::TraceError; corrupt indexes, length
// tables, bitstreams and payloads are structural errors, never UB.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "trace/file.hpp"

namespace mpisect::codec {

inline constexpr std::uint32_t kMpstzMagic = 0x5A53504D;  // "MPSZ" LE
inline constexpr std::uint32_t kMpstzVersion = 1;

struct CompressOptions {
  /// Maximum events per chunk. Smaller chunks seek finer but pay more
  /// per-chunk overhead (length tables, index entries).
  std::uint64_t chunk_events = 16384;
};

struct ChunkInfo {
  int rank = 0;
  std::uint64_t first_event = 0;  ///< index into the rank's event list
  std::uint64_t nevents = 0;
  double t_begin = 0.0;  ///< rank clock entering the chunk
  double t_end = 0.0;    ///< last recorded clock value inside the chunk
  std::uint64_t offset = 0;  ///< into the payload section
  std::uint64_t size = 0;    ///< compressed blob size in bytes
  std::uint64_t raw_size = 0;  ///< event-encoded bytes before RLE/Huffman
  std::uint32_t crc = 0;       ///< crc32 of the raw event bytes
};

/// Encode `tf` as a .mpstz byte vector.
[[nodiscard]] std::vector<std::uint8_t> compress(
    const trace::TraceFile& tf, const CompressOptions& options = {});

/// Streaming variant: `skeleton` carries the header, label table and every
/// rank's metadata (t0/t_final/totals) with event lists EMPTY;
/// `rank_provider(r)` returns rank r's full stream (called once per rank,
/// in order, and the reference only needs to stay valid for that call).
/// The caller therefore never has to materialize all event streams at
/// once — e.g. TraceRecorder::skeleton() + finish_rank(). Produces bytes
/// identical to compress() of the assembled TraceFile.
[[nodiscard]] std::vector<std::uint8_t> compress_stream(
    const trace::TraceFile& skeleton,
    const std::function<const trace::RankStream&(int)>& rank_provider,
    const CompressOptions& options = {});

/// Full inverse of compress(); `decompress(compress(tf))` re-encodes to
/// the identical .mpst byte stream.
[[nodiscard]] trace::TraceFile decompress(std::span<const std::uint8_t> data);

[[nodiscard]] bool is_mpstz(std::span<const std::uint8_t> data) noexcept;

/// Random-access reader: parses metadata and the chunk index eagerly,
/// decodes chunk payloads on demand, and counts every compressed payload
/// byte it actually touches (the "only the needed chunks" assertion, and
/// the serve.bytes_decoded telemetry feed).
class MpstzReader {
 public:
  /// Takes ownership of the container bytes. Throws trace::TraceError on
  /// any structural problem outside chunk payloads (those are validated
  /// lazily, per decode).
  explicit MpstzReader(std::vector<std::uint8_t> data);

  [[nodiscard]] const trace::TraceHeader& header() const noexcept {
    return skeleton_.header;
  }
  [[nodiscard]] const std::vector<std::string>& labels() const noexcept {
    return skeleton_.labels;
  }
  [[nodiscard]] const std::vector<ChunkInfo>& chunks() const noexcept {
    return chunks_;
  }

  /// Decode one chunk's events (CRC-checked).
  [[nodiscard]] std::vector<trace::Event> chunk_events(std::size_t index);

  /// Decode every chunk of every rank into a complete TraceFile.
  [[nodiscard]] trace::TraceFile all();

  /// Decode only the chunks of `rank` whose [t_begin, t_end] coverage
  /// intersects [t0, t1], concatenated in stream order. Chunks outside
  /// the window cost zero payload bytes.
  [[nodiscard]] std::vector<trace::Event> window(int rank, double t0,
                                                 double t1);

  /// Compressed payload bytes consumed by chunk decodes so far.
  [[nodiscard]] std::uint64_t bytes_decoded() const noexcept {
    return bytes_decoded_;
  }

 private:
  std::vector<std::uint8_t> data_;
  trace::TraceFile skeleton_;  ///< events empty; filled by all()
  std::vector<std::uint64_t> rank_event_counts_;
  std::vector<ChunkInfo> chunks_;
  std::size_t payload_begin_ = 0;
  std::uint64_t payload_size_ = 0;
  std::uint64_t bytes_decoded_ = 0;
};

/// Load a trace from disk, transparently accepting both formats: .mpstz
/// containers are decompressed, anything else goes through the ordinary
/// .mpst reader. Every trace-consuming tool funnels through here.
[[nodiscard]] trace::TraceFile load_trace(const std::string& path);

/// Stable content digest of a trace: FNV-1a 64 over the canonical .mpst
/// v3 encoding (identical whether the trace came from .mpst or .mpstz).
[[nodiscard]] std::uint64_t trace_digest(const trace::TraceFile& tf);

}  // namespace mpisect::codec
