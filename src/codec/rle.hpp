// PackBits-style byte run-length coding — the first stage of the .mpstz
// chunk pipeline.
//
// The delta/XOR transforms leave event streams full of zero runs (matched
// double exponents, small varints); collapsing them before the entropy
// pass both shrinks the input and sharpens the Huffman symbol histogram.
//
// Wire form: a control byte c followed by data.
//   c in [0, 127]   copy the next c+1 literal bytes
//   c in [129, 255] repeat the next byte 257-c times (run of 2..128)
//   c == 128        reserved; never emitted, rejected on decode
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpisect::codec {

[[nodiscard]] std::vector<std::uint8_t> rle_encode(
    std::span<const std::uint8_t> raw);

/// Inverse of rle_encode. `expected_size` bounds the output (a corrupt
/// stream that would overflow it throws trace::TraceError, as does a
/// stream that ends mid-token or decodes to the wrong length).
[[nodiscard]] std::vector<std::uint8_t> rle_decode(
    std::span<const std::uint8_t> coded, std::size_t expected_size);

}  // namespace mpisect::codec
