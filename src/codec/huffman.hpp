// Canonical Huffman coding over bytes — the entropy stage of the .mpstz
// chunk pipeline.
//
// Only the 256 code lengths travel on the wire (one byte per symbol);
// both sides derive the same canonical codebook from them: symbols sorted
// by (length, value), codes assigned in increasing numeric order per the
// usual canonical construction. Lengths are capped at kMaxCodeLen by
// rebuilding with damped frequencies when the unconstrained tree gets too
// deep — chunk payloads are bounded, so the cap almost never binds.
//
// The decoder validates the length table (it must describe a complete,
// non-overfull prefix code) before touching the bitstream, so corrupt
// tables are rejected as trace::TraceError rather than misdecoding.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace mpisect::codec {

inline constexpr int kHuffSymbols = 256;
inline constexpr int kMaxCodeLen = 32;

struct HuffmanEncoded {
  /// Code length per symbol; 0 = symbol absent from the input.
  std::array<std::uint8_t, kHuffSymbols> lengths{};
  std::vector<std::uint8_t> bits;  ///< packed MSB-first bitstream
  std::uint64_t nbits = 0;         ///< meaningful bits in `bits`
};

/// Entropy-code `raw`. Empty input yields an all-zero length table and an
/// empty bitstream.
[[nodiscard]] HuffmanEncoded huffman_encode(std::span<const std::uint8_t> raw);

/// Decode exactly `nsymbols` symbols. Throws trace::TraceError on invalid
/// length tables, truncated bitstreams, or trailing meaningful bits.
[[nodiscard]] std::vector<std::uint8_t> huffman_decode(
    const std::array<std::uint8_t, kHuffSymbols>& lengths,
    std::span<const std::uint8_t> bits, std::uint64_t nbits,
    std::size_t nsymbols);

}  // namespace mpisect::codec
