// The daemon front end: a localhost TCP listener speaking one JSON
// request per line, one JSON response per line, over a sharded worker
// pool. Each request is routed to the worker that owns its trace path
// (serve::shard_for), so a trace's decoded image and cache entries stay
// worker-local no matter how many clients connect. Responses are written
// back in request order per connection — a scripted session's output is
// byte-identical whether the pool has one worker or eight.
//
// The listener binds 127.0.0.1 only; this is a local query daemon, not a
// network service.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace mpisect::serve {

class Server {
 public:
  /// `workers` is clamped to at least 1.
  Server(Service& service, int workers);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the worker pool, and
  /// return the bound port. Throws std::runtime_error on socket errors.
  int listen(int port);

  /// Accept-and-serve loop; returns after stop(). Call from the thread
  /// that should own the daemon's lifetime.
  void run();

  /// Idempotent; unblocks run() and drains the pool.
  void stop();

  [[nodiscard]] int workers() const noexcept {
    return static_cast<int>(pool_.size());
  }

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::packaged_task<std::string()>> jobs;
  };

  void worker_loop(Shard& shard);
  void connection_loop(int fd);
  /// Route one request line through its trace's shard and return the
  /// response line.
  std::string dispatch(const std::string& line);

  Service& service_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> pool_;
  std::atomic<bool> stopping_{false};

  int listen_fd_ = -1;
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace mpisect::serve
