#include "serve/service.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>

#include "codec/mpstz.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "support/digest.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "telemetry/export.hpp"

namespace mpisect::serve {

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw trace::TraceError("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (in.bad()) throw trace::TraceError("read error on '" + path + "'");
  return bytes;
}

const support::JsonValue* require_object(const support::JsonValue& req,
                                         const char* key) {
  const support::JsonValue* v = req.find(key);
  if (v != nullptr && !v->is_object()) {
    throw trace::TraceError(std::string("'") + key + "' must be an object");
  }
  return v;
}

std::string str_field(const support::JsonValue* params, const char* key,
                      const std::string& dflt) {
  if (params == nullptr) return dflt;
  const support::JsonValue* v = params->find(key);
  if (v == nullptr) return dflt;
  if (!v->is_string()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must be a string");
  }
  return v->string;
}

double num_field(const support::JsonValue* params, const char* key,
                 double dflt) {
  if (params == nullptr) return dflt;
  const support::JsonValue* v = params->find(key);
  if (v == nullptr) return dflt;
  if (!v->is_number()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must be a number");
  }
  return v->number;
}

bool bool_field(const support::JsonValue* params, const char* key,
                bool dflt) {
  if (params == nullptr) return dflt;
  const support::JsonValue* v = params->find(key);
  if (v == nullptr) return dflt;
  if (!v->is_bool()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must be a boolean");
  }
  return v->boolean;
}

std::vector<double> num_list_field(const support::JsonValue* params,
                                   const char* key,
                                   std::vector<double> dflt) {
  if (params == nullptr) return dflt;
  const support::JsonValue* v = params->find(key);
  if (v == nullptr) return dflt;
  if (!v->is_array()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must be an array of numbers");
  }
  std::vector<double> out;
  for (const auto& item : v->array) {
    if (!item.is_number()) {
      throw trace::TraceError(std::string("param '") + key +
                              "' must be an array of numbers");
    }
    out.push_back(item.number);
  }
  if (out.empty()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must not be empty");
  }
  return out;
}

std::vector<std::string> str_list_field(const support::JsonValue* params,
                                        const char* key,
                                        std::vector<std::string> dflt) {
  if (params == nullptr) return dflt;
  const support::JsonValue* v = params->find(key);
  if (v == nullptr) return dflt;
  if (!v->is_array()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must be an array of strings");
  }
  std::vector<std::string> out;
  for (const auto& item : v->array) {
    if (!item.is_string()) {
      throw trace::TraceError(std::string("param '") + key +
                              "' must be an array of strings");
    }
    out.push_back(item.string);
  }
  if (out.empty()) {
    throw trace::TraceError(std::string("param '") + key +
                            "' must not be empty");
  }
  return out;
}

void check_keys(const support::JsonValue* params,
                const std::vector<const char*>& allowed) {
  if (params == nullptr) return;
  for (const auto& [key, value] : params->object) {
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) throw trace::TraceError("unknown param '" + key + "'");
  }
}

const std::vector<const char*> kModelKeys = {
    "model",         "latency",         "bandwidth",
    "latency_scale", "bandwidth_scale", "jitter_scale",
    "no_jitter",     "eager",           "compute_scale",
    "progress"};

ModelParams model_params(const support::JsonValue* params) {
  ModelParams p;
  p.model = str_field(params, "model", p.model);
  p.latency = num_field(params, "latency", p.latency);
  p.bandwidth = num_field(params, "bandwidth", p.bandwidth);
  p.latency_scale = num_field(params, "latency_scale", p.latency_scale);
  p.bandwidth_scale = num_field(params, "bandwidth_scale", p.bandwidth_scale);
  p.jitter_scale = num_field(params, "jitter_scale", p.jitter_scale);
  p.no_jitter = bool_field(params, "no_jitter", p.no_jitter);
  p.eager = static_cast<std::uint64_t>(num_field(params, "eager", 0.0));
  p.compute_scale = str_field(params, "compute_scale", p.compute_scale);
  p.progress = str_field(params, "progress", p.progress);
  return p;
}

template <typename... Extra>
void check_model_keys(const support::JsonValue* params, Extra... extra_keys) {
  std::vector<const char*> allowed = kModelKeys;
  (allowed.push_back(extra_keys), ...);
  check_keys(params, allowed);
}

std::string render_id(const support::JsonValue& req) {
  const support::JsonValue* v = req.find("id");
  if (v == nullptr || !v->is_number()) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld",
                static_cast<long long>(v->number));
  return buf;
}

}  // namespace

int shard_for(const std::string& path, int workers) noexcept {
  if (workers <= 1) return 0;
  const std::uint64_t h = support::fnv1a64(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(path.data()), path.size()));
  return static_cast<int>(h % static_cast<std::uint64_t>(workers));
}

Service::Service(std::size_t cache_entries, std::size_t cache_bytes)
    : cache_(cache_entries, cache_bytes), reg_(/*nranks=*/1) {
  using telemetry::Scope;
  id_requests_ = reg_.add_counter("serve.requests", Scope::Process,
                                  "query requests received", "requests");
  id_hits_ = reg_.add_counter("serve.cache_hits", Scope::Process,
                              "requests answered from the result cache",
                              "requests");
  id_misses_ = reg_.add_counter("serve.cache_misses", Scope::Process,
                                "requests that ran the query engine",
                                "requests");
  id_errors_ = reg_.add_counter("serve.errors", Scope::Process,
                                "requests rejected with an error", "requests");
  id_traces_ = reg_.add_counter("serve.traces_loaded", Scope::Process,
                                "distinct traces decoded and pinned",
                                "traces");
  id_bytes_decoded_ =
      reg_.add_counter("serve.bytes_decoded", Scope::Process,
                       "container bytes read while loading traces", "bytes");
  id_lat_cold_ = reg_.add_distribution(
      "serve.latency_cold", Scope::Process, 0.0, 10.0, 50,
      "wall seconds per cache-missing request", "seconds");
  id_lat_warm_ = reg_.add_distribution(
      "serve.latency_warm", Scope::Process, 0.0, 10.0, 50,
      "wall seconds per cache-hit request", "seconds");
}

std::shared_ptr<const LoadedTrace> Service::trace(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(traces_mu_);
    auto it = traces_.find(path);
    if (it != traces_.end()) return it->second;
  }
  // Decode outside the lock: loading is the expensive part and two
  // different traces should not serialize against each other.
  auto lt = std::make_shared<LoadedTrace>();
  std::vector<std::uint8_t> bytes = read_file(path);
  lt->file_bytes = bytes.size();
  if (codec::is_mpstz(bytes)) {
    lt->tf = codec::decompress(bytes);
  } else {
    lt->tf = trace::TraceFile::decode(bytes);
  }
  lt->digest = codec::trace_digest(lt->tf);
  lt->digest_str = support::format_digest(lt->digest);
  std::lock_guard<std::mutex> lock(traces_mu_);
  auto [it, inserted] = traces_.emplace(path, std::move(lt));
  if (inserted) {
    reg_.inc(id_traces_, 0);
    reg_.inc(id_bytes_decoded_, 0,
             static_cast<double>(it->second->file_bytes));
  }
  return it->second;
}

std::string Service::handle_line(const std::string& line) {
  const obs::Span request_span("serve.request");
  std::string id = "0";
  try {
    const support::JsonValue req = support::json_parse(line);
    if (!req.is_object()) {
      throw trace::TraceError("request must be a JSON object");
    }
    id = render_id(req);
    reg_.inc(id_requests_, 0);

    const std::string op = str_field(&req, "op", "");
    if (op.empty()) throw trace::TraceError("missing 'op'");

    if (op == "stats") {
      return "{\"id\":" + id + ",\"ok\":true,\"result\":\"" +
             support::json_escape(stats_text()) + "\"}";
    }
    if (op == "metrics") {
      // Scrape surface for a long-lived daemon: serve.* request metrics
      // plus the obs.* self-observability counters in one Prometheus page.
      return "{\"id\":" + id + ",\"ok\":true,\"result\":\"" +
             support::json_escape(metrics_text()) + "\"}";
    }

    const std::string path = str_field(&req, "trace", "");
    if (path.empty()) throw trace::TraceError("missing 'trace'");
    const support::JsonValue* params = require_object(req, "params");

    std::string canon;
    if (op == "info") {
      check_keys(params, {});
      canon = "info{}";
    } else if (op == "replay") {
      check_model_keys(params, "faults", "fault_seed", "format", "tseq");
    } else if (op == "timeline") {
      check_model_keys(params, "faults", "fault_seed", "dt", "format");
    } else if (op == "sweep") {
      check_keys(params,
                 {"models", "latency_scales", "bandwidth_scales",
                  "compute_scales", "drop_rates", "progress", "fault_seed",
                  "tseq"});
    } else if (op == "analyze") {
      check_keys(params, {"format"});
    } else {
      throw trace::TraceError(
          "unknown op '" + op +
          "' (info|replay|sweep|timeline|analyze|stats|metrics)");
    }

    const auto t_start = std::chrono::steady_clock::now();
    const std::shared_ptr<const LoadedTrace> lt = [&] {
      const obs::Span load_span("serve.load");
      return trace(path);
    }();

    std::string result;
    bool cached = false;
    auto run_cached = [&](const std::string& canonical_form,
                          auto&& compute) {
      const std::string key = lt->digest_str + "|" + canonical_form;
      if (auto hit = cache_.get(key)) {
        cached = true;
        reg_.inc(id_hits_, 0);
        result = std::move(*hit);
        return;
      }
      reg_.inc(id_misses_, 0);
      {
        const obs::Span compute_span("serve.compute");
        result = compute();
      }
      cache_.put(key, result);
    };

    if (op == "info") {
      run_cached(canon, [&] { return run_info(lt->tf); });
    } else if (op == "replay") {
      ReplayQuery q;
      q.model = model_params(params);
      q.faults = str_field(params, "faults", "");
      q.fault_seed =
          static_cast<std::uint64_t>(num_field(params, "fault_seed", 0.0));
      q.format = str_field(params, "format", q.format);
      q.tseq = num_field(params, "tseq", 0.0);
      run_cached(canonical(q), [&] { return run_replay(lt->tf, q); });
    } else if (op == "timeline") {
      TimelineQuery q;
      q.model = model_params(params);
      q.faults = str_field(params, "faults", "");
      q.fault_seed =
          static_cast<std::uint64_t>(num_field(params, "fault_seed", 0.0));
      q.dt = num_field(params, "dt", 0.0);
      q.format = str_field(params, "format", q.format);
      run_cached(canonical(q), [&] { return run_timeline(lt->tf, q); });
    } else if (op == "sweep") {
      SweepQuery q;
      q.models = str_list_field(params, "models", q.models);
      q.latency_scales =
          num_list_field(params, "latency_scales", q.latency_scales);
      q.bandwidth_scales =
          num_list_field(params, "bandwidth_scales", q.bandwidth_scales);
      q.compute_scales =
          str_list_field(params, "compute_scales", q.compute_scales);
      q.drop_rates = num_list_field(params, "drop_rates", q.drop_rates);
      q.progress = str_list_field(params, "progress", q.progress);
      q.fault_seed =
          static_cast<std::uint64_t>(num_field(params, "fault_seed", 0.0));
      q.tseq = num_field(params, "tseq", 0.0);
      run_cached(canonical(q), [&] { return run_sweep(lt->tf, q); });
    } else {  // analyze
      AnalyzeQuery q;
      q.format = str_field(params, "format", q.format);
      run_cached(canonical(q), [&] { return run_analyze(lt->tf, q); });
    }

    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();
    reg_.observe(cached ? id_lat_warm_ : id_lat_cold_, 0, secs);

    return "{\"id\":" + id + ",\"ok\":true,\"digest\":\"" + lt->digest_str +
           "\",\"cached\":" + (cached ? "true" : "false") + ",\"result\":\"" +
           support::json_escape(result) + "\"}";
  } catch (const std::exception& e) {
    reg_.inc(id_errors_, 0);
    return "{\"id\":" + id + ",\"ok\":false,\"error\":\"" +
           support::json_escape(e.what()) + "\"}";
  }
}

std::string Service::stats_text() const {
  return telemetry::prometheus_text(reg_);
}

std::string Service::metrics_text() const {
  return stats_text() + obs::prometheus_text();
}

}  // namespace mpisect::serve
