// The daemon's query service: a shared trace store (each trace is loaded
// and decoded once, then pinned), an LRU result cache keyed on
// (trace digest, query canonical form), and the line-delimited-JSON
// request dispatcher both the TCP server and the in-process tests drive.
//
// Requests are one JSON object per line:
//   {"id":1,"op":"info","trace":"out.mpstz"}
//   {"id":2,"op":"replay","trace":"out.mpstz",
//    "params":{"model":"knl-cluster","drop_rate-free":"...","format":"csv"}}
// Responses mirror the id:
//   {"id":2,"ok":true,"digest":"mpst1-...","cached":false,"result":"..."}
//   {"id":2,"ok":false,"error":"unknown model 'x' (...)"}
// The "result" field is byte-identical to the offline CLI's stdout for
// the same query (both run serve::run_* on the same decoded trace).
//
// Sharding: worker affinity is a pure function of the trace path
// (shard_for), so one worker owns each trace's decoded image and cache
// locality survives concurrent clients. Results are cached post-render,
// keyed by content digest — two paths to the same bytes share entries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "serve/cache.hpp"
#include "serve/queries.hpp"
#include "telemetry/registry.hpp"

namespace mpisect::serve {

/// A trace pinned in memory: decoded events plus its content digest.
struct LoadedTrace {
  trace::TraceFile tf;
  std::uint64_t digest = 0;
  std::string digest_str;      ///< "mpst1-<16 hex>"
  std::uint64_t file_bytes = 0;  ///< container size on disk
};

/// Deterministic worker shard for a trace path (FNV-1a over the path).
[[nodiscard]] int shard_for(const std::string& path, int workers) noexcept;

class Service {
 public:
  explicit Service(std::size_t cache_entries = 256,
                   std::size_t cache_bytes = 64 << 20);

  /// Handle one request line; returns the response line (no trailing
  /// newline). Never throws: every failure becomes an ok:false response.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Load (or fetch the pinned copy of) a trace. Throws trace::TraceError.
  [[nodiscard]] std::shared_ptr<const LoadedTrace> trace(
      const std::string& path);

  [[nodiscard]] telemetry::Registry& registry() noexcept { return reg_; }
  [[nodiscard]] LruCache& cache() noexcept { return cache_; }

  /// Prometheus text dump of the serve.* instruments.
  [[nodiscard]] std::string stats_text() const;

  /// stats_text() plus the process-wide obs.* self-observability counters
  /// (span tracer health, codec throughput, scheduler/memory gauges) — the
  /// {"op":"metrics"} scrape surface.
  [[nodiscard]] std::string metrics_text() const;

 private:
  LruCache cache_;
  std::mutex traces_mu_;
  std::map<std::string, std::shared_ptr<const LoadedTrace>> traces_;

  telemetry::Registry reg_;
  telemetry::InstrumentId id_requests_;
  telemetry::InstrumentId id_hits_;
  telemetry::InstrumentId id_misses_;
  telemetry::InstrumentId id_errors_;
  telemetry::InstrumentId id_traces_;
  telemetry::InstrumentId id_bytes_decoded_;
  telemetry::InstrumentId id_lat_cold_;
  telemetry::InstrumentId id_lat_warm_;
};

}  // namespace mpisect::serve
