#include "serve/queries.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "analysis/analyzer.hpp"
#include "analysis/report.hpp"
#include "support/provenance.hpp"
#include "telemetry/export.hpp"
#include "telemetry/timeline.hpp"
#include "trace/replay.hpp"
#include "trace/report.hpp"

namespace mpisect::serve {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  return buf;
}

/// Shortest decimal rendering that round-trips a double — canonical forms
/// must not depend on printf defaults.
std::string canon_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double back = std::strtod(buf, nullptr);
  for (int prec = 1; prec <= 16; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == back) return probe;
  }
  return buf;
}

std::string join_csv(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ",";
    out += item;
  }
  return out;
}

std::string join_csv(const std::vector<double>& items) {
  std::string out;
  for (const double item : items) {
    if (!out.empty()) out += ",";
    out += canon_double(item);
  }
  return out;
}

double parse_compute_scale(const trace::TraceFile& tf,
                           const mpisim::MachineModel& machine,
                           const std::string& spec) {
  if (spec == "auto") {
    return machine.flops_per_core > 0
               ? tf.header.machine.flops_per_core / machine.flops_per_core
               : 1.0;
  }
  const double cs = std::strtod(spec.c_str(), nullptr);
  if (cs <= 0) {
    throw trace::TraceError("bad compute-scale '" + spec +
                            "' (positive float or 'auto')");
  }
  return cs;
}

mpisim::MachineModel base_model(const trace::TraceFile& tf,
                                const std::string& name) {
  if (name == "recorded") return tf.header.machine;
  if (auto preset = mpisim::MachineModel::preset(name)) return *preset;
  throw trace::TraceError("unknown model '" + name + "' (" + model_choices() +
                          ")");
}

mpisim::ProgressModel resolve_progress(const trace::TraceFile& tf,
                                       const std::string& spec) {
  if (spec.empty() || spec == "recorded") return tf.header.progress;
  return mpisim::ProgressModel::parse(spec);
}

trace::ReplayOptions replay_options(const trace::TraceFile& tf,
                                    double compute_scale,
                                    const std::string& faults,
                                    std::uint64_t fault_seed, bool timeline) {
  trace::ReplayOptions ropts;
  ropts.compute_scale = compute_scale;
  ropts.timeline = timeline;
  if (!faults.empty()) {
    ropts.faults = mpisim::faults::FaultPlan::parse(faults);
    ropts.fault_seed = fault_seed;
  }
  (void)tf;
  return ropts;
}

}  // namespace

std::string model_choices() {
  std::string out = "recorded";
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    out += "|";
    out += n;
  }
  return out;
}

ResolvedModel resolve_model(const trace::TraceFile& tf,
                            const ModelParams& p) {
  ResolvedModel r;
  r.machine = base_model(tf, p.model);
  mpisim::NetworkModel& net = r.machine.net;
  if (p.latency > 0) {
    net.intra_node.latency = p.latency;
    net.inter_node.latency = p.latency;
  }
  if (p.bandwidth > 0) {
    net.intra_node.bandwidth = p.bandwidth;
    net.inter_node.bandwidth = p.bandwidth;
  }
  net.intra_node.latency *= p.latency_scale;
  net.inter_node.latency *= p.latency_scale;
  net.intra_node.bandwidth *= p.bandwidth_scale;
  net.inter_node.bandwidth *= p.bandwidth_scale;
  net.jitter.rel_sigma *= p.jitter_scale;
  net.jitter.add_sigma *= p.jitter_scale;
  net.jitter.spike_mean *= p.jitter_scale;
  if (p.no_jitter) {
    net.jitter = mpisim::JitterModel{};
  }
  if (p.eager > 0) {
    net.eager_threshold = static_cast<std::size_t>(p.eager);
  }
  r.compute_scale = parse_compute_scale(tf, r.machine, p.compute_scale);
  // A recorded-header machine already carries the recorded model's
  // opportunistic entry-poll fold; presets are pristine.
  r.progress = resolve_progress(tf, p.progress);
  r.machine = trace::fold_progress(r.machine, tf.header.progress, r.progress,
                                   /*machine_is_recorded=*/p.model ==
                                       "recorded");
  return r;
}

std::string run_info(const trace::TraceFile& tf) {
  std::string out;
  out += fmt("app:    %s\n", tf.header.app.c_str());
  out += fmt("seed:   0x%llx  start-skew sigma %.3g\n",
             static_cast<unsigned long long>(tf.header.seed),
             tf.header.start_skew_sigma);
  out += fmt("ranks:  %d   events: %llu\n", tf.header.nranks,
             static_cast<unsigned long long>(tf.total_events()));
  out += tf.header.machine.describe();
  out += fmt("labels: %zu\n", tf.labels.size());
  for (std::size_t i = 0; i < tf.labels.size(); ++i) {
    out += fmt("  [%zu] %s\n", i, tf.labels[i].c_str());
  }
  for (const auto& r : tf.ranks) {
    out += fmt("rank %3d: %zu events, t0 %.6f, t_final %.6f\n", r.rank,
               r.events.size(), r.t0, r.t_final);
    if (tf.ranks.size() > 8 && r.rank == 3) {
      out += fmt("  ... (%zu more ranks)\n", tf.ranks.size() - 4);
      break;
    }
  }
  return out;
}

std::string run_replay(const trace::TraceFile& tf, const ReplayQuery& q) {
  const ResolvedModel w = resolve_model(tf, q.model);
  trace::ReplayOptions ropts =
      replay_options(tf, w.compute_scale, q.faults, q.fault_seed,
                     q.format == "chrome");
  ropts.progress = w.progress;
  const trace::ReplayResult res = trace::replay(tf, w.machine, ropts);
  std::optional<double> t_seq;
  if (q.tseq > 0) t_seq = q.tseq;
  if (q.format == "text") {
    return "machine: " + w.machine.name + "  compute-scale: " +
           std::to_string(w.compute_scale) + "\n" +
           trace::render_text(res, t_seq);
  }
  if (q.format == "csv") return trace::render_csv(res, t_seq);
  if (q.format == "json") return trace::render_json(res, t_seq);
  if (q.format == "chrome") return trace::render_chrome(res);
  throw trace::TraceError("unknown format '" + q.format +
                          "' (text|csv|json|chrome)");
}

std::string run_timeline(const trace::TraceFile& tf, const TimelineQuery& q) {
  const ResolvedModel w = resolve_model(tf, q.model);
  trace::ReplayOptions ropts = replay_options(
      tf, w.compute_scale, q.faults, q.fault_seed, /*timeline=*/true);
  ropts.progress = w.progress;
  const trace::ReplayResult res = trace::replay(tf, w.machine, ropts);

  double dt = q.dt;
  if (dt <= 0) dt = tf.header.telemetry_dt;
  if (dt <= 0) dt = res.makespan / 100.0;
  if (dt <= 0) {
    throw trace::TraceError("empty trace, nothing to bin");
  }
  const telemetry::Timeline tl = telemetry::timeline_from_replay(res, dt);

  support::Provenance prov = support::build_provenance();
  prov.machine = w.machine.name;
  prov.seed = std::to_string(tf.header.seed);

  if (q.format == "csv") return telemetry::timeline_csv(tl, prov);
  if (q.format == "json") return telemetry::timeline_json(tl, prov);
  if (q.format == "chrome") return telemetry::chrome_counters(tl, prov);
  throw trace::TraceError("unknown format '" + q.format +
                          "' (csv|json|chrome)");
}

std::string run_sweep(const trace::TraceFile& tf, const SweepQuery& q) {
  std::optional<double> t_seq;
  if (q.tseq > 0) t_seq = q.tseq;

  std::string out = trace::sweep_csv_header();
  for (const auto& mname : q.models) {
    const mpisim::MachineModel base = base_model(tf, mname);
    for (const double ls : q.latency_scales) {
      for (const double bs : q.bandwidth_scales) {
        for (const std::string& citem : q.compute_scales) {
          const double cs = parse_compute_scale(tf, base, citem);
          mpisim::MachineModel m = base;
          m.net.intra_node.latency *= ls;
          m.net.inter_node.latency *= ls;
          m.net.intra_node.bandwidth *= bs;
          m.net.inter_node.bandwidth *= bs;
          for (const std::string& pitem : q.progress) {
            const mpisim::ProgressModel pm = resolve_progress(tf, pitem);
            const mpisim::MachineModel mp = trace::fold_progress(
                m, tf.header.progress, pm,
                /*machine_is_recorded=*/mname == "recorded");
            for (const double dr : q.drop_rates) {
              if (dr < 0.0 || dr >= 1.0) {
                throw trace::TraceError(
                    "bad drop-rates entry (need 0 <= p < 1)");
              }
              trace::ReplayOptions ropts;
              ropts.compute_scale = cs;
              ropts.progress = pm;
              if (dr > 0.0) {
                char spec[48];
                std::snprintf(spec, sizeof spec, "drop:p=%.9g", dr);
                ropts.faults = mpisim::faults::FaultPlan::parse(spec);
                ropts.fault_seed = q.fault_seed;
              }
              const trace::ReplayResult res = trace::replay(tf, mp, ropts);
              out += trace::sweep_csv_rows(res, mname, ls, bs, cs, dr,
                                           pm.spec(), t_seq);
            }
          }
        }
      }
    }
  }
  return out;
}

std::string run_analyze(const trace::TraceFile& tf, const AnalyzeQuery& q,
                        std::size_t* findings) {
  const analysis::AnalysisResult res = analysis::analyze(tf);
  if (findings != nullptr) *findings = res.finding_count();
  if (q.format == "text") return analysis::render_text(res);
  if (q.format == "csv") return analysis::render_csv(res);
  if (q.format == "json") return analysis::render_json(res);
  throw trace::TraceError("unknown format '" + q.format +
                          "' (text|csv|json)");
}

std::string canonical(const ModelParams& p) {
  return "model=" + p.model + ";lat=" + canon_double(p.latency) +
         ";bw=" + canon_double(p.bandwidth) +
         ";ls=" + canon_double(p.latency_scale) +
         ";bs=" + canon_double(p.bandwidth_scale) +
         ";js=" + canon_double(p.jitter_scale) +
         ";nj=" + (p.no_jitter ? "1" : "0") +
         ";eager=" + std::to_string(p.eager) + ";cs=" + p.compute_scale +
         ";prog=" + p.progress;
}

std::string canonical(const ReplayQuery& q) {
  return "replay{" + canonical(q.model) + ";faults=" + q.faults +
         ";fseed=" + std::to_string(q.fault_seed) + ";fmt=" + q.format +
         ";tseq=" + canon_double(q.tseq) + "}";
}

std::string canonical(const TimelineQuery& q) {
  return "timeline{" + canonical(q.model) + ";faults=" + q.faults +
         ";fseed=" + std::to_string(q.fault_seed) +
         ";dt=" + canon_double(q.dt) + ";fmt=" + q.format + "}";
}

std::string canonical(const SweepQuery& q) {
  std::vector<std::string> models = q.models;
  return "sweep{models=" + join_csv(models) +
         ";ls=" + join_csv(q.latency_scales) +
         ";bs=" + join_csv(q.bandwidth_scales) +
         ";cs=" + join_csv(q.compute_scales) +
         ";drops=" + join_csv(q.drop_rates) +
         ";progress=" + join_csv(q.progress) +
         ";fseed=" + std::to_string(q.fault_seed) +
         ";tseq=" + canon_double(q.tseq) + "}";
}

std::string canonical(const AnalyzeQuery& q) {
  return "analyze{fmt=" + q.format + "}";
}

}  // namespace mpisect::serve
