#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/spans.hpp"
#include "support/json.hpp"

namespace mpisect::serve {

namespace {

[[noreturn]] void sys_fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// Best-effort trace-path extraction for sharding. A line that fails to
/// parse still goes to shard 0, where handle_line renders the error.
std::string trace_path_of(const std::string& line) noexcept {
  try {
    const support::JsonValue req = support::json_parse(line);
    const support::JsonValue* t = req.find("trace");
    if (t != nullptr && t->is_string()) return t->string;
  } catch (...) {
  }
  return {};
}

bool write_all(int fd, const std::string& data) noexcept {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Service& service, int workers) : service_(service) {
  if (workers < 1) workers = 1;
  for (int i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Server::~Server() {
  stop();
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  for (auto& t : pool_) {
    if (t.joinable()) t.join();
  }
}

int Server::listen(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    sys_fail("bind");
  }
  if (::listen(listen_fd_, 16) < 0) sys_fail("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    sys_fail("getsockname");
  }

  for (auto& shard : shards_) {
    pool_.emplace_back([this, &shard] { worker_loop(*shard); });
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

void Server::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
}

void Server::worker_loop(Shard& shard) {
  for (;;) {
    std::packaged_task<std::string()> job;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return !shard.jobs.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (shard.jobs.empty()) return;  // stopping and drained
      job = std::move(shard.jobs.front());
      shard.jobs.pop_front();
    }
    job();
  }
}

std::string Server::dispatch(const std::string& line) {
  // Whole-request wall time including the shard queue wait (handle_line's
  // own span covers just the service work — the difference is queueing).
  const obs::Span dispatch_span("serve.dispatch");
  const int shard_idx =
      shard_for(trace_path_of(line), static_cast<int>(shards_.size()));
  Shard& shard = *shards_[static_cast<std::size_t>(shard_idx)];
  std::packaged_task<std::string()> task(
      [this, &line] { return service_.handle_line(line); });
  std::future<std::string> done = task.get_future();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.jobs.push_back(std::move(task));
  }
  shard.cv.notify_one();
  return done.get();
}

void Server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!write_all(fd, dispatch(line) + "\n")) {
        start = buffer.size();
        break;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

}  // namespace mpisect::serve
