// The shared what-if query engine: one implementation of the
// info/replay/sweep/timeline/analyze queries, used by BOTH the offline
// CLIs (mpisect-replay, mpisect-analyze) and the mpisect-serve daemon.
// Queries are plain parameter structs; each run_* renders the final
// output string, so a served result is byte-identical to the CLI's by
// construction rather than by parallel re-implementation.
//
// Every run_* throws trace::TraceError on bad parameters (unknown model,
// malformed grids, unknown export format); callers map that to a CLI
// diagnostic or a protocol error response.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mpisim/machine.hpp"
#include "trace/file.hpp"

namespace mpisect::serve {

/// "recorded | preset1 | preset2 | ..." — shared help/errors text.
[[nodiscard]] std::string model_choices();

/// Machine-model selection plus the per-link/jitter/compute overrides a
/// what-if replay charges against.
struct ModelParams {
  std::string model = "recorded";  ///< "recorded" or a preset name
  double latency = 0.0;            ///< absolute link latency override (s)
  double bandwidth = 0.0;          ///< absolute bandwidth override (B/s)
  double latency_scale = 1.0;
  double bandwidth_scale = 1.0;
  double jitter_scale = 1.0;
  bool no_jitter = false;
  std::uint64_t eager = 0;  ///< eager/rendezvous threshold override
  std::string compute_scale = "1";  ///< positive float or "auto"
  /// Progress-model spec for the what-if frame: "recorded" (the trace
  /// header's own model) or a mpisim::ProgressModel::parse() spec.
  std::string progress = "recorded";
};

struct ResolvedModel {
  mpisim::MachineModel machine;  ///< overheads already folded for progress
  double compute_scale = 1.0;
  mpisim::ProgressModel progress;  ///< resolved what-if progress model
};

/// Resolve the model name against the trace header and apply overrides.
[[nodiscard]] ResolvedModel resolve_model(const trace::TraceFile& tf,
                                          const ModelParams& p);

struct ReplayQuery {
  ModelParams model;
  std::string faults;  ///< fault plan spec, "" = none
  std::uint64_t fault_seed = 0;
  std::string format = "text";  ///< text | csv | json | chrome
  double tseq = 0.0;  ///< sequential reference time (0 = no Eq. 6 bounds)
};

struct TimelineQuery {
  ModelParams model;
  std::string faults;
  std::uint64_t fault_seed = 0;
  double dt = 0.0;  ///< window width (0 = header telemetry-dt, else /100)
  std::string format = "csv";  ///< csv | json | chrome
};

struct SweepQuery {
  std::vector<std::string> models{"recorded"};
  std::vector<double> latency_scales{1.0};
  std::vector<double> bandwidth_scales{1.0};
  std::vector<std::string> compute_scales{"1"};
  std::vector<double> drop_rates{0.0};
  /// Progress-model axis: each entry is "recorded" or a ProgressModel spec;
  /// the sweep CSV gains a `progress` column with the canonical spelling.
  std::vector<std::string> progress{"recorded"};
  std::uint64_t fault_seed = 0;
  double tseq = 0.0;
};

struct AnalyzeQuery {
  std::string format = "text";  ///< text | csv | json
};

[[nodiscard]] std::string run_info(const trace::TraceFile& tf);
[[nodiscard]] std::string run_replay(const trace::TraceFile& tf,
                                     const ReplayQuery& q);
[[nodiscard]] std::string run_timeline(const trace::TraceFile& tf,
                                       const TimelineQuery& q);
[[nodiscard]] std::string run_sweep(const trace::TraceFile& tf,
                                    const SweepQuery& q);
/// `findings` (optional) receives the analyzer's finding count — the CLI
/// turns it into exit status 2.
[[nodiscard]] std::string run_analyze(const trace::TraceFile& tf,
                                      const AnalyzeQuery& q,
                                      std::size_t* findings = nullptr);

// Canonical cache-key forms: a deterministic, exhaustive rendering of
// every parameter that can change the answer. Two queries with equal
// canonical forms produce identical results for the same trace digest.
[[nodiscard]] std::string canonical(const ModelParams& p);
[[nodiscard]] std::string canonical(const ReplayQuery& q);
[[nodiscard]] std::string canonical(const TimelineQuery& q);
[[nodiscard]] std::string canonical(const SweepQuery& q);
[[nodiscard]] std::string canonical(const AnalyzeQuery& q);

}  // namespace mpisect::serve
