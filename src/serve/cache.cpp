#include "serve/cache.hpp"

namespace mpisect::serve {

LruCache::LruCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(max_entries), max_bytes_(max_bytes) {}

std::optional<std::string> LruCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::put(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_bytes_ > 0 && value.size() > max_bytes_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->value.size();
    bytes_ += value.size();
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += value.size();
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
  }
  evict_locked();
}

std::size_t LruCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t LruCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void LruCache::evict_locked() {
  while (!lru_.empty() &&
         (lru_.size() > max_entries_ ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    bytes_ -= lru_.back().value.size();
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

}  // namespace mpisect::serve
