// LRU result cache for served queries. Keys are (trace digest + query
// canonical form) strings, values are fully rendered result texts — the
// daemon returns cache hits without touching the trace at all.
//
// Thread-safe: one mutex. The cache sits off the per-rank hot path (it is
// only consulted once per network query), so a single lock is fine.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mpisect::serve {

class LruCache {
 public:
  /// `max_entries` results are kept; `max_bytes` bounds the summed value
  /// sizes (0 = unbounded). Eviction is strict LRU.
  explicit LruCache(std::size_t max_entries = 128,
                    std::size_t max_bytes = 64 << 20);

  /// Returns the cached result and marks the entry most-recently-used.
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Insert (or refresh) a result. Values larger than max_bytes are not
  /// cached at all.
  void put(const std::string& key, std::string value);

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t bytes() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  void evict_locked();

  std::size_t max_entries_;
  std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
};

}  // namespace mpisect::serve
