// Sessions-style world construction (the MPI-4 Sessions shape, simulated).
//
// The original API built everything up front:
//
//   World world(65536, opts);          // eager: 65536 ranks of state, now
//
// which at extreme scale pays for per-rank communicator state before a
// single rank has run. The Sessions-style API separates *naming* the
// process set from *materializing* it:
//
//   Session session(65536);
//   auto world = session.world_builder()     // "mpi://WORLD" by default
//                    .exec_spec("cooperative:workers=8,stack=128")
//                    .match_spec("hashed")
//                    .build();               // lazy: O(1) per unstarted rank
//   world->run(rank_main);                   // per-rank state appears here
//
// A lazy World defers the world communicator to run() (which rebuilt it
// each run anyway) and CommImpl defers each peer channel to first touch,
// so construction cost is independent of rank count. The eager
// `World(nranks, options)` constructor remains as a deprecated warn-once
// shim with identical observable behaviour.
//
// Process sets follow the MPI standard's two built-ins: "mpi://WORLD"
// (all nranks) and "mpi://SELF" (one rank). Queries mirror
// MPI_Session_get_num_psets / get_nth_pset / pset size.
#pragma once

#include <memory>
#include <string>

#include "mpisim/runtime.hpp"

namespace mpisect::mpisim {

/// Fluent, lazy construction of a World. Setters return *this for
/// chaining; build() may be called repeatedly (each call yields an
/// independent World). Spec-string setters accept the shared
/// `preset[:key=value,...]` vocabulary and throw MpiError(Err::Arg) on
/// malformed specs, so CLI flags can feed them directly.
class WorldBuilder {
 public:
  explicit WorldBuilder(int nranks = 1) : nranks_(nranks) {}

  WorldBuilder& ranks(int nranks) {
    nranks_ = nranks;
    return *this;
  }
  /// Replace the options wholesale (migration aid for call sites that
  /// already assemble a WorldOptions).
  WorldBuilder& options(WorldOptions opts) {
    opts_ = std::move(opts);
    return *this;
  }
  WorldBuilder& machine(MachineModel m) {
    opts_.machine = std::move(m);
    return *this;
  }
  WorldBuilder& seed(std::uint64_t s) {
    opts_.seed = s;
    return *this;
  }
  WorldBuilder& scatter_algo(CollAlgo a) {
    opts_.scatter_algo = a;
    return *this;
  }
  WorldBuilder& gather_algo(CollAlgo a) {
    opts_.gather_algo = a;
    return *this;
  }
  WorldBuilder& start_skew_sigma(double sigma) {
    opts_.start_skew_sigma = sigma;
    return *this;
  }
  WorldBuilder& validate_sections(bool on) {
    opts_.validate_sections = on;
    return *this;
  }
  /// Execution backend + workers + stack size in one knob.
  WorldBuilder& exec(const ExecModel& m) {
    opts_.exec = m.backend;
    opts_.workers = m.workers;
    opts_.stack_kb = m.stack_kb;
    return *this;
  }
  /// e.g. "cooperative:workers=4,stack=256" or "threads".
  WorldBuilder& exec_spec(const std::string& spec) {
    return exec(ExecModel::parse(spec));
  }
  WorldBuilder& match(const MatchModel& m) {
    opts_.match = m;
    return *this;
  }
  /// e.g. "hashed:buckets=64" or "legacy".
  WorldBuilder& match_spec(const std::string& spec) {
    return match(MatchModel::parse(spec));
  }
  WorldBuilder& progress(const ProgressModel& m) {
    opts_.progress = m;
    return *this;
  }
  /// e.g. "progress-thread:threads=1" or "blocking-only".
  WorldBuilder& progress_spec(const std::string& spec) {
    return progress(ProgressModel::parse(spec));
  }
  WorldBuilder& faults(faults::FaultPlan plan) {
    opts_.faults = std::move(plan);
    return *this;
  }

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const WorldOptions& peek_options() const noexcept {
    return opts_;
  }

  /// One-line summary of the configuration using canonical round-trip
  /// spec strings (feeding each `x=<spec>` back through the matching
  /// setter reproduces this builder).
  [[nodiscard]] std::string describe() const;

  /// Construct the World lazily: per-rank communicator state is deferred
  /// to run(). Throws MpiError(Err::Arg) if nranks <= 0.
  [[nodiscard]] std::unique_ptr<World> build() const;

 private:
  int nranks_;
  WorldOptions opts_;
};

/// A simulation session: names the available process sets and hands out
/// WorldBuilders over them. Mirrors MPI-4 Sessions — an application asks
/// the session what process sets exist ("mpi://WORLD", "mpi://SELF"),
/// then derives a world (communicator) from one, instead of assuming a
/// pre-built global communicator.
class Session {
 public:
  /// A session over `nranks` simulated processes with the given default
  /// options (every builder it hands out starts from these).
  explicit Session(int nranks, WorldOptions defaults = {});

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const WorldOptions& defaults() const noexcept {
    return defaults_;
  }

  /// Process-set queries (MPI_Session_get_num_psets / get_nth_pset).
  [[nodiscard]] int num_psets() const noexcept;
  /// Name of the n-th process set. Throws MpiError(Err::Arg) out of range.
  [[nodiscard]] std::string pset_name(int n) const;
  /// Size of a named process set ("mpi://WORLD" = nranks, "mpi://SELF" =
  /// 1). Throws MpiError(Err::Arg) for unknown names.
  [[nodiscard]] int pset_size(const std::string& name) const;
  /// Whether `name` is one of this session's process sets.
  [[nodiscard]] bool has_pset(const std::string& name) const noexcept;

  /// A builder over the named process set, seeded with the session
  /// defaults. Throws MpiError(Err::Arg) for unknown names.
  [[nodiscard]] WorldBuilder world_builder(
      const std::string& pset = "mpi://WORLD") const;

  /// Convenience: build the named process set's World directly.
  [[nodiscard]] std::unique_ptr<World> build_world(
      const std::string& pset = "mpi://WORLD") const {
    return world_builder(pset).build();
  }

 private:
  int nranks_;
  WorldOptions defaults_;
};

}  // namespace mpisect::mpisim
