#include "mpisim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mpisect::mpisim {

double MachineModel::thread_capacity(int threads,
                                     double cores_avail) const noexcept {
  if (threads <= 0 || cores_avail <= 0.0) return 0.0;
  // Threads pack cores layer by layer: the first `cores_avail` threads get
  // full cores, the next layer shares via SMT at smt_yield[1], and so on.
  // Beyond hw_threads_per_core layers the OS time-slices: zero marginal
  // throughput (handled by the caller's oversubscription penalty).
  double capacity = 0.0;
  double remaining = threads;
  for (int layer = 0; layer < hw_threads_per_core && remaining > 0.0;
       ++layer) {
    const double in_layer = std::min(remaining, cores_avail);
    capacity += in_layer * smt_yield[static_cast<std::size_t>(
                               std::min(layer, 3))];
    remaining -= in_layer;
  }
  return std::max(capacity, 1e-9);
}

MachineModel MachineModel::nehalem_cluster() {
  MachineModel m;
  m.name = "nehalem-cluster";
  m.cores_per_node = 8;
  m.nodes = 57;  // 456 cores
  m.hw_threads_per_core = 1;  // hyper-threading disabled on the testbed
  m.flops_per_core = 2.2e9;
  m.compute_noise_sigma = 0.02;
  m.net.cores_per_node = 8;
  m.net.intra_node = LinkParams{0.6e-6, 5.0e9};
  m.net.inter_node = LinkParams{2.8e-6, 2.5e9};
  m.net.send_overhead = 4e-7;
  m.net.recv_overhead = 4e-7;
  m.net.eager_threshold = 16 * 1024;
  // Heavy-tailed noise: occasional OS/network stalls of hundreds of
  // milliseconds. With hundreds of messages per time-step these propagate
  // through halo dependencies and dominate the HALO section at scale —
  // the paper's "accumulation of variability" (Sec. 5.1).
  m.net.jitter.kind = JitterModel::Kind::Lognormal;
  m.net.jitter.rel_sigma = 0.22;
  m.net.jitter.add_sigma = 4e-6;
  m.net.jitter.spike_prob = 0.008;
  m.net.jitter.spike_mean = 0.25;
  m.omp.fork_join_base = 1.5e-6;
  m.omp.fork_join_per_thread = 4e-7;
  return m;
}

MachineModel MachineModel::knl() {
  MachineModel m;
  m.name = "knl";
  m.cores_per_node = 68;
  m.nodes = 1;
  m.hw_threads_per_core = 4;
  // KNL cores are slow scalar engines; the paper's sequential Lulesh run
  // takes 882 s vs the Broadwell's ~what a workstation core delivers.
  m.flops_per_core = 0.9e9;
  m.smt_yield = {1.0, 0.32, 0.18, 0.10};
  m.compute_noise_sigma = 0.012;
  m.net.cores_per_node = 272;  // all ranks share the node (shared memory)
  m.net.intra_node = LinkParams{0.9e-6, 6.0e9};
  m.net.inter_node = LinkParams{0.9e-6, 6.0e9};
  m.net.send_overhead = 6e-7;
  m.net.recv_overhead = 6e-7;
  m.net.jitter.kind = JitterModel::Kind::Lognormal;
  m.net.jitter.rel_sigma = 0.10;
  m.net.jitter.add_sigma = 2e-6;
  // "OpenMP overhead tends to increase more rapidly than on the Broadwell"
  // (paper Sec. 5.2): larger per-thread fork/join and barrier terms.
  m.omp.fork_join_base = 6e-6;
  m.omp.fork_join_per_thread = 2.2e-6;
  m.omp.barrier_log_cost = 4e-6;
  m.omp.static_imbalance = 0.05;
  m.omp.oversubscription_penalty = 1.6;
  return m;
}

MachineModel MachineModel::broadwell_2s() {
  MachineModel m;
  m.name = "broadwell-2s";
  m.cores_per_node = 36;  // 2 sockets x 18 cores
  m.nodes = 1;
  m.hw_threads_per_core = 2;
  m.flops_per_core = 3.6e9;
  m.smt_yield = {1.0, 0.25, 0.0, 0.0};
  m.compute_noise_sigma = 0.008;
  m.net.cores_per_node = 72;
  m.net.intra_node = LinkParams{0.5e-6, 9.0e9};
  m.net.inter_node = LinkParams{0.5e-6, 9.0e9};
  m.net.send_overhead = 3e-7;
  m.net.recv_overhead = 3e-7;
  m.net.jitter.kind = JitterModel::Kind::Lognormal;
  m.net.jitter.rel_sigma = 0.08;
  m.net.jitter.add_sigma = 1e-6;
  m.omp.fork_join_base = 1.8e-6;
  m.omp.fork_join_per_thread = 4.5e-7;
  m.omp.barrier_log_cost = 1.2e-6;
  m.omp.static_imbalance = 0.03;
  m.omp.oversubscription_penalty = 1.35;
  return m;
}

MachineModel MachineModel::ideal(int cores_per_node, int nodes) {
  MachineModel m;
  m.name = "ideal";
  m.cores_per_node = cores_per_node;
  m.nodes = nodes;
  m.hw_threads_per_core = 1;
  m.flops_per_core = 1.0e9;
  m.smt_yield = {1.0, 0.0, 0.0, 0.0};
  m.compute_noise_sigma = 0.0;
  m.net.cores_per_node = cores_per_node;
  m.net.intra_node = LinkParams{1e-6, 10.0e9};
  m.net.inter_node = LinkParams{2e-6, 5.0e9};
  m.net.send_overhead = 1e-7;
  m.net.recv_overhead = 1e-7;
  m.net.jitter.kind = JitterModel::Kind::None;
  m.omp.fork_join_base = 1e-6;
  m.omp.fork_join_per_thread = 1e-7;
  m.omp.barrier_log_cost = 0.0;
  m.omp.static_imbalance = 0.0;
  return m;
}

std::optional<MachineModel> MachineModel::preset(std::string_view name) {
  if (name == "nehalem-cluster" || name == "nehalem") {
    return nehalem_cluster();
  }
  if (name == "knl") return knl();
  if (name == "broadwell-2s" || name == "broadwell") return broadwell_2s();
  if (name == "ideal") return ideal();
  return std::nullopt;
}

std::vector<std::string> MachineModel::preset_names() {
  return {"nehalem-cluster", "knl", "broadwell-2s", "ideal"};
}

namespace {

const char* jitter_kind_name(JitterModel::Kind k) noexcept {
  switch (k) {
    case JitterModel::Kind::None: return "none";
    case JitterModel::Kind::Gaussian: return "gaussian";
    case JitterModel::Kind::Lognormal: return "lognormal";
  }
  return "?";
}

}  // namespace

std::string MachineModel::describe() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "machine %s: %d node(s) x %d core(s) x %d hw thread(s)\n"
      "  compute: %.3g flops/core, noise sigma %.3g\n"
      "  net: intra %.3g s + B/%.3g B/s, inter %.3g s + B/%.3g B/s\n"
      "  net: overhead send %.3g s recv %.3g s, eager <= %zu B\n"
      "  net: nbc tree %s\n"
      "  jitter: %s rel %.3g add %.3g spike p=%.3g mean %.3g\n"
      "  omp: fork %.3g + %.3g/thr, barrier %.3g*log2, imbalance %.3g",
      name.c_str(), nodes, cores_per_node, hw_threads_per_core,
      flops_per_core, compute_noise_sigma, net.intra_node.latency,
      net.intra_node.bandwidth, net.inter_node.latency,
      net.inter_node.bandwidth, net.send_overhead, net.recv_overhead,
      net.eager_threshold,
      net.hierarchical_nbc ? "hierarchical (intra-node + fabric)" : "flat",
      jitter_kind_name(net.jitter.kind),
      net.jitter.rel_sigma, net.jitter.add_sigma, net.jitter.spike_prob,
      net.jitter.spike_mean, omp.fork_join_base, omp.fork_join_per_thread,
      omp.barrier_log_cost, omp.static_imbalance);
  return buf;
}

}  // namespace mpisect::mpisim
