#include "mpisim/progress.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "mpisim/error.hpp"

namespace mpisect::mpisim {

namespace {

/// "tax=0.1" -> ("tax", 0.1). Throws on a malformed pair.
std::pair<std::string, double> parse_option(const std::string& spec,
                                            const std::string& item) {
  const std::size_t eq = item.find('=');
  require(eq != std::string::npos && eq > 0 && eq + 1 < item.size(), Err::Arg,
          ("progress option is not key=value: " + spec).c_str());
  char* end = nullptr;
  const std::string value = item.substr(eq + 1);
  const double v = std::strtod(value.c_str(), &end);
  require(end != nullptr && *end == '\0' && v >= 0.0, Err::Arg,
          ("progress option value is not a non-negative number: " + spec)
              .c_str());
  return {item.substr(0, eq), v};
}

/// %g keeps the canonical spec short (5e-08, 0.05) and round-trippable
/// through strtod for every value a user can express on the flag.
std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

const char* progress_mode_name(ProgressMode m) noexcept {
  switch (m) {
    case ProgressMode::BlockingOnly:
      return "blocking-only";
    case ProgressMode::Opportunistic:
      return "opportunistic";
    case ProgressMode::ProgressThread:
      return "progress-thread";
  }
  return "?";
}

std::string ProgressModel::spec() const {
  std::string s = name();
  switch (mode) {
    case ProgressMode::BlockingOnly:
      break;
    case ProgressMode::Opportunistic:
      s += ":entry=" + fmt_g(entry_overhead);
      break;
    case ProgressMode::ProgressThread:
      s += ":tax=" + fmt_g(core_tax) + ",lat=" + fmt_g(thread_latency);
      break;
  }
  return s;
}

ProgressModel ProgressModel::parse(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  const std::string preset = spec.substr(0, colon);

  ProgressModel m;
  if (preset == "blocking-only") {
    m.mode = ProgressMode::BlockingOnly;
  } else if (preset == "opportunistic") {
    m.mode = ProgressMode::Opportunistic;
  } else if (preset == "progress-thread") {
    m.mode = ProgressMode::ProgressThread;
  } else {
    throw MpiError(Err::Arg, "unknown progress preset '" + preset +
                                 "' (expected " + choices() + ")");
  }
  if (colon == std::string::npos) return m;
  require(m.mode != ProgressMode::BlockingOnly, Err::Arg,
          "blocking-only takes no options");

  std::string rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto [key, value] = parse_option(spec, item);
    if (m.mode == ProgressMode::Opportunistic && key == "entry") {
      m.entry_overhead = value;
    } else if (m.mode == ProgressMode::ProgressThread && key == "tax") {
      m.core_tax = value;
    } else if (m.mode == ProgressMode::ProgressThread && key == "lat") {
      m.thread_latency = value;
    } else {
      throw MpiError(Err::Arg, "unknown progress option '" + key + "' for " +
                                   std::string(m.name()));
    }
  }
  return m;
}

std::string ProgressModel::choices() {
  return "blocking-only|opportunistic|progress-thread";
}

double ProgressModel::nbc_complete_time(double t_wait_entry, double max_post,
                                        double algo_cost) const noexcept {
  switch (mode) {
    case ProgressMode::BlockingOnly:
      // No background progress: the algorithm only starts once the waiter
      // blocks at the fence, after every member has posted.
      return std::max(t_wait_entry, max_post) + algo_cost;
    case ProgressMode::Opportunistic:
      // The algorithm runs behind other MPI entries, finishing `algo_cost`
      // after the last post; a late waiter pays nothing extra.
      return std::max(max_post + algo_cost, t_wait_entry);
    case ProgressMode::ProgressThread:
      // As opportunistic, plus the thread's completion-publication lag.
      return std::max(max_post + thread_latency + algo_cost, t_wait_entry);
  }
  return t_wait_entry;
}

double nbc_algo_cost(double latency, double bandwidth, int p,
                     std::uint64_t bytes) noexcept {
  double rounds = 0.0;
  for (int k = 1; k < p; k <<= 1) rounds += 1.0;
  return rounds * (latency + static_cast<double>(bytes) / bandwidth);
}

}  // namespace mpisect::mpisim
