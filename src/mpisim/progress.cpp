#include "mpisim/progress.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpisim/error.hpp"
#include "support/spec.hpp"

namespace mpisect::mpisim {

namespace {

using support::spec_value;

}  // namespace

const char* progress_mode_name(ProgressMode m) noexcept {
  switch (m) {
    case ProgressMode::BlockingOnly:
      return "blocking-only";
    case ProgressMode::Opportunistic:
      return "opportunistic";
    case ProgressMode::ProgressThread:
      return "progress-thread";
  }
  return "?";
}

std::string ProgressModel::spec() const {
  std::string s = name();
  switch (mode) {
    case ProgressMode::BlockingOnly:
      break;
    case ProgressMode::Opportunistic:
      s += ":entry=" + spec_value(entry_overhead);
      break;
    case ProgressMode::ProgressThread:
      s += ":tax=" + spec_value(core_tax) + ",lat=" + spec_value(thread_latency);
      break;
  }
  return s;
}

ProgressModel ProgressModel::parse(const std::string& spec) {
  support::SpecParts parts;
  try {
    parts = support::parse_spec(spec);
  } catch (const std::invalid_argument& e) {
    throw MpiError(Err::Arg, std::string("progress ") + e.what());
  }

  ProgressModel m;
  if (parts.preset == "blocking-only") {
    m.mode = ProgressMode::BlockingOnly;
  } else if (parts.preset == "opportunistic") {
    m.mode = ProgressMode::Opportunistic;
  } else if (parts.preset == "progress-thread") {
    m.mode = ProgressMode::ProgressThread;
  } else {
    throw MpiError(Err::Arg, "unknown progress preset '" + parts.preset +
                                 "' (expected " + choices() + ")");
  }
  require(parts.options.empty() || m.mode != ProgressMode::BlockingOnly,
          Err::Arg, "blocking-only takes no options");

  for (const auto& [key, raw] : parts.options) {
    double value = 0.0;
    try {
      value = support::spec_number(raw);
    } catch (const std::invalid_argument& e) {
      throw MpiError(Err::Arg, std::string("progress ") + e.what());
    }
    if (m.mode == ProgressMode::Opportunistic && key == "entry") {
      m.entry_overhead = value;
    } else if (m.mode == ProgressMode::ProgressThread && key == "tax") {
      m.core_tax = value;
    } else if (m.mode == ProgressMode::ProgressThread && key == "lat") {
      m.thread_latency = value;
    } else {
      throw MpiError(Err::Arg, "unknown progress option '" + key + "' for " +
                                   std::string(m.name()));
    }
  }
  return m;
}

std::string ProgressModel::choices() {
  return "blocking-only|opportunistic|progress-thread";
}

double ProgressModel::nbc_complete_time(double t_wait_entry, double max_post,
                                        double algo_cost) const noexcept {
  switch (mode) {
    case ProgressMode::BlockingOnly:
      // No background progress: the algorithm only starts once the waiter
      // blocks at the fence, after every member has posted.
      return std::max(t_wait_entry, max_post) + algo_cost;
    case ProgressMode::Opportunistic:
      // The algorithm runs behind other MPI entries, finishing `algo_cost`
      // after the last post; a late waiter pays nothing extra.
      return std::max(max_post + algo_cost, t_wait_entry);
    case ProgressMode::ProgressThread:
      // As opportunistic, plus the thread's completion-publication lag.
      return std::max(max_post + thread_latency + algo_cost, t_wait_entry);
  }
  return t_wait_entry;
}

double nbc_algo_cost(double latency, double bandwidth, int p,
                     std::uint64_t bytes) noexcept {
  double rounds = 0.0;
  for (int k = 1; k < p; k <<= 1) rounds += 1.0;
  return rounds * (latency + static_cast<double>(bytes) / bandwidth);
}

}  // namespace mpisect::mpisim
