#include "mpisim/op.hpp"

#include <algorithm>

#include "mpisim/error.hpp"

namespace mpisect::mpisim {
namespace {

template <typename T>
void reduce_arith(ReduceOp op, const void* in_v, void* inout_v, int count) {
  const T* in = static_cast<const T*>(in_v);
  T* inout = static_cast<T*>(inout_v);
  switch (op) {
    case ReduceOp::Sum:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] + inout[i]);
      return;
    case ReduceOp::Prod:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] * inout[i]);
      return;
    case ReduceOp::Max:
      for (int i = 0; i < count; ++i) inout[i] = std::max(in[i], inout[i]);
      return;
    case ReduceOp::Min:
      for (int i = 0; i < count; ++i) inout[i] = std::min(in[i], inout[i]);
      return;
    case ReduceOp::LAnd:
      for (int i = 0; i < count; ++i) {
        inout[i] = static_cast<T>((in[i] != T{}) && (inout[i] != T{}));
      }
      return;
    case ReduceOp::LOr:
      for (int i = 0; i < count; ++i) {
        inout[i] = static_cast<T>((in[i] != T{}) || (inout[i] != T{}));
      }
      return;
    default:
      throw MpiError(Err::Op, "operator not valid for arithmetic type");
  }
}

template <typename T>
void reduce_bitwise(ReduceOp op, const void* in_v, void* inout_v, int count) {
  const T* in = static_cast<const T*>(in_v);
  T* inout = static_cast<T*>(inout_v);
  switch (op) {
    case ReduceOp::BAnd:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] & inout[i]);
      return;
    case ReduceOp::BOr:
      for (int i = 0; i < count; ++i) inout[i] = static_cast<T>(in[i] | inout[i]);
      return;
    default:
      reduce_arith<T>(op, in_v, inout_v, count);
      return;
  }
}

void reduce_loc(ReduceOp op, const void* in_v, void* inout_v, int count) {
  const auto* in = static_cast<const DoubleInt*>(in_v);
  auto* inout = static_cast<DoubleInt*>(inout_v);
  for (int i = 0; i < count; ++i) {
    const bool take_in =
        op == ReduceOp::MaxLoc
            ? (in[i].value > inout[i].value ||
               (in[i].value == inout[i].value && in[i].index < inout[i].index))
            : (in[i].value < inout[i].value ||
               (in[i].value == inout[i].value && in[i].index < inout[i].index));
    if (take_in) inout[i] = in[i];
  }
}

}  // namespace

const char* op_name(ReduceOp op) noexcept {
  switch (op) {
    case ReduceOp::Sum: return "MPI_SUM";
    case ReduceOp::Prod: return "MPI_PROD";
    case ReduceOp::Max: return "MPI_MAX";
    case ReduceOp::Min: return "MPI_MIN";
    case ReduceOp::LAnd: return "MPI_LAND";
    case ReduceOp::LOr: return "MPI_LOR";
    case ReduceOp::BAnd: return "MPI_BAND";
    case ReduceOp::BOr: return "MPI_BOR";
    case ReduceOp::MaxLoc: return "MPI_MAXLOC";
    case ReduceOp::MinLoc: return "MPI_MINLOC";
  }
  return "MPI_OP_NULL";
}

bool op_valid(ReduceOp op, Datatype type) noexcept {
  const bool loc_op = op == ReduceOp::MaxLoc || op == ReduceOp::MinLoc;
  if (type == Datatype::DoubleInt) return loc_op;
  if (loc_op) return false;
  const bool bitwise = op == ReduceOp::BAnd || op == ReduceOp::BOr;
  const bool integral = type == Datatype::Byte || type == Datatype::Char ||
                        type == Datatype::Int || type == Datatype::Long ||
                        type == Datatype::UnsignedLong;
  if (bitwise) return integral;
  if (type == Datatype::Byte) return bitwise;  // MPI_BYTE: bitwise only
  return true;
}

void apply_op(ReduceOp op, Datatype type, const void* in, void* inout,
              int count) {
  require(count >= 0, Err::Count, "negative reduction count");
  require(op_valid(op, type), Err::Op, "op/datatype combination not allowed");
  switch (type) {
    case Datatype::Byte:
      reduce_bitwise<unsigned char>(op, in, inout, count);
      return;
    case Datatype::Char:
      reduce_bitwise<char>(op, in, inout, count);
      return;
    case Datatype::Int:
      reduce_bitwise<int>(op, in, inout, count);
      return;
    case Datatype::Long:
      reduce_bitwise<long>(op, in, inout, count);
      return;
    case Datatype::UnsignedLong:
      reduce_bitwise<unsigned long>(op, in, inout, count);
      return;
    case Datatype::Float:
      reduce_arith<float>(op, in, inout, count);
      return;
    case Datatype::Double:
      reduce_arith<double>(op, in, inout, count);
      return;
    case Datatype::DoubleInt:
      reduce_loc(op, in, inout, count);
      return;
  }
  throw MpiError(Err::Type, "unknown datatype");
}

}  // namespace mpisect::mpisim
