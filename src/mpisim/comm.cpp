#include "mpisim/comm.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>

#include "mpisim/error.hpp"
#include "mpisim/faults/engine.hpp"
#include "mpisim/runtime.hpp"

namespace mpisect::mpisim {

// ---------------------------------------------------------------------------
// Group
// ---------------------------------------------------------------------------

Group::Group(std::vector<int> world_ranks)
    : world_ranks_(std::move(world_ranks)) {}

int Group::world_rank(int group_rank) const {
  require(group_rank >= 0 && group_rank < size(), Err::Rank,
          "group rank out of range");
  return world_ranks_[static_cast<std::size_t>(group_rank)];
}

int Group::rank_of_world(int world_rank) const noexcept {
  for (std::size_t i = 0; i < world_ranks_.size(); ++i) {
    if (world_ranks_[i] == world_rank) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// CommImpl
// ---------------------------------------------------------------------------

CommImpl::CommImpl(World& world, Group group, int context_id)
    : world_(world),
      group_(std::move(group)),
      context_id_(context_id),
      split_sync_(group_.size(), world.executor(), world.abort_flag()),
      publish_sync_(group_.size(), world.executor(), world.abort_flag()),
      u64_sync_(group_.size(), world.executor(), world.abort_flag()),
      nbc_sync_(group_.size(), world.executor(), world.abort_flag()) {
  const auto n = static_cast<std::size_t>(group_.size());
  // Channel slots start empty: channel(i) materializes rank i's matching
  // engine on first touch, so constructing a 65k-rank communicator costs
  // O(p) pointers, not O(p) mutex+waitpoint+queue structures.
  channels_ = std::make_unique<std::atomic<Channel*>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    channels_[i].store(nullptr, std::memory_order_relaxed);
  }
  rank_states_.resize(n);
}

CommImpl::~CommImpl() {
  const auto n = static_cast<std::size_t>(group_.size());
  for (std::size_t i = 0; i < n; ++i) {
    delete channels_[i].load(std::memory_order_relaxed);
  }
}

Channel& CommImpl::channel(int comm_rank) {
  require(comm_rank >= 0 && comm_rank < size(), Err::Rank,
          "channel rank out of range");
  std::atomic<Channel*>& slot = channels_[static_cast<std::size_t>(comm_rank)];
  Channel* ch = slot.load(std::memory_order_acquire);
  if (ch != nullptr) return *ch;
  const std::lock_guard lock(chan_mu_);
  ch = slot.load(std::memory_order_relaxed);
  if (ch == nullptr) {
    // The channel belongs to comm rank `comm_rank`; queued bytes are
    // charged to that rank's world-level memory account.
    ch = new Channel(world_.executor(), world_.abort_flag(),
                     world_.progress().rendezvous_extra(),
                     &world_.mem_account().rank(group_.world_rank(comm_rank)),
                     world_.options().match);
    slot.store(ch, std::memory_order_release);
  }
  return *ch;
}

CommImpl::RankState& CommImpl::rank_state(int comm_rank) {
  require(comm_rank >= 0 && comm_rank < size(), Err::Rank,
          "rank state out of range");
  return rank_states_[static_cast<std::size_t>(comm_rank)];
}

// ---------------------------------------------------------------------------
// Raw (hook-free) point-to-point helpers
// ---------------------------------------------------------------------------

namespace {

/// Begin a send: charge sender CPU overhead, stamp virtual times, deposit
/// into the destination channel. Returns the message for completion.
MessagePtr raw_start_send(Ctx& ctx, CommImpl& impl, int my_rank,
                          const void* buf, std::size_t bytes, int dst,
                          int tag) {
  require(dst >= 0 && dst < impl.size(), Err::Rank, "send: bad destination");
  const NetworkModel& net = ctx.machine().net;
  auto& rs = impl.rank_state(my_rank);
  const int gsrc = impl.group().world_rank(my_rank);
  const int gdst = impl.group().world_rank(dst);
  const std::uint64_t seq = rs.send_seq[dst]++;

  const std::uint64_t op = ctx.next_op_id();
  const double t_before = ctx.now();
  ctx.clock().advance(net.cpu_overhead(gsrc, net.send_overhead, op, 0));

  auto msg = std::make_shared<Message>();
  msg->src = my_rank;
  msg->tag = tag;
  msg->seq = seq;
  msg->bytes = bytes;
  if (buf != nullptr && bytes != 0) {
    const auto* p = static_cast<const std::byte*>(buf);
    msg->payload.assign(p, p + bytes);
  }
  msg->t_send_start = ctx.now();
  msg->wire_cost = net.transfer_cost(gsrc, gdst, bytes, seq);
  msg->rendezvous = bytes > net.eager_threshold;

  // Fault injection: the engine decides this message's fate from its
  // logical identity (edge, sequence number), so the decision is identical
  // across scheduler backends. Degradation and retransmit delay fold into
  // the wire cost; a lost message is flagged for the channel to black-hole.
  faults::WireFate fate;
  faults::FaultEngine* const fe = ctx.world().fault_engine();
  if (fe != nullptr) {
    fate = fe->wire_fate(gsrc, gdst, seq, msg->t_send_start,
                         tag >= kInternalTagBase);
    msg->wire_cost =
        msg->wire_cost * fate.cost_factor + fate.add_latency + fate.extra_delay;
    msg->fault_lost = fate.lost;
  }
  msg->t_avail = msg->t_send_start + msg->wire_cost;

  const std::size_t depth = impl.channel(dst).deposit(msg);
  if (auto& tap = ctx.world().trace_tap().on_send_post) {
    tap(ctx, TapSend{msg.get(), impl.context_id(), gsrc, gdst, tag, bytes,
                     seq, op, t_before, depth});
  }

  if (fe != nullptr && (fate.lost || fate.attempts > 1 || fate.duplicate)) {
    if (fate.duplicate && !fe->dedup_duplicates() && !fate.lost) {
      // Resilience off: the duplicate copy reaches the matching engine one
      // retransmit timeout behind the original, where it can corrupt
      // wildcard receives — exactly the hazard dedup exists to remove.
      auto copy = std::make_shared<Message>(*msg);
      copy->fault_duplicate = true;
      copy->wire_cost += fe->plan().retransmit.rto;
      copy->t_avail = copy->t_send_start + copy->wire_cost;
      impl.channel(dst).deposit(copy);
    }
    if (auto& ftap = ctx.world().trace_tap().on_fault) {
      TapFault tf;
      tf.kind = fate.lost ? FaultKind::Loss
                : fate.attempts > 1 ? FaultKind::Drop
                                    : FaultKind::Duplicate;
      tf.comm_context = impl.context_id();
      tf.src_world = gsrc;
      tf.dst_world = gdst;
      tf.seq = seq;
      tf.attempts = fate.attempts;
      tf.seconds = fate.extra_delay;
      tf.t = ctx.now();
      ftap(ctx, tf);
    }
  }
  return msg;
}

/// Complete a send: a rendezvous sender blocks until the transfer finishes.
void raw_finish_send(Ctx& ctx, CommImpl& impl, int dst,
                     const MessagePtr& msg) {
  const double t_before = ctx.now();
  if (msg->rendezvous) {
    const double t = impl.channel(dst).wait_delivered(msg);
    ctx.clock().sync_to(t);
  }
  if (auto& tap = ctx.world().trace_tap().on_send_wait) {
    tap(ctx, TapSendWait{msg.get(), t_before});
  }
}

PostedRecvPtr raw_post_recv(Ctx& ctx, CommImpl& impl, int my_rank, void* buf,
                            std::size_t max_bytes, int src, int tag) {
  require(src == kAnySource || (src >= 0 && src < impl.size()), Err::Rank,
          "recv: bad source");
  auto pr = std::make_shared<PostedRecv>();
  pr->src = src;
  pr->tag = tag;
  pr->t_post = ctx.now();
  pr->buf = buf;
  pr->max_bytes = max_bytes;
  const std::size_t depth = impl.channel(my_rank).post(pr);
  if (auto& tap = ctx.world().trace_tap().on_recv_post) {
    const int src_posted =
        src == kAnySource ? kAnySource : impl.group().world_rank(src);
    tap(ctx, TapRecvPost{pr.get(), impl.context_id(), depth, src_posted, tag});
  }
  return pr;
}

Status raw_finish_recv(Ctx& ctx, CommImpl& impl, int my_rank,
                       const PostedRecvPtr& pr) {
  const double t_before = ctx.now();
  Status st = impl.channel(my_rank).wait_recv(pr);
  ctx.clock().sync_to(st.t_complete);
  const NetworkModel& net = ctx.machine().net;
  const int grank = impl.group().world_rank(my_rank);
  const std::uint64_t op = ctx.next_op_id();
  ctx.clock().advance(net.cpu_overhead(grank, net.recv_overhead, op, 1));
  st.t_complete = ctx.now();
  if (auto& tap = ctx.world().trace_tap().on_recv_wait) {
    tap(ctx, TapRecvWait{pr.get(), impl.context_id(),
                         impl.group().world_rank(st.source), st.seq, st.bytes,
                         op, t_before});
  }
  return st;
}

}  // namespace

// ---------------------------------------------------------------------------
// Hook plumbing
// ---------------------------------------------------------------------------

namespace {

CallInfo make_info(const Comm& comm, MpiCall call, int peer, std::size_t bytes,
                   int tag) {
  CallInfo ci;
  ci.call = call;
  ci.comm_context = comm.context_id();
  ci.rank = comm.rank();
  ci.comm_size = comm.size();
  ci.peer = peer;
  ci.tag = tag;
  ci.bytes = bytes;
  ci.t_virtual = comm.ctx().now();
  return ci;
}

void fire_begin(Ctx& ctx, CallInfo& ci) {
  auto& hook = ctx.world().hooks().on_call_begin;
  if (hook) {
    ci.t_virtual = ctx.now();
    hook(ctx, ci);
  }
}

void fire_end(Ctx& ctx, CallInfo& ci) {
  auto& hook = ctx.world().hooks().on_call_end;
  if (hook) {
    ci.t_virtual = ctx.now();
    hook(ctx, ci);
  }
}

/// Notify tools that the caller became a member of a new communicator.
void fire_comm_create(Ctx& ctx, CommImpl& impl, int parent_context,
                      int comm_rank) {
  auto& hook = ctx.world().hooks().on_comm_create;
  if (!hook) return;
  CommLifecycle info;
  info.context = impl.context_id();
  info.parent_context = parent_context;
  info.rank = comm_rank;
  info.size = impl.size();
  info.world_ranks = &impl.group().world_ranks();
  hook(ctx, info);
}

/// RAII begin/end bracket for one intercepted call. Doubles as the MPI-call
/// fault checkpoint: a due stall or kill fires before the begin hook, so a
/// killed rank never emits an unbalanced begin/end pair.
class HookScope {
 public:
  HookScope(Ctx& ctx, CallInfo ci) : ctx_(ctx), ci_(ci) {
    ctx_.fault_checkpoint();
    fire_begin(ctx_, ci_);
  }
  ~HookScope() { fire_end(ctx_, ci_); }
  HookScope(const HookScope&) = delete;
  HookScope& operator=(const HookScope&) = delete;

 private:
  Ctx& ctx_;
  CallInfo ci_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Comm: basics
// ---------------------------------------------------------------------------

int Comm::size() const noexcept { return impl_ ? impl_->size() : 0; }

int Comm::context_id() const noexcept {
  return impl_ ? impl_->context_id() : -1;
}

int Comm::world_rank_of(int comm_rank) const {
  require(valid(), Err::Comm, "null communicator");
  return impl_->group().world_rank(comm_rank);
}

double Comm::wtime() const noexcept { return ctx_->now(); }

void Comm::charge_collective_entry() {
  const NetworkModel& net = ctx_->machine().net;
  const int grank = impl_->group().world_rank(rank_);
  const std::uint64_t op = ctx_->next_op_id();
  const double t_before = ctx_->now();
  ctx_->clock().advance(net.cpu_overhead(grank, net.send_overhead, op, 2));
  if (auto& tap = ctx_->world().trace_tap().on_coll_entry) {
    tap(*ctx_, op, t_before);
  }
}

int Comm::next_internal_tag() {
  auto& rs = impl_->rank_state(rank_);
  return kInternalTagBase + static_cast<int>(rs.coll_seq++ % 1024);
}

// ---------------------------------------------------------------------------
// Comm: point-to-point
// ---------------------------------------------------------------------------

void Comm::send(const void* buf, std::size_t bytes, int dst, int tag) {
  require(valid(), Err::Comm, "null communicator");
  require(tag >= 0 && tag < kTagUb, Err::Tag, "user tag out of range");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::Send, dst, bytes, tag));
  const MessagePtr msg = raw_start_send(*ctx_, *impl_, rank_, buf, bytes, dst, tag);
  raw_finish_send(*ctx_, *impl_, dst, msg);
}

Status Comm::recv(void* buf, std::size_t max_bytes, int src, int tag) {
  require(valid(), Err::Comm, "null communicator");
  require(tag == kAnyTag || (tag >= 0 && tag < kTagUb), Err::Tag,
          "user tag out of range");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::Recv, src, max_bytes, tag));
  const PostedRecvPtr pr =
      raw_post_recv(*ctx_, *impl_, rank_, buf, max_bytes, src, tag);
  return raw_finish_recv(*ctx_, *impl_, rank_, pr);
}

void Comm::send_internal(const void* buf, std::size_t bytes, int dst,
                         int tag) {
  const MessagePtr msg = raw_start_send(*ctx_, *impl_, rank_, buf, bytes, dst, tag);
  raw_finish_send(*ctx_, *impl_, dst, msg);
}

Status Comm::recv_internal(void* buf, std::size_t max_bytes, int src,
                           int tag) {
  const PostedRecvPtr pr =
      raw_post_recv(*ctx_, *impl_, rank_, buf, max_bytes, src, tag);
  return raw_finish_recv(*ctx_, *impl_, rank_, pr);
}

void Comm::sendrecv_internal(const void* sendbuf, std::size_t send_bytes,
                             int dst, void* recvbuf, std::size_t recv_bytes,
                             int src, int tag) {
  const MessagePtr msg =
      raw_start_send(*ctx_, *impl_, rank_, sendbuf, send_bytes, dst, tag);
  const PostedRecvPtr pr =
      raw_post_recv(*ctx_, *impl_, rank_, recvbuf, recv_bytes, src, tag);
  raw_finish_recv(*ctx_, *impl_, rank_, pr);
  raw_finish_send(*ctx_, *impl_, dst, msg);
}

Status Comm::sendrecv(const void* sendbuf, std::size_t send_bytes, int dst,
                      int send_tag, void* recvbuf, std::size_t recv_bytes,
                      int src, int recv_tag) {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Sendrecv, dst, send_bytes, send_tag));
  const MessagePtr msg =
      raw_start_send(*ctx_, *impl_, rank_, sendbuf, send_bytes, dst, send_tag);
  const PostedRecvPtr pr =
      raw_post_recv(*ctx_, *impl_, rank_, recvbuf, recv_bytes, src, recv_tag);
  const Status st = raw_finish_recv(*ctx_, *impl_, rank_, pr);
  raw_finish_send(*ctx_, *impl_, dst, msg);
  return st;
}

Status Comm::probe(int src, int tag) {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::Probe, src, 0, tag));
  const double t_before = ctx_->now();
  const Status st = impl_->channel(rank_).probe(src, tag, ctx_->now());
  ctx_->clock().sync_to(st.t_complete);
  if (auto& tap = ctx_->world().trace_tap().on_probe) {
    const int src_posted =
        src == kAnySource ? kAnySource : impl_->group().world_rank(src);
    tap(*ctx_, TapProbe{impl_->context_id(),
                        impl_->group().world_rank(st.source), st.seq, t_before,
                        src_posted, tag});
  }
  return st;
}

Comm::Request Comm::isend(const void* buf, std::size_t bytes, int dst,
                          int tag) {
  require(valid(), Err::Comm, "null communicator");
  require(tag >= 0 && tag < kTagUb, Err::Tag, "user tag out of range");
  const std::uint64_t req_id = ctx_->next_request_id();
  {
    CallInfo ci = make_info(*this, MpiCall::Isend, dst, bytes, tag);
    ci.request = req_id;
    fire_begin(*ctx_, ci);
    fire_end(*ctx_, ci);
  }
  auto st = std::make_shared<Request::State>();
  st->kind = Request::Kind::Send;
  st->msg = raw_start_send(*ctx_, *impl_, rank_, buf, bytes, dst, tag);
  st->channel = &impl_->channel(dst);
  st->impl = impl_;
  st->ctx = ctx_;
  st->peer = dst;
  st->comm_context = impl_->context_id();
  st->comm_rank = rank_;
  st->comm_size = impl_->size();
  st->id = req_id;
  return Request(std::move(st));
}

Comm::Request Comm::irecv(void* buf, std::size_t max_bytes, int src, int tag) {
  require(valid(), Err::Comm, "null communicator");
  const std::uint64_t req_id = ctx_->next_request_id();
  {
    CallInfo ci = make_info(*this, MpiCall::Irecv, src, max_bytes, tag);
    ci.request = req_id;
    fire_begin(*ctx_, ci);
    fire_end(*ctx_, ci);
  }
  auto st = std::make_shared<Request::State>();
  st->kind = Request::Kind::Recv;
  st->recv = raw_post_recv(*ctx_, *impl_, rank_, buf, max_bytes, src, tag);
  st->channel = &impl_->channel(rank_);
  st->impl = impl_;
  st->ctx = ctx_;
  st->peer = src;
  st->comm_context = impl_->context_id();
  st->comm_rank = rank_;
  st->comm_size = impl_->size();
  st->id = req_id;
  return Request(std::move(st));
}

Comm::Request Comm::nbc_post(MpiCall call, const void* sendbuf, void* recvbuf,
                             int count, Datatype type, ReduceOp op,
                             std::size_t bytes) {
  const std::uint64_t req_id = ctx_->next_request_id();
  {
    CallInfo ci = make_info(*this, call, -1, bytes, -1);
    ci.request = req_id;
    fire_begin(*ctx_, ci);
    fire_end(*ctx_, ci);
  }
  // Charge the posting overhead on the collective-entry jitter stream
  // (salt 2), same as a blocking collective's entry. Not routed through
  // charge_collective_entry: the on_coll_entry tap backpatches the
  // preceding CollBegin trace event, which a nonblocking post doesn't have
  // — the op id travels in TapNbcPost instead.
  const NetworkModel& net = ctx_->machine().net;
  const int grank = impl_->group().world_rank(rank_);
  const std::uint64_t op_id = ctx_->next_op_id();
  const double t_before = ctx_->now();
  ctx_->clock().advance(net.cpu_overhead(grank, net.send_overhead, op_id, 2));

  auto& rs = impl_->rank_state(rank_);
  const std::uint64_t gen = rs.nbc_gen++;
  std::vector<std::byte> contribution;
  if (sendbuf != nullptr && bytes != 0) {
    const auto* p = static_cast<const std::byte*>(sendbuf);
    contribution.assign(p, p + bytes);
  }
  impl_->nbc_sync().post(gen, rank_, ctx_->now(), std::move(contribution));
  if (auto& tap = ctx_->world().trace_tap().on_nbc_post) {
    tap(*ctx_, TapNbcPost{impl_->context_id(), gen, call, size(), bytes,
                          op_id, t_before});
  }

  auto st = std::make_shared<Request::State>();
  st->kind = Request::Kind::Coll;
  st->impl = impl_;
  st->ctx = ctx_;
  st->comm_context = impl_->context_id();
  st->comm_rank = rank_;
  st->comm_size = impl_->size();
  st->id = req_id;
  st->nbc = std::make_unique<Request::NbcState>();
  st->nbc->call = call;
  st->nbc->gen = gen;
  st->nbc->bytes = bytes;
  st->nbc->count = count;
  st->nbc->type = type;
  st->nbc->op = op;
  st->nbc->recvbuf = recvbuf;
  return Request(std::move(st));
}

Comm::Request Comm::iallreduce(const void* sendbuf, void* recvbuf, int count,
                               Datatype type, ReduceOp op) {
  require(valid(), Err::Comm, "null communicator");
  require(count >= 0, Err::Count, "iallreduce: negative count");
  const std::size_t bytes =
      static_cast<std::size_t>(count) * datatype_size(type);
  return nbc_post(MpiCall::Iallreduce, sendbuf, recvbuf, count, type, op,
                  bytes);
}

Comm::Request Comm::ibarrier() {
  require(valid(), Err::Comm, "null communicator");
  return nbc_post(MpiCall::Ibarrier, nullptr, nullptr, 0, Datatype{},
                  ReduceOp{}, 0);
}

Status Comm::Request::wait() {
  require(s_ != nullptr, Err::Arg, "wait on null request");
  if (s_->done) return s_->status;
  Ctx& ctx = *s_->ctx;
  {
    CallInfo ci;
    ci.call = MpiCall::Wait;
    ci.comm_context = s_->comm_context;
    ci.rank = s_->comm_rank;
    ci.comm_size = s_->comm_size;
    ci.peer = s_->peer;
    ci.request = s_->id;
    ci.t_virtual = ctx.now();
    auto& begin = ctx.world().hooks().on_call_begin;
    if (begin) begin(ctx, ci);
  }
  if (s_->kind == Kind::Recv) {
    const double t_before = ctx.now();
    Status st = s_->channel->wait_recv(s_->recv);
    ctx.clock().sync_to(st.t_complete);
    const NetworkModel& net = ctx.machine().net;
    const std::uint64_t op = ctx.next_op_id();
    ctx.clock().advance(
        net.cpu_overhead(ctx.rank(), net.recv_overhead, op, 1));
    st.t_complete = ctx.now();
    s_->status = st;
    if (auto& tap = ctx.world().trace_tap().on_recv_wait) {
      tap(ctx, TapRecvWait{s_->recv.get(), s_->comm_context,
                           s_->impl->group().world_rank(st.source), st.seq,
                           st.bytes, op, t_before});
    }
  } else if (s_->kind == Kind::Coll) {
    const double t_wait_entry = ctx.now();
    auto [values, max_post] = s_->impl->nbc_sync().fence(s_->nbc->gen);
    if (s_->nbc->call == MpiCall::Iallreduce && s_->nbc->recvbuf != nullptr &&
        !values.empty() && !values[0].empty()) {
      // Combine in comm-rank order so every member computes identical bytes
      // regardless of which rank fenced first.
      std::vector<std::byte> acc = values[0];
      for (std::size_t r = 1; r < values.size(); ++r) {
        apply_op(s_->nbc->op, s_->nbc->type, values[r].data(), acc.data(),
                 s_->nbc->count);
      }
      std::memcpy(s_->nbc->recvbuf, acc.data(), acc.size());
    }
    const ProgressModel& pm = ctx.world().progress();
    const double algo =
        ctx.machine().net.nbc_cost(s_->comm_size, s_->nbc->bytes);
    const double t_done = pm.nbc_complete_time(t_wait_entry, max_post, algo);
    ctx.clock().sync_to(t_done);
    s_->status = Status{kAnySource, -1, s_->nbc->bytes, ctx.now()};
    if (auto& tap = ctx.world().trace_tap().on_nbc_complete) {
      tap(ctx, TapNbcComplete{s_->comm_context, s_->nbc->gen, t_wait_entry,
                              t_done});
    }
  } else {
    const double t_before = ctx.now();
    if (s_->msg->rendezvous) {
      const double t = s_->channel->wait_delivered(s_->msg);
      ctx.clock().sync_to(t);
    }
    s_->status =
        Status{kAnySource, s_->msg->tag, s_->msg->bytes, ctx.now()};
    if (auto& tap = ctx.world().trace_tap().on_send_wait) {
      tap(ctx, TapSendWait{s_->msg.get(), t_before});
    }
  }
  s_->done = true;
  {
    CallInfo ci;
    ci.call = MpiCall::Wait;
    ci.comm_context = s_->comm_context;
    ci.rank = s_->comm_rank;
    ci.comm_size = s_->comm_size;
    ci.peer = s_->peer;
    ci.request = s_->id;
    ci.t_virtual = ctx.now();
    auto& end = ctx.world().hooks().on_call_end;
    if (end) end(ctx, ci);
  }
  return s_->status;
}

namespace {

/// Consecutive failed test() polls a request tolerates before the poller
/// parks on the completion event instead of yielding. Yielding keeps
/// latency low when the completing rank is about to run; parking bounds a
/// test loop whose peer never arrives, so the world still reaches exact
/// quiescence (where the checker classifies the livelock).
constexpr int kTestSpinBudget = 64;

}  // namespace

bool Comm::Request::test() {
  require(s_ != nullptr, Err::Arg, "test on null request");
  Ctx& ctx = *s_->ctx;
  CallInfo ci;
  ci.call = MpiCall::Test;
  ci.comm_context = s_->comm_context;
  ci.rank = s_->comm_rank;
  ci.comm_size = s_->comm_size;
  ci.peer = s_->peer;
  ci.request = s_->id;
  fire_begin(ctx, ci);
  bool completed = s_->done;
  if (!completed) {
    switch (s_->kind) {
      case Kind::Recv:
        completed = s_->channel->test_recv(s_->recv);
        break;
      case Kind::Send:
        completed = s_->channel->test_send(s_->msg);
        break;
      case Kind::Coll:
        completed = s_->impl->nbc_sync().ready(s_->nbc->gen);
        break;
    }
  }
  if (auto& tap = ctx.world().trace_tap().on_request_test) {
    tap(ctx, TapRequestTest{s_->id, completed, ctx.now()});
  }
  if (completed) {
    s_->test_spins = 0;
  } else if (++s_->test_spins <= kTestSpinBudget) {
    // A failed poll must hand the CPU to the rank that would complete this
    // request — the historical bug was a cooperative test loop spinning
    // while its peer never got scheduled.
    ctx.world().executor().yield();
  } else {
    // Spin budget exhausted: park on the completion event. Done between
    // the begin and end hooks so a quiescent world shows this rank blocked
    // inside MPI_Test and the checker can name the test-loop livelock.
    switch (s_->kind) {
      case Kind::Recv:
        s_->channel->park_recv_incomplete(s_->recv);
        break;
      case Kind::Send:
        s_->channel->park_send_incomplete(s_->msg);
        break;
      case Kind::Coll:
        s_->impl->nbc_sync().park_not_ready(s_->nbc->gen);
        break;
    }
  }
  fire_end(ctx, ci);
  return completed;
}

void waitall(std::span<Comm::Request> requests) {
  Ctx* ctx = nullptr;
  for (auto& r : requests) {
    if (r.valid()) {
      ctx = r.s_->ctx;
      break;
    }
  }
  if (ctx == nullptr) return;
  if (ctx->world().progress().mode == ProgressMode::BlockingOnly) {
    // Historical semantics, kept bit-compatible: complete strictly in
    // index order, each request charging as its wait() reaches it.
    for (auto& r : requests) {
      if (r.valid()) r.wait();
    }
    return;
  }
  // Progress engines: completion is dated by delivery, not by array
  // position. Receives complete first in index order, then sends and
  // collective fences — a rendezvous send parked at a low index can no
  // longer delay dating a receive that completed earlier in virtual time,
  // and the result is invariant to request order within each class (every
  // send already deposited and every receive already posted at the isend/
  // irecv, so no completion here depends on another request in the span).
  for (auto& r : requests) {
    if (r.valid() && r.s_->kind == Comm::Request::Kind::Recv) r.wait();
  }
  for (auto& r : requests) {
    if (r.valid() && r.s_->kind != Comm::Request::Kind::Recv) r.wait();
  }
}

// ---------------------------------------------------------------------------
// Comm: collectives
// ---------------------------------------------------------------------------

void Comm::barrier() {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::Barrier, -1, 0, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  const int p = size();
  // Dissemination barrier: ceil(log2 p) rounds of pairwise exchanges.
  for (int k = 1; k < p; k <<= 1) {
    const int dst = (rank_ + k) % p;
    const int src = (rank_ - k % p + p) % p;
    sendrecv_internal(nullptr, 0, dst, nullptr, 0, src, tag);
  }
}

void Comm::bcast_binomial(void* buf, std::size_t bytes, int root, int tag) {
  const int p = size();
  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      const int src = ((vr - mask) + root) % p;
      recv_internal(buf, bytes, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const int dst = ((vr + mask) + root) % p;
      send_internal(buf, bytes, dst, tag);
    }
    mask >>= 1;
  }
}

void Comm::bcast(void* buf, std::size_t bytes, int root) {
  require(valid(), Err::Comm, "null communicator");
  require(root >= 0 && root < size(), Err::Rank, "bcast: bad root");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::Bcast, root, bytes, -1));
  charge_collective_entry();
  bcast_binomial(buf, bytes, root, next_internal_tag());
}

void Comm::reduce_binomial(const void* sendbuf, void* recvbuf, int count,
                           Datatype type, ReduceOp op, int root, int tag) {
  const int p = size();
  const std::size_t bytes =
      static_cast<std::size_t>(count) * datatype_size(type);
  const bool modeled = sendbuf == nullptr;

  std::vector<std::byte> acc;
  std::vector<std::byte> scratch;
  if (!modeled) {
    const auto* src = static_cast<const std::byte*>(sendbuf);
    acc.assign(src, src + bytes);
    scratch.resize(bytes);
  }

  const int vr = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) == 0) {
      const int peer_vr = vr | mask;
      if (peer_vr < p) {
        const int peer = (peer_vr + root) % p;
        recv_internal(modeled ? nullptr : scratch.data(), bytes, peer, tag);
        if (!modeled) apply_op(op, type, scratch.data(), acc.data(), count);
      }
    } else {
      const int peer = ((vr & ~mask) + root) % p;
      send_internal(modeled ? nullptr : acc.data(), bytes, peer, tag);
      break;
    }
    mask <<= 1;
  }
  if (rank_ == root && !modeled && recvbuf != nullptr) {
    std::memcpy(recvbuf, acc.data(), bytes);
  }
}

void Comm::reduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
                  ReduceOp op, int root) {
  require(valid(), Err::Comm, "null communicator");
  require(root >= 0 && root < size(), Err::Rank, "reduce: bad root");
  require(count >= 0, Err::Count, "reduce: negative count");
  const std::size_t bytes =
      static_cast<std::size_t>(count) * datatype_size(type);
  const HookScope hook(*ctx_, make_info(*this, MpiCall::Reduce, root, bytes, -1));
  charge_collective_entry();
  reduce_binomial(sendbuf, recvbuf, count, type, op, root, next_internal_tag());
}

void Comm::allreduce(const void* sendbuf, void* recvbuf, int count,
                     Datatype type, ReduceOp op) {
  require(valid(), Err::Comm, "null communicator");
  require(count >= 0, Err::Count, "allreduce: negative count");
  const std::size_t bytes =
      static_cast<std::size_t>(count) * datatype_size(type);
  const HookScope hook(*ctx_,
                       make_info(*this, MpiCall::Allreduce, -1, bytes, -1));
  charge_collective_entry();
  const int tag_reduce = next_internal_tag();
  const int tag_bcast = next_internal_tag();
  const bool modeled = sendbuf == nullptr;
  reduce_binomial(sendbuf, recvbuf, count, type, op, 0, tag_reduce);
  bcast_binomial(modeled ? nullptr : recvbuf, bytes, 0, tag_bcast);
}

void Comm::scatter_linear(const void* sendbuf, std::size_t bytes_per_rank,
                          void* recvbuf, int root, int tag) {
  const int p = size();
  if (rank_ == root) {
    const auto* base = static_cast<const std::byte*>(sendbuf);
    for (int r = 0; r < p; ++r) {
      const void* chunk =
          base == nullptr
              ? nullptr
              : base + static_cast<std::size_t>(r) * bytes_per_rank;
      if (r == root) {
        if (chunk != nullptr && recvbuf != nullptr) {
          std::memcpy(recvbuf, chunk, bytes_per_rank);
        }
        continue;
      }
      send_internal(chunk, bytes_per_rank, r, tag);
    }
  } else {
    recv_internal(recvbuf, bytes_per_rank, root, tag);
  }
}

namespace {

/// The recursive-halving split sequence for a relative rank vr in [0, p):
/// at each level the range [lo, hi) held by `lo` splits at mid and the
/// upper part moves to mid. Shared by binomial scatter and gather.
std::vector<std::array<int, 3>> halving_splits(int vr, int p) {
  std::vector<std::array<int, 3>> splits;
  int lo = 0;
  int hi = p;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    splits.push_back({lo, mid, hi});
    if (vr < mid) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return splits;
}

}  // namespace

void Comm::scatter_binomial(const void* sendbuf, std::size_t bytes_per_rank,
                            void* recvbuf, int root, int tag) {
  const int p = size();
  const int vr = (rank_ - root + p) % p;
  const bool modeled = recvbuf == nullptr;

  // Root repacks into relative-rank order once so subtree ranges are
  // contiguous even when root != 0.
  std::vector<std::byte> stage;
  if (vr == 0 && !modeled && sendbuf != nullptr) {
    stage.resize(static_cast<std::size_t>(p) * bytes_per_rank);
    const auto* base = static_cast<const std::byte*>(sendbuf);
    for (int j = 0; j < p; ++j) {
      const int abs_rank = (j + root) % p;
      std::memcpy(stage.data() + static_cast<std::size_t>(j) * bytes_per_rank,
                  base + static_cast<std::size_t>(abs_rank) * bytes_per_rank,
                  bytes_per_rank);
    }
  }

  int coverage_lo = vr == 0 ? 0 : -1;  // stage currently holds [coverage_lo, ...)
  for (const auto& [lo, mid, hi] : halving_splits(vr, p)) {
    const std::size_t bytes =
        static_cast<std::size_t>(hi - mid) * bytes_per_rank;
    if (vr == lo) {
      const void* src =
          modeled || stage.empty()
              ? nullptr
              : stage.data() +
                    static_cast<std::size_t>(mid - coverage_lo) *
                        bytes_per_rank;
      send_internal(src, bytes, (mid + root) % p, tag);
    } else if (vr == mid) {
      if (!modeled) stage.resize(bytes);
      coverage_lo = mid;
      recv_internal(modeled ? nullptr : stage.data(), bytes, (lo + root) % p,
                    tag);
    }
  }
  if (!modeled && !stage.empty()) {
    std::memcpy(recvbuf,
                stage.data() +
                    static_cast<std::size_t>(vr - coverage_lo) *
                        bytes_per_rank,
                bytes_per_rank);
  }
}

void Comm::scatter(const void* sendbuf, std::size_t bytes_per_rank,
                   void* recvbuf, int root) {
  require(valid(), Err::Comm, "null communicator");
  require(root >= 0 && root < size(), Err::Rank, "scatter: bad root");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Scatter, root, bytes_per_rank, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  if (ctx_->world().options().scatter_algo == CollAlgo::Binomial) {
    scatter_binomial(sendbuf, bytes_per_rank, recvbuf, root, tag);
  } else {
    scatter_linear(sendbuf, bytes_per_rank, recvbuf, root, tag);
  }
}

void Comm::scatterv(const void* sendbuf, std::span<const std::size_t> counts,
                    std::span<const std::size_t> displs, void* recvbuf,
                    std::size_t recv_bytes, int root) {
  require(valid(), Err::Comm, "null communicator");
  require(root >= 0 && root < size(), Err::Rank, "scatterv: bad root");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Scatterv, root, recv_bytes, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  const int p = size();
  if (rank_ == root) {
    require(counts.size() >= static_cast<std::size_t>(p) &&
                displs.size() >= static_cast<std::size_t>(p),
            Err::Arg, "scatterv: counts/displs too short");
    const auto* base = static_cast<const std::byte*>(sendbuf);
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const void* chunk = base == nullptr ? nullptr : base + displs[ri];
      if (r == root) {
        if (chunk != nullptr && recvbuf != nullptr) {
          std::memcpy(recvbuf, chunk, std::min(counts[ri], recv_bytes));
        }
        continue;
      }
      send_internal(chunk, counts[ri], r, tag);
    }
  } else {
    recv_internal(recvbuf, recv_bytes, root, tag);
  }
}

void Comm::gather_linear(const void* sendbuf, std::size_t bytes_per_rank,
                         void* recvbuf, int root, int tag) {
  const int p = size();
  if (rank_ == root) {
    auto* base = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < p; ++r) {
      void* slot = base == nullptr
                       ? nullptr
                       : base + static_cast<std::size_t>(r) * bytes_per_rank;
      if (r == root) {
        if (slot != nullptr && sendbuf != nullptr) {
          std::memcpy(slot, sendbuf, bytes_per_rank);
        }
        continue;
      }
      recv_internal(slot, bytes_per_rank, r, tag);
    }
  } else {
    send_internal(sendbuf, bytes_per_rank, root, tag);
  }
}

void Comm::gather_binomial(const void* sendbuf, std::size_t bytes_per_rank,
                           void* recvbuf, int root, int tag) {
  const int p = size();
  const int vr = (rank_ - root + p) % p;
  const bool modeled = sendbuf == nullptr && recvbuf == nullptr;
  const auto splits = halving_splits(vr, p);

  // My eventual coverage: the largest [vr, hi) I will assemble — the hi of
  // the earliest split in which I act as `lo` (splits narrow over time, so
  // scanning forward finds the widest one).
  int coverage_hi = vr + 1;
  for (const auto& [lo, mid, hi] : splits) {
    (void)mid;
    if (vr == lo) {
      coverage_hi = hi;
      break;
    }
  }

  std::vector<std::byte> stage;
  if (!modeled) {
    stage.resize(static_cast<std::size_t>(coverage_hi - vr) * bytes_per_rank);
    if (sendbuf != nullptr) {
      std::memcpy(stage.data(), sendbuf, bytes_per_rank);
    }
  }

  // Replay the scatter splits in reverse: subtrees merge bottom-up.
  for (auto it = splits.rbegin(); it != splits.rend(); ++it) {
    const auto [lo, mid, hi] = *it;
    const std::size_t bytes =
        static_cast<std::size_t>(hi - mid) * bytes_per_rank;
    if (vr == mid) {
      send_internal(modeled ? nullptr : stage.data(), bytes,
                    (lo + root) % p, tag);
    } else if (vr == lo) {
      void* dst = modeled ? nullptr
                          : stage.data() +
                                static_cast<std::size_t>(mid - vr) *
                                    bytes_per_rank;
      recv_internal(dst, bytes, (mid + root) % p, tag);
    }
  }

  // Root unpacks relative order back to absolute rank slots.
  if (vr == 0 && !modeled && recvbuf != nullptr) {
    auto* base = static_cast<std::byte*>(recvbuf);
    for (int j = 0; j < p; ++j) {
      const int abs_rank = (j + root) % p;
      std::memcpy(base + static_cast<std::size_t>(abs_rank) * bytes_per_rank,
                  stage.data() + static_cast<std::size_t>(j) * bytes_per_rank,
                  bytes_per_rank);
    }
  }
}

void Comm::gather(const void* sendbuf, std::size_t bytes_per_rank,
                  void* recvbuf, int root) {
  require(valid(), Err::Comm, "null communicator");
  require(root >= 0 && root < size(), Err::Rank, "gather: bad root");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Gather, root, bytes_per_rank, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  if (ctx_->world().options().gather_algo == CollAlgo::Binomial) {
    gather_binomial(sendbuf, bytes_per_rank, recvbuf, root, tag);
  } else {
    gather_linear(sendbuf, bytes_per_rank, recvbuf, root, tag);
  }
}

void Comm::gatherv(const void* sendbuf, std::size_t send_bytes, void* recvbuf,
                   std::span<const std::size_t> counts,
                   std::span<const std::size_t> displs, int root) {
  require(valid(), Err::Comm, "null communicator");
  require(root >= 0 && root < size(), Err::Rank, "gatherv: bad root");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Gatherv, root, send_bytes, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  const int p = size();
  if (rank_ == root) {
    require(counts.size() >= static_cast<std::size_t>(p) &&
                displs.size() >= static_cast<std::size_t>(p),
            Err::Arg, "gatherv: counts/displs too short");
    auto* base = static_cast<std::byte*>(recvbuf);
    for (int r = 0; r < p; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      void* slot = base == nullptr ? nullptr : base + displs[ri];
      if (r == root) {
        if (slot != nullptr && sendbuf != nullptr) {
          std::memcpy(slot, sendbuf, std::min(send_bytes, counts[ri]));
        }
        continue;
      }
      recv_internal(slot, counts[ri], r, tag);
    }
  } else {
    send_internal(sendbuf, send_bytes, root, tag);
  }
}

void Comm::allgather(const void* sendbuf, std::size_t bytes_per_rank,
                     void* recvbuf) {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Allgather, -1, bytes_per_rank, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  const int p = size();
  auto* base = static_cast<std::byte*>(recvbuf);
  auto block = [&](int origin) -> std::byte* {
    return base == nullptr
               ? nullptr
               : base + static_cast<std::size_t>(origin) * bytes_per_rank;
  };
  if (base != nullptr && sendbuf != nullptr) {
    std::memcpy(block(rank_), sendbuf, bytes_per_rank);
  }
  // Ring: at step s, forward the block that originated at (rank - s).
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_origin = (rank_ - s + p) % p;
    const int recv_origin = (rank_ - s - 1 + p) % p;
    sendrecv_internal(block(send_origin), bytes_per_rank, right,
                      block(recv_origin), bytes_per_rank, left, tag);
  }
}

void Comm::alltoall(const void* sendbuf, std::size_t bytes_per_rank,
                    void* recvbuf) {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(
      *ctx_, make_info(*this, MpiCall::Alltoall, -1, bytes_per_rank, -1));
  charge_collective_entry();
  const int tag = next_internal_tag();
  const int p = size();
  const auto* sbase = static_cast<const std::byte*>(sendbuf);
  auto* rbase = static_cast<std::byte*>(recvbuf);
  if (sbase != nullptr && rbase != nullptr) {
    std::memcpy(rbase + static_cast<std::size_t>(rank_) * bytes_per_rank,
                sbase + static_cast<std::size_t>(rank_) * bytes_per_rank,
                bytes_per_rank);
  }
  for (int s = 1; s < p; ++s) {
    const int dst = (rank_ + s) % p;
    const int src = (rank_ - s + p) % p;
    const void* out =
        sbase == nullptr
            ? nullptr
            : sbase + static_cast<std::size_t>(dst) * bytes_per_rank;
    void* in = rbase == nullptr
                   ? nullptr
                   : rbase + static_cast<std::size_t>(src) * bytes_per_rank;
    sendrecv_internal(out, bytes_per_rank, dst, in, bytes_per_rank, src, tag);
  }
}

// ---------------------------------------------------------------------------
// Comm: management
// ---------------------------------------------------------------------------

namespace {

/// Deterministic split bookkeeping shared by every member: ordered distinct
/// colors, and per color the member list sorted by (key, parent rank).
struct SplitPlan {
  std::vector<int> colors;  // ascending, non-negative only
  std::map<int, std::vector<std::pair<int, int>>> members;  // color -> (key, parent rank)
};

SplitPlan plan_split(const std::vector<CommImpl::SplitItem>& items) {
  SplitPlan plan;
  for (int r = 0; r < static_cast<int>(items.size()); ++r) {
    const auto& it = items[static_cast<std::size_t>(r)];
    if (it.color < 0) continue;
    plan.members[it.color].emplace_back(it.key, r);
  }
  for (auto& [color, mem] : plan.members) {
    std::sort(mem.begin(), mem.end());
    plan.colors.push_back(color);
  }
  return plan;
}

}  // namespace

Comm Comm::split(int color, int key) {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::CommSplit, -1, 0, -1));
  auto& rs = impl_->rank_state(rank_);
  const std::uint64_t gen = rs.sync_gen++;

  auto [items, t_entry_max] = impl_->split_sync().exchange(
      gen, rank_, ctx_->now(), CommImpl::SplitItem{color, key});
  const SplitPlan plan = plan_split(items);

  // Rank 0 of the parent creates the child impls (one per color, in color
  // order); everyone else receives them through the publish rendezvous.
  CommImpl::CommMap impls;
  if (rank_ == 0) {
    impls = std::make_shared<std::vector<std::shared_ptr<CommImpl>>>();
    for (const int c : plan.colors) {
      std::vector<int> wranks;
      for (const auto& [k, parent_rank] : plan.members.at(c)) {
        (void)k;
        wranks.push_back(impl_->group().world_rank(parent_rank));
      }
      impls->push_back(std::make_shared<CommImpl>(
          ctx_->world(), Group(std::move(wranks)),
          ctx_->world().next_context_id()));
    }
  }
  auto [published, t_publish_max] =
      impl_->publish_sync().exchange(gen, rank_, ctx_->now(), impls);
  impls = published[0];

  // Model the synchronizing cost: everyone leaves after the last entrant
  // plus a logarithmic metadata exchange.
  const double lat = ctx_->machine().net.inter_node.latency;
  const double t_before = ctx_->now();
  double rounds = 1.0;
  for (int k = 1; k < size(); k <<= 1) rounds += 1.0;
  ctx_->clock().sync_to(std::max(t_entry_max, t_publish_max) + rounds * lat);
  if (auto& tap = ctx_->world().trace_tap().on_comm_sync) {
    tap(*ctx_, TapCommSync{impl_->context_id(), gen, size(),
                           static_cast<int>(rounds), t_before});
  }

  if (color < 0) return Comm{};
  // Locate my color and my rank within it.
  const auto cit = std::find(plan.colors.begin(), plan.colors.end(), color);
  const auto color_index =
      static_cast<std::size_t>(std::distance(plan.colors.begin(), cit));
  const auto& mem = plan.members.at(color);
  int new_rank = -1;
  for (int i = 0; i < static_cast<int>(mem.size()); ++i) {
    if (mem[static_cast<std::size_t>(i)].second == rank_) {
      new_rank = i;
      break;
    }
  }
  require(new_rank >= 0, Err::Internal, "split: self not found in plan");
  fire_comm_create(*ctx_, *impls->at(color_index), impl_->context_id(),
                   new_rank);
  return Comm(ctx_, impls->at(color_index), new_rank);
}

Comm Comm::dup() {
  require(valid(), Err::Comm, "null communicator");
  const HookScope hook(*ctx_, make_info(*this, MpiCall::CommDup, -1, 0, -1));
  auto& rs = impl_->rank_state(rank_);
  const std::uint64_t gen = rs.sync_gen++;
  auto [items, t_entry_max] = impl_->split_sync().exchange(
      gen, rank_, ctx_->now(), CommImpl::SplitItem{0, rank_});
  (void)items;

  CommImpl::CommMap impls;
  if (rank_ == 0) {
    impls = std::make_shared<std::vector<std::shared_ptr<CommImpl>>>();
    impls->push_back(std::make_shared<CommImpl>(
        ctx_->world(), impl_->group(), ctx_->world().next_context_id()));
  }
  auto [published, t_publish_max] =
      impl_->publish_sync().exchange(gen, rank_, ctx_->now(), impls);
  const double lat = ctx_->machine().net.inter_node.latency;
  const double t_before = ctx_->now();
  ctx_->clock().sync_to(std::max(t_entry_max, t_publish_max) + lat);
  if (auto& tap = ctx_->world().trace_tap().on_comm_sync) {
    tap(*ctx_, TapCommSync{impl_->context_id(), gen, size(), 1, t_before});
  }
  fire_comm_create(*ctx_, *published[0]->at(0), impl_->context_id(), rank_);
  return Comm(ctx_, published[0]->at(0), rank_);
}

void Comm::free() {
  require(valid(), Err::Comm, "free on null communicator");
  require(&impl() != &ctx_->world_comm().impl(), Err::Comm,
          "cannot free the world communicator");
  const int context = impl_->context_id();
  {
    const HookScope hook(*ctx_,
                         make_info(*this, MpiCall::CommFree, -1, 0, -1));
    auto& cb = ctx_->world().hooks().on_comm_free;
    if (cb) cb(*ctx_, context);
  }
  impl_.reset();
  rank_ = -1;
}

std::pair<std::vector<std::uint64_t>, double> Comm::collsync_u64(
    std::uint64_t value) {
  require(valid(), Err::Comm, "null communicator");
  auto& rs = impl_->rank_state(rank_);
  const std::uint64_t gen = rs.sync_gen++;
  return impl_->u64_sync().exchange(gen, rank_, ctx_->now(), value);
}

}  // namespace mpisect::mpisim
