// Per-rank virtual clocks.
//
// MiniMPI executes every rank as a task on the cooperative scheduler (or
// one OS thread each, thread backend) but measures time on a *virtual*
// clock: computation advances it by modelled durations and message
// matching transfers timestamps between ranks
// (t_recv = max(t_local, t_send + network_cost)). This is what lets a
// 1-core container reproduce the timing shapes of a 456-core cluster, and
// it makes runs deterministic — virtual time is a pure function of program
// order and the seeded jitter draws, not of scheduling (OS or fiber).
#pragma once

#include <algorithm>
#include <cstdint>

namespace mpisect::mpisim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(double start) noexcept : now_(start) {}

  /// Current virtual time in seconds since world start.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Advance by a non-negative duration (negative deltas are clamped to 0,
  /// so a jitter draw can never move time backwards).
  void advance(double seconds) noexcept {
    now_ += std::max(seconds, 0.0);
    ++ticks_;
  }

  /// Synchronize forward: now = max(now, t). Used when a dependency (message
  /// arrival, collective completion) finishes later than local time.
  void sync_to(double t) noexcept {
    now_ = std::max(now_, t);
    ++ticks_;
  }

  /// Number of clock mutations — handy as a per-rank logical event counter
  /// for keying deterministic jitter draws.
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

  void reset(double t = 0.0) noexcept {
    now_ = t;
    ticks_ = 0;
  }

 private:
  double now_ = 0.0;
  std::uint64_t ticks_ = 0;
};

}  // namespace mpisect::mpisim
