#include "mpisim/session.hpp"

#include <utility>

#include "mpisim/error.hpp"

namespace mpisect::mpisim {

namespace {
constexpr const char* kPsetWorld = "mpi://WORLD";
constexpr const char* kPsetSelf = "mpi://SELF";
}  // namespace

// ---------------------------------------------------------------------------
// WorldBuilder
// ---------------------------------------------------------------------------

std::string WorldBuilder::describe() const {
  ExecModel em;
  em.backend = opts_.exec;
  em.workers = opts_.workers;
  em.stack_kb = opts_.stack_kb;
  std::string s = "ranks=" + std::to_string(nranks_);
  s += " exec=" + em.spec();
  s += " match=" + opts_.match.spec();
  s += " progress=" + opts_.progress.spec();
  s += " seed=" + std::to_string(opts_.seed);
  return s;
}

std::unique_ptr<World> WorldBuilder::build() const {
  require(nranks_ > 0, Err::Arg, "world size must be positive");
  // std::make_unique cannot reach the private lazy constructor.
  return std::unique_ptr<World>(new World(nranks_, opts_, World::Lazy{}));
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(int nranks, WorldOptions defaults)
    : nranks_(nranks), defaults_(std::move(defaults)) {
  require(nranks_ > 0, Err::Arg, "session size must be positive");
}

int Session::num_psets() const noexcept { return 2; }

std::string Session::pset_name(int n) const {
  if (n < 0 || n >= num_psets()) {
    throw MpiError(Err::Arg,
                   "process-set index out of range: " + std::to_string(n));
  }
  return n == 0 ? kPsetWorld : kPsetSelf;
}

bool Session::has_pset(const std::string& name) const noexcept {
  return name == kPsetWorld || name == kPsetSelf;
}

int Session::pset_size(const std::string& name) const {
  if (!has_pset(name)) {
    throw MpiError(Err::Arg, "unknown process set '" + name +
                                 "' (expected mpi://WORLD or mpi://SELF)");
  }
  return name == kPsetWorld ? nranks_ : 1;
}

WorldBuilder Session::world_builder(const std::string& pset) const {
  WorldBuilder b(pset_size(pset));
  b.options(defaults_);
  return b;
}

}  // namespace mpisect::mpisim
