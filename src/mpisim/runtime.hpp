// World launcher and per-rank execution context.
//
// World::run(fn) executes an SPMD function on every rank against a shared
// MachineModel. Ranks run on the World's Executor — by default the
// cooperative fiber scheduler (see scheduler.hpp), with a thread-per-rank
// backend selectable via WorldOptions::exec for differential testing; both
// produce bit-identical virtual-time results for the same seed. Rank-side
// code receives a Ctx — its rank identity, virtual clock and
// compute-charging interface. Extensions
// (the sections layer, profiling tools) attach to the World and get
// per-rank init/finalize callbacks, mirroring how PMPI tools wrap
// MPI_Init/MPI_Finalize.
//
//   World world(16, {.machine = MachineModel::nehalem_cluster()});
//   world.run([](Ctx& ctx) {
//     Comm comm = ctx.world_comm();
//     ctx.compute_flops(1e9);               // charge virtual compute time
//     comm.barrier();
//     double t = ctx.now();                 // virtual seconds
//   });
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "mpisim/clock.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/faults/plan.hpp"
#include "mpisim/hooks.hpp"
#include "mpisim/machine.hpp"
#include "mpisim/progress.hpp"
#include "mpisim/scheduler.hpp"
#include "obs/memory.hpp"
#include "support/rng.hpp"

namespace mpisect::mpisim {

namespace faults {
class FaultEngine;
}
namespace hooks {
class ToolStack;
}

/// Algorithm selection for the rooted block collectives. Linear is the
/// naive root-loops implementation; Binomial halves the problem per round
/// (log p latency terms, intermediates forward subtree blocks).
enum class CollAlgo { Linear, Binomial };

struct WorldOptions {
  MachineModel machine = MachineModel::ideal();
  std::uint64_t seed = 0x5EED;
  CollAlgo scatter_algo = CollAlgo::Linear;
  CollAlgo gather_algo = CollAlgo::Linear;
  /// Standard deviation (seconds) of the random per-rank start skew,
  /// modelling loosely synchronized job launch (paper Fig. 3 discussion).
  double start_skew_sigma = 0.0;
  /// Enable the sections layer's collective consistency checking
  /// ("non-intrusive synchronization primitives which could be selectively
  /// enabled", paper Sec. 4).
  bool validate_sections = false;
  /// Rank execution backend. Cooperative multiplexes ranks over a fixed
  /// worker pool; Threads is the one-OS-thread-per-rank differential
  /// reference. Virtual-time results are identical either way.
  ExecBackend exec = ExecBackend::Cooperative;
  /// Worker threads for the cooperative backend: 0 = MPISECT_WORKERS env
  /// var, else hardware_concurrency (see resolve_workers()).
  int workers = 0;
  /// Fiber stack size in KiB for the cooperative backend: 0 =
  /// MPISECT_STACK_KB env var, else 1 MiB; values are clamped up to 64.
  std::size_t stack_kb = 0;
  /// Message-matching engine (see channel.hpp). Hashed is the O(1) default;
  /// Legacy keeps the linear-scan reference for differential testing. Both
  /// produce bit-identical virtual times.
  MatchModel match;
  /// Deterministic fault-injection plan (see faults/plan.hpp). An empty
  /// plan constructs no engine, so fault-free runs are bit-identical to a
  /// build without the fault layer.
  faults::FaultPlan faults;
  /// Asynchronous-progress model (see progress.hpp). The blocking-only
  /// default keeps every artifact bit-identical to runs that predate it.
  ProgressModel progress;
};

/// Attachment point for layers that need per-rank lifecycle callbacks.
class Extension {
 public:
  virtual ~Extension() = default;
  /// Runs on each rank thread after Init hooks, before the app main.
  virtual void on_rank_init(Ctx& ctx) { (void)ctx; }
  /// Runs on each rank thread after the app main, before Finalize hooks.
  virtual void on_rank_finalize(Ctx& ctx) { (void)ctx; }
};

class World {
 public:
  /// Eager construction — DEPRECATED. Builds the full world communicator
  /// (one channel slot array plus per-rank state for every member) at
  /// construction time, exactly as the original API did. Prefer
  /// `Session`/`WorldBuilder` (session.hpp), which defer all per-rank
  /// state to the first run() and construct channels on first touch; at
  /// 65,536 ranks the difference is the bulk of startup time. This shim
  /// logs a one-time deprecation warning and will be removed.
  World(int nranks, WorldOptions options);
  ~World();

  /// Reset the eager-constructor deprecation warn-once latch (tests only).
  static void reset_eager_ctor_warning_for_test() noexcept;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const noexcept { return nranks_; }
  [[nodiscard]] const MachineModel& machine() const noexcept {
    return options_.machine;
  }
  [[nodiscard]] const WorldOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const ProgressModel& progress() const noexcept {
    return options_.progress;
  }
  [[nodiscard]] HookTable& hooks() noexcept { return hooks_; }
  /// Message-level trace taps (see hooks.hpp). Unlike the PMPI-style
  /// HookTable, taps also observe collective-internal traffic and carry the
  /// RNG keys (op ids, wire sequence numbers) of every modelled charge.
  [[nodiscard]] TraceTap& trace_tap() noexcept { return trace_tap_; }
  [[nodiscard]] const support::CounterRng& rng() const noexcept {
    return rng_;
  }
  [[nodiscard]] const std::atomic<bool>* abort_flag() const noexcept {
    return &aborted_;
  }
  [[nodiscard]] bool aborted() const noexcept { return aborted_.load(); }
  /// Flag the world as failed; wakes every blocked rank with Err::Aborted.
  void abort() noexcept {
    aborted_.store(true);
    executor_->wake_all();
  }
  /// The rank execution backend (channels and collectives block through it).
  [[nodiscard]] Executor& executor() noexcept { return *executor_; }
  /// Callback fired when the executor proves every live rank is parked with
  /// no wake pending — an exact deadlock. The checker installs its analysis
  /// here; the world aborts right after the handler returns.
  void set_deadlock_handler(std::function<void()> handler) {
    deadlock_handler_ = std::move(handler);
  }

  /// Fault-injection engine, or nullptr when options().faults is empty.
  [[nodiscard]] faults::FaultEngine* fault_engine() noexcept {
    return fault_engine_.get();
  }

  /// Per-rank memory accounting for channel queues (see obs/memory.hpp).
  /// Exact high-water mark of bytes the matching engine held per rank;
  /// purely observational, no effect on virtual time.
  [[nodiscard]] obs::MemAccount& mem_account() noexcept {
    return mem_account_;
  }
  [[nodiscard]] const obs::MemAccount& mem_account() const noexcept {
    return mem_account_;
  }

  /// The world's tool stack (created on first use). Tools — profiler,
  /// checker, recorder, sampler, fault injector — register through it
  /// instead of hand-chaining HookTable/TraceTap slots; see toolstack.hpp.
  [[nodiscard]] hooks::ToolStack& tool_stack();

  void attach_extension(std::shared_ptr<Extension> ext);

  /// Find an attached extension by concrete type (nullptr if absent).
  /// Attach extensions before run(); lookup from rank threads is read-only.
  template <typename T>
  [[nodiscard]] std::shared_ptr<T> find_extension() const {
    for (const auto& e : extensions_) {
      if (auto p = std::dynamic_pointer_cast<T>(e)) return p;
    }
    return nullptr;
  }

  using RankMain = std::function<void(Ctx&)>;
  /// Run the SPMD main on all ranks and block until every rank finishes.
  /// Rethrows the first rank exception after every rank has unwound.
  /// May be called repeatedly; clocks and sequence state reset per run,
  /// and the previous run's world communicator gets its on_comm_free.
  void run(const RankMain& rank_main);

  /// Virtual time at which each rank finished the last run.
  [[nodiscard]] const std::vector<double>& final_times() const noexcept {
    return final_times_;
  }
  /// max over ranks of final_times() — the run's virtual makespan.
  [[nodiscard]] double elapsed() const noexcept;

  /// Fresh context id for a new communicator.
  int next_context_id() noexcept { return next_context_++; }

  /// Per-rank accounting of fiber-stack bytes (cooperative backend).
  /// Separate from mem_account() so channel-queue baselines keep their
  /// meaning; purely observational.
  [[nodiscard]] const obs::MemAccount& stack_account() const noexcept {
    return stack_account_;
  }

 private:
  friend class Ctx;
  friend class WorldBuilder;
  /// Lazy construction (WorldBuilder::build()): no world communicator, no
  /// per-rank channel state until run() — O(1) memory per unstarted rank.
  struct Lazy {};
  World(int nranks, WorldOptions options, Lazy);

  int nranks_;
  WorldOptions options_;
  // Declared before world_comm_: channels credit their leftovers back to
  // the account on destruction, so it must outlive the communicator.
  obs::MemAccount mem_account_{nranks_};
  obs::MemAccount stack_account_{nranks_};
  HookTable hooks_;
  TraceTap trace_tap_;
  support::CounterRng rng_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> next_context_{0};
  std::vector<VirtualClock> clocks_;
  std::vector<double> final_times_;
  // Declared before world_comm_: channel/collsync WaitPoints deregister
  // from the executor on destruction, so it must outlive the communicator.
  std::unique_ptr<Executor> executor_;
  std::function<void()> deadlock_handler_;
  std::shared_ptr<CommImpl> world_comm_;
  /// Whether on_comm_create fired for the current world communicator (so a
  /// later run() knows to emit the matching on_comm_free).
  bool world_comm_announced_ = false;
  std::vector<std::shared_ptr<Extension>> extensions_;
  std::unique_ptr<faults::FaultEngine> fault_engine_;
  std::unique_ptr<hooks::ToolStack> tool_stack_;
};

/// Per-rank execution context; lives on the rank thread's stack for the
/// duration of one World::run.
class Ctx {
 public:
  Ctx(World& world, int world_rank, VirtualClock& clock) noexcept;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_.size(); }
  [[nodiscard]] World& world() noexcept { return world_; }
  [[nodiscard]] const MachineModel& machine() const noexcept {
    return world_.machine();
  }
  [[nodiscard]] VirtualClock& clock() noexcept { return clock_; }
  [[nodiscard]] double now() const noexcept { return clock_.now(); }

  /// Handle to the world communicator for this rank.
  [[nodiscard]] Comm world_comm() noexcept;

  /// Charge `seconds` of computation (plus the machine's multiplicative
  /// compute noise, drawn deterministically per rank/op, and any slow-rank
  /// factor from the fault plan). Doubles as a fault checkpoint, so it may
  /// throw Err::Killed under a kill plan.
  void compute(double seconds);
  /// Charge `flops` of computation through the machine model.
  void compute_flops(double flops);
  /// Charge an exact duration with no noise (fixtures/tests). Slow-rank
  /// factors from the fault plan still apply — injected degradation is
  /// deterministic, not noise, and must be inescapable.
  void compute_exact(double seconds) noexcept;

  /// Per-rank monotonically increasing operation id — the RNG counter for
  /// everything this rank draws.
  [[nodiscard]] std::uint64_t next_op_id() noexcept { return op_counter_++; }

  /// Per-rank nonblocking-request id, starting at 1 (0 = "no request" in
  /// CallInfo). Tools key outstanding operations by (world rank, id).
  [[nodiscard]] std::uint64_t next_request_id() noexcept {
    return ++req_counter_;
  }

  /// MPI_Pcontrol: dispatches to the tool hook (IPM-style phase baseline).
  void pcontrol(int level, const char* label = nullptr);

  /// Fault checkpoint: charge any due stall and raise Err::Killed when a
  /// kill rule has come due. Called on compute charges and on entry to
  /// every intercepted MPI call; no-op without a fault engine.
  void fault_checkpoint();

 private:
  World& world_;
  int rank_;
  VirtualClock& clock_;
  std::uint64_t op_counter_ = 0;
  std::uint64_t req_counter_ = 0;
};

}  // namespace mpisect::mpisim
