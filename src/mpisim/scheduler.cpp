#include "mpisim/scheduler.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>

#include "mpisim/error.hpp"
#include "obs/memory.hpp"
#include "obs/spans.hpp"
#include "support/log.hpp"
#include "support/spec.hpp"

// Sanitizer fiber annotations: without these, swapcontext looks like a wild
// stack change to ASan and a missing happens-before to TSan.
#if defined(__SANITIZE_ADDRESS__)
#define MPISECT_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPISECT_ASAN_FIBERS 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define MPISECT_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MPISECT_TSAN_FIBERS 1
#endif
#endif
#if defined(MPISECT_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(MPISECT_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace mpisect::mpisim {

// ---------------------------------------------------------------------------
// Executor base: waitpoint registry, abort wake, quiescence dispatch
// ---------------------------------------------------------------------------

Executor::~Executor() = default;

void Executor::add_waitpoint(WaitPoint* wp) {
  const std::lock_guard lock(reg_mu_);
  wp->reg_index_ = waitpoints_.size();
  waitpoints_.push_back(wp);
}

void Executor::remove_waitpoint(WaitPoint* wp) {
  // O(1) swap-remove via the index stashed on the waitpoint — a 65k-rank
  // world tears down one waitpoint per channel, and a linear registry scan
  // per removal would make teardown quadratic.
  const std::lock_guard lock(reg_mu_);
  const std::size_t i = wp->reg_index_;
  if (i < waitpoints_.size() && waitpoints_[i] == wp) {
    waitpoints_[i] = waitpoints_.back();
    waitpoints_[i]->reg_index_ = i;
    waitpoints_.pop_back();
  }
}

void Executor::set_quiescence_handler(std::function<void()> handler) {
  const std::lock_guard lock(reg_mu_);
  quiescence_ = std::move(handler);
}

void Executor::fire_quiescence() {
  std::function<void()> handler;
  {
    const std::lock_guard lock(reg_mu_);
    handler = quiescence_;
  }
  if (handler) {
    MPISECT_LOG_DEBUG("scheduler: quiescence — every live rank parked with "
                      "no wake pending");
    handler();
  }
}

void Executor::wake_all() noexcept {
  const std::lock_guard lock(reg_mu_);
  for (WaitPoint* wp : waitpoints_) do_wake(*wp);
}

void Executor::yield() noexcept {
  // Thread-per-rank backend (and off-fiber callers): every rank has its own
  // OS thread, so an OS yield is all the fairness there is to give.
  std::this_thread::yield();
}

void Executor::do_wake(WaitPoint& wp) {
  // Bump the epoch under the owner mutex: a waiter holds that mutex from
  // reading the epoch until its cv wait releases it, so the bump either
  // happens-before the epoch read (the waiter then returns immediately) or
  // the notify finds the waiter already blocked. Never a lost wake.
  {
    const std::lock_guard lock(wp.owner_mu_);
    wp.epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  wp.cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Threads backend: one OS thread per rank, condition-variable waits
// ---------------------------------------------------------------------------

namespace {

/// Set for threads spawned by ThreadExecutor::run; rank waits count towards
/// quiescence, external waiters (unit tests poking a Channel from a raw
/// thread) do not.
thread_local bool tl_rank_thread = false;

}  // namespace

class ThreadExecutor final : public Executor {
 public:
  ThreadExecutor() = default;

  void run(int n, const std::function<void(int)>& body) override {
    {
      const std::lock_guard lock(mu_);
      n_ = n;
      alive_ = n;
      blocked_ = 0;
      waiters_.clear();
      fired_ = false;
    }
    stats_.reset();
    const obs::Span run_span("sched.run");
    MPISECT_LOG_DEBUG("scheduler: threads backend, %d ranks", n);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([this, &body, r] {
        tl_rank_thread = true;
        body(r);
        tl_rank_thread = false;
        bool fire = false;
        {
          const std::lock_guard lock(mu_);
          --alive_;
          fire = quiescent_locked();
        }
        // A rank exiting can strand the rest (orphaned waits).
        if (fire) fire_quiescence();
      });
    }
    for (auto& t : threads) t.join();
  }

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "threads";
  }
  [[nodiscard]] int workers() const noexcept override { return n_; }

 protected:
  void do_wait(WaitPoint& wp, std::unique_lock<std::mutex>& lk) override {
    const std::uint64_t epoch = wp.epoch_.load(std::memory_order_relaxed);
    const bool tracked = tl_rank_thread;
    bool fire = false;
    if (tracked) {
      stats_.parks.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard lock(mu_);
      ++blocked_;
      waiters_.push_back({&wp, epoch});
      fire = quiescent_locked();
    }
    if (fire) {
      // We still hold the owner mutex; the handler ends in World::abort(),
      // whose wake_all needs every owner mutex — release around the call.
      lk.unlock();
      fire_quiescence();
      lk.lock();
    }
    wp.cv_.wait(lk, [&wp, epoch] {
      return wp.epoch_.load(std::memory_order_relaxed) != epoch;
    });
    if (tracked) {
      const std::lock_guard lock(mu_);
      --blocked_;
      const auto it =
          std::find(waiters_.begin(), waiters_.end(), Waiter{&wp, epoch});
      if (it != waiters_.end()) {
        *it = waiters_.back();
        waiters_.pop_back();
      }
    }
  }

  void do_notify(WaitPoint& wp) override {
    // Caller holds wp's owner mutex, so no blocked or about-to-block waiter
    // can miss this bump (see do_wake for the argument).
    wp.epoch_.fetch_add(1, std::memory_order_relaxed);
    wp.cv_.notify_all();
    stats_.wakes.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Waiter {
    WaitPoint* wp;
    std::uint64_t epoch;
    bool operator==(const Waiter&) const = default;
  };

  /// Caller holds mu_. Quiescent = every live rank is blocked AND every
  /// blocked rank's recorded epoch is still current (no wake in flight).
  /// Any state change needs a running rank, and a rank that notified then
  /// blocked synchronizes through mu_, so a stale epoch read cannot fake
  /// quiescence.
  bool quiescent_locked() {
    if (fired_ || alive_ <= 0 || blocked_ != alive_) return false;
    for (const Waiter& w : waiters_) {
      if (w.wp->epoch_.load(std::memory_order_relaxed) != w.epoch) {
        return false;
      }
    }
    fired_ = true;
    return true;
  }

  std::mutex mu_;
  int n_ = 0;
  int alive_ = 0;
  int blocked_ = 0;
  std::vector<Waiter> waiters_;
  bool fired_ = false;
};

// ---------------------------------------------------------------------------
// Cooperative backend: stackful ucontext fibers on a fixed worker pool
// ---------------------------------------------------------------------------

class FiberExecutor;

/// One rank of the current run: its fiber context, its stack, and the
/// handoff slots the worker and the fiber use to talk across swapcontext.
struct FiberTask {
  ucontext_t uc{};
  void* stack_bottom = nullptr;  ///< usable stack low address (slab chunk)
  std::size_t stack_size = 0;
  int rank = -1;
  FiberExecutor* exec = nullptr;
  const std::function<void(int)>* body = nullptr;
  bool finished = false;
  /// Stack + context are materialized by the first worker that resumes the
  /// task (lazy: unstarted ranks hold no stack, finished ranks give theirs
  /// back to the pool, so live stack demand tracks concurrently-active
  /// ranks, not nranks).
  bool started = false;
  /// Where to switch back to; re-set by whichever worker resumes us, so a
  /// task migrating between workers always returns to the right one.
  ucontext_t* ret_uc = nullptr;
  /// Park handshake. A parking fiber registers itself on the waitpoint and
  /// releases the owner mutex BEFORE switching out (so lock ownership stays
  /// with the fiber), which means a notifier can move it to the ready queue
  /// while its context is still being saved. `resumable` closes that race:
  /// cleared by the fiber before registering, set by its worker once
  /// swapcontext has returned (context fully saved); a resuming worker
  /// spins until it is set.
  std::atomic<bool> resumable{true};
  /// Steady-clock stamp of the wake that made this task ready; consumed by
  /// the resuming worker for the switch-latency stat. 0 = not timing.
  std::atomic<std::uint64_t> wake_ns{0};
#if defined(MPISECT_TSAN_FIBERS)
  void* tsan_fiber = nullptr;
  void* ret_tsan = nullptr;
#endif
#if defined(MPISECT_ASAN_FIBERS)
  void* asan_save = nullptr;
  const void* ret_stack_bottom = nullptr;
  std::size_t ret_stack_size = 0;
#endif
};

namespace {

constexpr std::size_t kDefaultStackKb = 1024;
constexpr std::size_t kMinStackKb = 64;

std::size_t fiber_stack_bytes(std::size_t stack_kb) noexcept {
  std::size_t kb = kDefaultStackKb;
  if (stack_kb > 0) {
    kb = std::max(kMinStackKb, stack_kb);
  } else if (const char* env = std::getenv("MPISECT_STACK_KB")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= static_cast<long>(kMinStackKb)) kb = static_cast<std::size_t>(v);
  }
  return kb * 1024;
}

/// The fiber currently executing on this worker thread. Accessed only
/// through the noinline accessors below: a fiber can migrate between worker
/// threads across a park, and routing every access through an opaque call
/// keeps the compiler from caching the TLS address across a swapcontext.
thread_local FiberTask* tl_current_fiber = nullptr;

__attribute__((noinline)) FiberTask* current_fiber() {
  return tl_current_fiber;
}

__attribute__((noinline)) void set_current_fiber(FiberTask* t) {
  tl_current_fiber = t;
}

/// Switch from the currently running fiber back to its worker. final_exit
/// marks the fiber's last switch (it will never be resumed).
void fiber_switch_out(FiberTask& t, bool final_exit) {
#if defined(MPISECT_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(final_exit ? nullptr : &t.asan_save,
                                 t.ret_stack_bottom, t.ret_stack_size);
#else
  (void)final_exit;
#endif
#if defined(MPISECT_TSAN_FIBERS)
  __tsan_switch_to_fiber(t.ret_tsan, 0);
#endif
  swapcontext(&t.uc, t.ret_uc);
  // Only a parked fiber comes back here (a finished one never resumes).
#if defined(MPISECT_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(t.asan_save, &t.ret_stack_bottom,
                                  &t.ret_stack_size);
#endif
}

void fiber_trampoline() {
  FiberTask* t = current_fiber();
#if defined(MPISECT_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(nullptr, &t->ret_stack_bottom,
                                  &t->ret_stack_size);
#endif
  (*t->body)(t->rank);
  t->finished = true;
  fiber_switch_out(*t, /*final_exit=*/true);
  // Unreachable: a finished fiber is never put back on the ready queue.
  MPISECT_LOG_ERROR("fiber %d resumed after exit", t->rank);
  std::abort();
}

}  // namespace

class FiberExecutor final : public Executor {
 public:
  explicit FiberExecutor(int workers, std::size_t stack_kb = 0)
      : workers_(std::max(1, workers)),
        stack_bytes_(fiber_stack_bytes(stack_kb)) {}

  ~FiberExecutor() override {
    const std::lock_guard lock(pool_mu_);
    for (const Slab& s : slabs_) munmap(s.base, s.bytes);
  }

  void run(int n, const std::function<void(int)>& body) override {
    {
      const std::lock_guard lock(mu_);
      total_ = n;
      finished_ = 0;
      running_ = 0;
      parked_count_ = 0;
      fired_ = false;
      shutdown_ = false;
    }
    stats_.reset();
    // Latch the wall-clock instrumentation decision once per run: the
    // hot paths below read a plain bool instead of the atomic, and the
    // decision cannot flip mid-run. Timing never touches virtual time —
    // it only reads the steady clock around scheduling transitions.
    timed_ = obs::timing_enabled();
    const obs::Span run_span("sched.run");
    MPISECT_LOG_DEBUG("scheduler: cooperative backend, %d ranks on %d workers",
                      n, std::min(workers_, std::max(1, n)));
    tasks_.clear();
    tasks_.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto t = std::make_unique<FiberTask>();
      t->rank = r;
      t->exec = this;
      t->body = &body;
      // Stack + makecontext happen lazily on first resume (see
      // start_task): an unstarted rank costs one FiberTask, not a stack
      // mapping, which is what lets 65k-rank worlds start up in O(active).
      tasks_.push_back(std::move(t));
    }
    {
      const std::lock_guard lock(mu_);
      for (const auto& t : tasks_) ready_.push_back(t.get());
    }

    const int nw = std::min(workers_, std::max(1, n));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nw));
    for (int i = 0; i < nw; ++i) {
      pool.emplace_back([this] { worker_main(); });
    }
    {
      std::unique_lock lock(mu_);
      done_cv_.wait(lock, [this] { return finished_ == total_; });
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : pool) w.join();
    // Every task has finished (done_cv_ gated on it), and finished tasks
    // released their stacks + sanitizer fibers on the worker that retired
    // them — nothing left to tear down but the task records.
    tasks_.clear();
  }

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "cooperative";
  }
  [[nodiscard]] int workers() const noexcept override { return workers_; }

  [[nodiscard]] std::size_t ready_depth() const noexcept override {
    const std::lock_guard lock(mu_);
    return ready_.size();
  }

  void yield() noexcept override {
    FiberTask* t = current_fiber();
    if (t == nullptr || t->exec != this) {
      std::this_thread::yield();
      return;
    }
    // Go to the back of the ready queue so every runnable rank gets CPU
    // time before we spin again. Same handshake as the park path: clear
    // `resumable` before queueing, the worker re-sets it once swapcontext
    // has fully saved this context. The task sits in ready_ (not parked),
    // so quiescence correctly stays off while a yielding rank exists.
    t->resumable.store(false, std::memory_order_relaxed);
    {
      const std::lock_guard g(mu_);
      ready_.push_back(t);
    }
    work_cv_.notify_one();
    fiber_switch_out(*t, /*final_exit=*/false);
  }

 protected:
  void do_wait(WaitPoint& wp, std::unique_lock<std::mutex>& lk) override {
    FiberTask* t = current_fiber();
    if (t == nullptr || t->exec != this) {
      // Off-fiber caller (unit tests, external threads): epoch-guarded cv
      // wait, invisible to quiescence accounting.
      const std::uint64_t epoch = wp.epoch_.load(std::memory_order_relaxed);
      wp.cv_.wait(lk, [&wp, epoch] {
        return wp.epoch_.load(std::memory_order_relaxed) != epoch;
      });
      return;
    }
    // Park. Register on the waitpoint while still holding the owner mutex
    // — a notifier (which must hold it to notify) can therefore never miss
    // a half-parked task — then release the mutex here on the fiber, so
    // lock ownership never crosses a context switch, and hand the CPU back
    // to the worker. When a notify (or abort wake) moves us to the ready
    // queue, a worker resumes us here; re-acquire the owner mutex to
    // restore the caller's invariant.
    t->resumable.store(false, std::memory_order_relaxed);
    stats_.parks.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard g(mu_);
      wp.parked_.push_back(t);
      ++parked_count_;
    }
    lk.unlock();
    fiber_switch_out(*t, /*final_exit=*/false);
    lk.lock();
  }

  void do_notify(WaitPoint& wp) override {
    // Caller holds wp's owner mutex; see ThreadExecutor::do_notify.
    wp.epoch_.fetch_add(1, std::memory_order_relaxed);
    wp.cv_.notify_all();
    wake_parked(wp);
  }

  void do_wake(WaitPoint& wp) override {
    Executor::do_wake(wp);  // epoch bump + cv for off-fiber waiters
    wake_parked(wp);
  }

 private:
  struct Stack {
    void* bottom;
    std::size_t bytes;
  };
  struct Slab {
    void* base;
    std::size_t bytes;
  };
  /// Stacks per mmap slab. A guard-paged mapping costs two kernel VMAs
  /// (PROT_NONE page + stack), and vm.max_map_count defaults to 65530 — so
  /// one mapping per fiber caps the simulator near 32k concurrent ranks.
  /// Carving 16 stacks out of each slab keeps the VMA count ~16x below
  /// that wall (65536 ranks ~= 8192 VMAs). The slab's low guard page still
  /// faults runaway recursion; within a slab an overflow must first cross
  /// an entire neighbouring stack, which the default 1 MiB size makes a
  /// diagnosed-in-practice non-event.
  static constexpr std::size_t kStacksPerSlab = 16;

  void allocate_stack(FiberTask& t) {
    bool reused = false;
    {
      const std::lock_guard lock(pool_mu_);
      if (!stack_pool_.empty()) {
        const Stack s = stack_pool_.back();
        stack_pool_.pop_back();
        t.stack_bottom = s.bottom;
        t.stack_size = s.bytes;
        reused = true;
      }
    }
    if (!reused) {
      const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
      const std::size_t stack_bytes =
          ((stack_bytes_ + page - 1) / page) * page;
      const std::size_t bytes = page + kStacksPerSlab * stack_bytes;
      void* base = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
      require(base != MAP_FAILED, Err::Internal, "fiber stack mmap failed");
      // Guard page at the low end: stacks grow down, so an overflow off
      // the slab faults instead of silently corrupting a neighbouring
      // mapping.
      mprotect(base, page, PROT_NONE);
      char* cursor = static_cast<char*>(base) + page;
      {
        const std::lock_guard lock(pool_mu_);
        slabs_.push_back({base, bytes});
        // Hand the caller the lowest chunk; pool the rest.
        for (std::size_t i = 1; i < kStacksPerSlab; ++i) {
          stack_pool_.push_back({cursor + i * stack_bytes, stack_bytes});
        }
      }
      t.stack_bottom = cursor;
      t.stack_size = stack_bytes;
    }
    stats_.stack_bytes.fetch_add(t.stack_size, std::memory_order_relaxed);
    const std::uint64_t live =
        live_stack_bytes_.fetch_add(t.stack_size,
                                    std::memory_order_relaxed) +
        t.stack_size;
    obs::update_max(stats_.stack_bytes_hwm, live);
    if (mem_ != nullptr) mem_->rank(t.rank).add(t.stack_size);
  }

  void release_stack(FiberTask& t) {
    // Stacks are reused across ranks within a run and across run() calls;
    // the slabs die with the executor.
    live_stack_bytes_.fetch_sub(t.stack_size, std::memory_order_relaxed);
    if (mem_ != nullptr) mem_->rank(t.rank).sub(t.stack_size);
    const std::lock_guard lock(pool_mu_);
    stack_pool_.push_back({t.stack_bottom, t.stack_size});
    t.stack_bottom = nullptr;
  }

  /// First resume of a task: give it a stack and a context. Runs on the
  /// resuming worker, outside the scheduler lock (mmap under mu_ would
  /// serialize every worker behind a syscall).
  void start_task(FiberTask& t) {
    allocate_stack(t);
    (void)getcontext(&t.uc);
    t.uc.uc_stack.ss_sp = t.stack_bottom;
    t.uc.uc_stack.ss_size = t.stack_size;
    t.uc.uc_link = nullptr;
    makecontext(&t.uc, fiber_trampoline, 0);
#if defined(MPISECT_TSAN_FIBERS)
    t.tsan_fiber = __tsan_create_fiber(0);
#endif
    t.started = true;
  }

  /// Move every task parked on wp to the ready queue.
  void wake_parked(WaitPoint& wp) {
    bool woke = false;
    {
      const std::lock_guard lock(mu_);
      if (!wp.parked_.empty()) {
        const std::uint64_t stamp = timed_ ? obs::now_ns() : 0;
        for (void* p : wp.parked_) {
          auto* t = static_cast<FiberTask*>(p);
          if (stamp != 0) t->wake_ns.store(stamp, std::memory_order_relaxed);
          ready_.push_back(t);
          --parked_count_;
        }
        stats_.wakes.fetch_add(wp.parked_.size(), std::memory_order_relaxed);
        const auto depth = static_cast<std::uint64_t>(ready_.size());
        if (depth > stats_.max_ready.load(std::memory_order_relaxed)) {
          stats_.max_ready.store(depth, std::memory_order_relaxed);
        }
        stats_.ready_depth_sum.fetch_add(depth, std::memory_order_relaxed);
        stats_.ready_depth_samples.fetch_add(1, std::memory_order_relaxed);
        wp.parked_.clear();
        woke = true;
      }
    }
    if (woke) work_cv_.notify_all();
  }

  /// Caller holds mu_. All live tasks parked, nothing ready or running, no
  /// wake pending (a pending wake is a ready task) — exact deadlock.
  bool quiescent_locked() {
    if (fired_ || running_ != 0 || !ready_.empty()) return false;
    if (parked_count_ == 0 || finished_ >= total_) return false;
    fired_ = true;
    return true;
  }

  void worker_main() {
    ucontext_t worker_uc;
#if defined(MPISECT_TSAN_FIBERS)
    void* const worker_tsan = __tsan_get_current_fiber();
#endif
#if defined(MPISECT_ASAN_FIBERS)
    void* asan_save = nullptr;
#endif
    std::unique_lock lock(mu_);
    for (;;) {
      const std::uint64_t t_idle0 = timed_ ? obs::now_ns() : 0;
      work_cv_.wait(lock, [this] { return shutdown_ || !ready_.empty(); });
      if (timed_) {
        stats_.idle_ns.fetch_add(obs::now_ns() - t_idle0,
                                 std::memory_order_relaxed);
      }
      if (ready_.empty()) return;  // shutdown
      FiberTask* t = ready_.front();
      ready_.pop_front();
      ++running_;
      lock.unlock();
      stats_.switches.fetch_add(1, std::memory_order_relaxed);

      // A freshly notified task may still be mid-park on another worker
      // (its context not yet saved); wait for the handshake. The window is
      // one swapcontext, so spinning beats blocking.
      while (!t->resumable.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (!t->started) start_task(*t);

      std::uint64_t t_run0 = 0;
      if (timed_) {
        t_run0 = obs::now_ns();
        // Wake-to-resume latency: how long a woken fiber sat in the ready
        // queue before a worker picked it up.
        const std::uint64_t w = t->wake_ns.exchange(0,
                                                    std::memory_order_relaxed);
        if (w != 0 && t_run0 > w) {
          stats_.switch_latency_ns.fetch_add(t_run0 - w,
                                             std::memory_order_relaxed);
          stats_.switch_latency_samples.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
      }

      t->ret_uc = &worker_uc;
#if defined(MPISECT_TSAN_FIBERS)
      t->ret_tsan = worker_tsan;
#endif
      set_current_fiber(t);
#if defined(MPISECT_ASAN_FIBERS)
      __sanitizer_start_switch_fiber(&asan_save, t->stack_bottom,
                                     t->stack_size);
#endif
#if defined(MPISECT_TSAN_FIBERS)
      __tsan_switch_to_fiber(t->tsan_fiber, 0);
#endif
      swapcontext(&worker_uc, &t->uc);
#if defined(MPISECT_ASAN_FIBERS)
      __sanitizer_finish_switch_fiber(asan_save, nullptr, nullptr);
#endif
      set_current_fiber(nullptr);
      if (timed_) {
        stats_.busy_ns.fetch_add(obs::now_ns() - t_run0,
                                 std::memory_order_relaxed);
      }

      if (t->finished) {
        // Retire the fiber's resources right here: its context will never
        // be resumed, so the stack can serve the next unstarted rank.
#if defined(MPISECT_TSAN_FIBERS)
        __tsan_destroy_fiber(t->tsan_fiber);
        t->tsan_fiber = nullptr;
#endif
        release_stack(*t);
        bool fire = false;
        bool all_done = false;
        {
          const std::lock_guard g(mu_);
          --running_;
          ++finished_;
          all_done = finished_ == total_;
          fire = quiescent_locked();
        }
        if (all_done) done_cv_.notify_all();
        if (fire) fire_quiescence();
      } else {
        // The task parked (it registered itself on the waitpoint and
        // released the owner mutex before switching out). Its context is
        // now fully saved: complete the handshake so a notified resume can
        // proceed, and update the quiescence accounting.
        bool fire = false;
        {
          const std::lock_guard g(mu_);
          --running_;
          fire = quiescent_locked();
        }
        t->resumable.store(true, std::memory_order_release);
        if (fire) fire_quiescence();
      }
      lock.lock();
    }
  }

  int workers_;
  std::size_t stack_bytes_;
  /// Whether this run reads wall clocks (latched from obs::timing_enabled
  /// before the worker pool starts; workers see it via thread creation).
  bool timed_ = false;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<FiberTask*> ready_;
  std::vector<std::unique_ptr<FiberTask>> tasks_;
  std::mutex pool_mu_;
  std::vector<Stack> stack_pool_;
  std::vector<Slab> slabs_;
  std::atomic<std::uint64_t> live_stack_bytes_{0};
  int total_ = 0;
  int finished_ = 0;
  int running_ = 0;
  int parked_count_ = 0;
  bool fired_ = false;
  bool shutdown_ = false;
};

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

int resolve_workers(int workers) noexcept {
  if (workers > 0) return workers;
  if (const char* env = std::getenv("MPISECT_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::unique_ptr<Executor> make_executor(ExecBackend backend, int workers,
                                        std::size_t stack_kb) {
  if (backend == ExecBackend::Threads) {
    return std::make_unique<ThreadExecutor>();
  }
  return std::make_unique<FiberExecutor>(resolve_workers(workers), stack_kb);
}

std::unique_ptr<Executor> make_executor(const ExecModel& model) {
  return make_executor(model.backend, model.workers, model.stack_kb);
}

// ---------------------------------------------------------------------------
// ExecModel: the --exec spec
// ---------------------------------------------------------------------------

const char* ExecModel::name() const noexcept {
  return backend == ExecBackend::Threads ? "threads" : "cooperative";
}

std::string ExecModel::spec() const {
  std::string s = name();
  if (backend == ExecBackend::Threads) return s;
  char sep = ':';
  if (workers > 0) {
    s += sep;
    s += "workers=" + std::to_string(workers);
    sep = ',';
  }
  if (stack_kb > 0) {
    s += sep;
    s += "stack=" + std::to_string(stack_kb);
  }
  return s;
}

ExecModel ExecModel::parse(const std::string& spec) {
  support::SpecParts parts;
  try {
    parts = support::parse_spec(spec);
  } catch (const std::invalid_argument& e) {
    throw MpiError(Err::Arg, std::string("exec ") + e.what());
  }

  ExecModel m;
  if (parts.preset == "cooperative") {
    m.backend = ExecBackend::Cooperative;
  } else if (parts.preset == "threads") {
    m.backend = ExecBackend::Threads;
  } else {
    throw MpiError(Err::Arg, "unknown exec preset '" + parts.preset +
                                 "' (expected " + choices() + ")");
  }
  require(parts.options.empty() || m.backend == ExecBackend::Cooperative,
          Err::Arg, "threads takes no options");

  for (const auto& [key, raw] : parts.options) {
    int value = 0;
    try {
      value = support::spec_int(raw);
    } catch (const std::invalid_argument& e) {
      throw MpiError(Err::Arg, std::string("exec ") + e.what());
    }
    if (key == "workers") {
      m.workers = value;
    } else if (key == "stack") {
      m.stack_kb = static_cast<std::size_t>(value);
    } else {
      throw MpiError(Err::Arg,
                     "unknown exec option '" + key + "' for cooperative");
    }
  }
  return m;
}

std::string ExecModel::choices() {
  return "cooperative[:workers=N,stack=KB]|threads";
}

}  // namespace mpisect::mpisim
