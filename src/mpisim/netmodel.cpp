#include "mpisim/netmodel.hpp"

#include <algorithm>
#include <cmath>

#include "mpisim/progress.hpp"

namespace mpisect::mpisim {
namespace {

// Salt constants separating draw streams.
constexpr std::uint64_t kSaltTransferMul = 0x11;
constexpr std::uint64_t kSaltTransferAdd = 0x22;
constexpr std::uint64_t kSaltTransferSpike = 0x33;
constexpr std::uint64_t kSaltCpu = 0x44;

}  // namespace

double NetworkModel::jitter_factor(std::uint64_t stream,
                                   std::uint64_t seq) const noexcept {
  if (jitter.kind == JitterModel::Kind::None || jitter.rel_sigma <= 0.0) {
    return 1.0;
  }
  const support::CounterRng rng(seed);
  const auto s = support::stream_id(stream, kSaltTransferMul);
  if (jitter.kind == JitterModel::Kind::Gaussian) {
    return std::max(0.0, 1.0 + jitter.rel_sigma * rng.gaussian(s, seq));
  }
  // Lognormal with unit median; sigma expressed on the underlying normal.
  return rng.lognormal(s, seq, 0.0, jitter.rel_sigma);
}

double NetworkModel::jitter_additive(std::uint64_t stream,
                                     std::uint64_t seq) const noexcept {
  if (jitter.kind == JitterModel::Kind::None) return 0.0;
  const support::CounterRng rng(seed);
  double extra = 0.0;
  if (jitter.add_sigma > 0.0) {
    const auto s = support::stream_id(stream, kSaltTransferAdd);
    extra += std::fabs(jitter.add_sigma * rng.gaussian(s, seq));
  }
  if (jitter.spike_prob > 0.0 && jitter.spike_mean > 0.0) {
    const auto s = support::stream_id(stream, kSaltTransferSpike);
    if (rng.uniform(s, seq) < jitter.spike_prob) {
      extra += rng.exponential(s, seq + (1ULL << 40), jitter.spike_mean);
    }
  }
  return extra;
}

double NetworkModel::transfer_cost(int src, int dst, std::size_t bytes,
                                   std::uint64_t seq) const noexcept {
  const LinkParams& link = same_node(src, dst) ? intra_node : inter_node;
  const auto edge = support::stream_id(static_cast<std::uint64_t>(src) + 1,
                                       static_cast<std::uint64_t>(dst) + 1);
  const double base = link.cost(bytes);
  return base * jitter_factor(edge, seq) + jitter_additive(edge, seq);
}

double NetworkModel::cpu_overhead(int rank, double base, std::uint64_t seq,
                                  std::uint64_t kind_salt) const noexcept {
  const auto stream = support::stream_id(static_cast<std::uint64_t>(rank) + 1,
                                         kSaltCpu, kind_salt);
  return base * jitter_factor(stream, seq);
}

double NetworkModel::nbc_cost(int p, std::uint64_t bytes) const noexcept {
  if (!hierarchical_nbc) {
    return nbc_algo_cost(inter_node.latency, inter_node.bandwidth, p, bytes);
  }
  const int cpn = cores_per_node > 0 ? cores_per_node : 1;
  const int local = std::min(p, cpn);
  const int nodes = (p + cpn - 1) / cpn;
  // nodes == 1 makes the inter-node term zero rounds, so a single-node
  // communicator pays a pure shared-memory tree.
  return nbc_algo_cost(intra_node.latency, intra_node.bandwidth, local,
                       bytes) +
         nbc_algo_cost(inter_node.latency, inter_node.bandwidth, nodes,
                       bytes);
}

}  // namespace mpisect::mpisim
