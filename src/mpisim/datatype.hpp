// Basic datatypes for typed MiniMPI operations (reductions need element
// semantics; untyped byte transfers go through the raw p2p interface).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mpisect::mpisim {

enum class Datatype {
  Byte,
  Char,
  Int,
  Long,
  UnsignedLong,
  Float,
  Double,
  DoubleInt,  ///< {double value; int index} pair for MaxLoc/MinLoc
};

/// {value, index} pair used by MaxLoc / MinLoc reductions.
struct DoubleInt {
  double value;
  int index;
};

/// Size in bytes of one element of the datatype.
[[nodiscard]] std::size_t datatype_size(Datatype t) noexcept;

[[nodiscard]] const char* datatype_name(Datatype t) noexcept;

/// Map C++ element types to Datatype tags (for the templated convenience
/// wrappers on Comm).
template <typename T>
struct DatatypeOf;

template <> struct DatatypeOf<std::byte> {
  static constexpr Datatype value = Datatype::Byte;
};
template <> struct DatatypeOf<char> {
  static constexpr Datatype value = Datatype::Char;
};
template <> struct DatatypeOf<int> {
  static constexpr Datatype value = Datatype::Int;
};
template <> struct DatatypeOf<long> {
  static constexpr Datatype value = Datatype::Long;
};
template <> struct DatatypeOf<unsigned long> {
  static constexpr Datatype value = Datatype::UnsignedLong;
};
template <> struct DatatypeOf<float> {
  static constexpr Datatype value = Datatype::Float;
};
template <> struct DatatypeOf<double> {
  static constexpr Datatype value = Datatype::Double;
};
template <> struct DatatypeOf<DoubleInt> {
  static constexpr Datatype value = Datatype::DoubleInt;
};

template <typename T>
inline constexpr Datatype datatype_of = DatatypeOf<T>::value;

}  // namespace mpisect::mpisim
