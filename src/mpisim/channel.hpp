// Per-destination matching engine.
//
// Each communicator owns one Channel per member rank; senders deposit into
// the destination's channel, receivers post into their own. Matching follows
// MPI's rules: a posted receive matches the earliest queued message whose
// (source, tag) is compatible, and messages from one source never overtake
// each other because a sender deposits in program order.
//
// Two interchangeable engines implement those rules:
//
//   * Hashed (default): O(1) amortized matching. Posted receives live in
//     exactly one of four lanes keyed by their wildcard class — (src,tag),
//     (src,ANY), (ANY,tag), (ANY,ANY) — each lane a FIFO; every receive
//     carries a global post ordinal, and a deposit takes the minimum-ordinal
//     head across the four candidate lanes, which is precisely "first
//     compatible receive in post order". Unexpected messages are one node
//     linked into four index lists (by pair, by source, by tag, arrival
//     order), so a posting receive of any wildcard class finds its
//     earliest-arrival candidate at a list head and a match unlinks in O(1)
//     with no tombstones.
//   * Legacy: the original linear scans over two deques, kept as the
//     differential-testing reference. Virtual times are bit-identical
//     between the engines by construction; tests enforce it.
//
// Matching is where virtual time crosses rank boundaries:
//   eager:       t_deliver = max(t_post, t_avail)
//   rendezvous:  t_deliver = max(t_send_start, t_post) + wire_cost
// Probe reports the completion time of a hypothetical receive posted at
// t_probe, so it follows the same two formulas with t_post := t_probe.
// The second party to arrive performs the match under the channel mutex and
// wakes any rank blocked on it through a WaitPoint — the executor parks the
// rank until delivery, with no polling; World::abort() wakes all waiters so
// one rank's failure cannot deadlock the world.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "mpisim/message.hpp"
#include "mpisim/scheduler.hpp"
#include "obs/memory.hpp"

namespace mpisect::mpisim {

/// Which matching engine a Channel uses.
enum class MatchMode {
  Hashed,  ///< per-(src,tag) hash lanes + wildcard lists (default)
  Legacy,  ///< linear deque scans (differential reference)
};

/// Matching-engine selection plus its tuning knobs, in the shared
/// `preset[:key=value,...]` spec vocabulary (the `--match` flag):
///
///   hashed                 O(1) engine, tables sized on demand
///   hashed:buckets=64      pre-reserve 64 hash buckets per table
///   legacy                 linear-scan reference engine
struct MatchModel {
  MatchMode mode = MatchMode::Hashed;
  std::size_t buckets = 0;  ///< initial hash-table reservation per channel

  bool operator==(const MatchModel&) const = default;

  [[nodiscard]] const char* name() const noexcept;
  /// Canonical spec string; MatchModel::parse(spec()) == *this.
  [[nodiscard]] std::string spec() const;
  /// Parse a spec string. Throws MpiError(Err::Arg) on unknown presets,
  /// unknown options, or options on the legacy engine.
  static MatchModel parse(const std::string& spec);
  static std::string choices();
};

class Channel {
 public:
  /// `rendezvous_extra` is added to every rendezvous delivery time — the
  /// progress model's completion-publication latency (a progress thread
  /// hands the delivery to the application `thread_latency` after the wire
  /// finishes; zero for synchronous progress).
  ///
  /// `mem` is the owning rank's memory-accounting slot (nullptr = no
  /// accounting, e.g. channels constructed directly by unit tests): every
  /// byte queued in this channel is charged there and credited back on
  /// match, giving an exact per-rank high-water mark. Accounting observes,
  /// never decides — matching and delivery times are unaffected.
  ///
  /// `match` picks the engine; both produce identical matches and times.
  Channel(Executor& exec, const std::atomic<bool>* abort_flag,
          double rendezvous_extra = 0.0,
          obs::MemAccount::RankMem* mem = nullptr,
          MatchModel match = {}) noexcept
      : abort_(abort_flag), rendezvous_extra_(rendezvous_extra), mem_(mem),
        match_(match), wp_(exec, mu_) {
    if (match_.mode == MatchMode::Hashed && match_.buckets > 0) {
      reserve_tables(match_.buckets);
    }
  }

  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sender side: enqueue a message, matching an already-posted receive if
  /// one is compatible. Returns the number of unmatched queued messages
  /// after the call (0 = matched immediately) — a telemetry gauge, computed
  /// under the mutex the call already holds. Messages flagged fault_lost by
  /// the fault engine are black-holed: never queued, never matched.
  std::size_t deposit(const MessagePtr& msg);

  /// Receiver side: register a receive; matches immediately against queued
  /// messages when possible. Returns the number of unmatched posted
  /// receives after the call (0 = matched immediately).
  std::size_t post(const PostedRecvPtr& recv);

  /// Block until the posted receive completes. Throws Err::Aborted if the
  /// world aborts and Err::Truncate if the matched message was larger than
  /// the receive buffer's declared size.
  Status wait_recv(const PostedRecvPtr& recv);

  /// Non-blocking completion test (finalizes nothing; pair with
  /// wait_recv once true to collect the status).
  [[nodiscard]] bool test_recv(const PostedRecvPtr& recv);

  /// Non-blocking completion test, sender side: true once the message needs
  /// no further progress (eager always; rendezvous once delivered).
  [[nodiscard]] bool test_send(const MessagePtr& msg);

  /// Park the caller until the channel sees traffic that may have completed
  /// `recv` (returns immediately if it already has). One blocking wait, no
  /// predicate loop: spurious wakeups return early and the caller's test
  /// loop re-polls. Throws Err::Aborted on an abort wake. Request::test()
  /// parks here after its spin budget so a pure test loop reaches exact
  /// quiescence instead of spinning forever.
  void park_recv_incomplete(const PostedRecvPtr& recv);
  /// Sender-side twin of park_recv_incomplete.
  void park_send_incomplete(const MessagePtr& msg);

  /// Block until a rendezvous message has been delivered (sender side).
  /// Returns the delivery time to sync the sender clock to.
  double wait_delivered(const MessagePtr& msg);

  /// Blocking probe: wait until a message matching (src, tag) is queued and
  /// return its envelope without consuming it. t_probe is the prober's
  /// current virtual time; t_complete is when a receive posted at t_probe
  /// would deliver (eager: max(t_probe, t_avail); rendezvous:
  /// max(t_send_start, t_probe) + wire_cost).
  Status probe(int src, int tag, double t_probe);

  /// Number of queued (unmatched) messages — diagnostic for tests.
  [[nodiscard]] std::size_t pending_messages();
  /// Number of unmatched posted receives — diagnostic for tests.
  [[nodiscard]] std::size_t pending_recvs();

 private:
  // --- hashed-engine stores -----------------------------------------------
  // One node per unexpected message, linked into four index lists at once.
  // Index 0: (src,tag) pair bucket; 1: per-source; 2: per-tag; 3: arrival
  // order (all messages). Every list preserves arrival order, so each
  // list's head is the earliest compatible message for that wildcard class.
  struct MsgNode {
    MessagePtr msg;
    MsgNode* prev[4] = {nullptr, nullptr, nullptr, nullptr};
    MsgNode* next[4] = {nullptr, nullptr, nullptr, nullptr};
  };
  struct MsgList {
    MsgNode* head = nullptr;
    MsgNode* tail = nullptr;
  };
  /// A posted receive lives in exactly one lane (its wildcard class); `ord`
  /// is the channel-global post ordinal that totally orders receives across
  /// lanes.
  struct RecvNode {
    PostedRecvPtr recv;
    std::uint64_t ord = 0;
    RecvNode* next = nullptr;
  };
  struct RecvList {
    RecvNode* head = nullptr;
    RecvNode* tail = nullptr;
  };

  static bool compatible(const PostedRecv& r, const Message& m) noexcept;
  /// Pair up msg and recv: compute times, copy payload, flag completion.
  /// Caller holds the mutex.
  void complete_match(const MessagePtr& msg, const PostedRecvPtr& recv) const;
  void check_abort() const;
  void reserve_tables(std::size_t buckets);

  static std::uint64_t pair_key(int src, int tag) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  // Hashed-engine helpers (caller holds the mutex).
  std::size_t deposit_hashed(const MessagePtr& msg);
  std::size_t post_hashed(const PostedRecvPtr& recv);
  const Message* probe_head(int src, int tag) const;
  void link_msg(const MessagePtr& msg);
  void unlink_msg(MsgNode* n);
  MsgNode* alloc_msg_node();
  void free_msg_node(MsgNode* n);
  RecvNode* alloc_recv_node();
  void free_recv_node(RecvNode* n);

  /// Accounted footprint of a queued unexpected message.
  static std::size_t queued_bytes(const Message& m) noexcept {
    return sizeof(Message) + m.payload.size();
  }

  std::mutex mu_;
  // Legacy engine state (only populated in MatchMode::Legacy).
  std::deque<MessagePtr> unexpected_;
  std::deque<PostedRecvPtr> posted_;
  // Hashed engine state.
  std::unordered_map<std::uint64_t, MsgList> um_by_pair_;
  std::unordered_map<int, MsgList> um_by_src_;
  std::unordered_map<int, MsgList> um_by_tag_;
  MsgList um_all_;
  std::unordered_map<std::uint64_t, RecvList> pr_by_pair_;
  std::unordered_map<int, RecvList> pr_by_src_;  ///< (src, ANY)
  std::unordered_map<int, RecvList> pr_by_tag_;  ///< (ANY, tag)
  RecvList pr_any_;                              ///< (ANY, ANY)
  MsgNode* msg_free_ = nullptr;   ///< node freelist (allocation reuse)
  RecvNode* recv_free_ = nullptr;
  std::size_t um_count_ = 0;  ///< unmatched queued messages (both engines)
  std::size_t pr_count_ = 0;  ///< unmatched posted receives (both engines)
  std::uint64_t pr_ord_ = 0;  ///< next post ordinal

  const std::atomic<bool>* abort_;
  double rendezvous_extra_;
  obs::MemAccount::RankMem* mem_;
  MatchModel match_;
  WaitPoint wp_;
};

}  // namespace mpisect::mpisim
