// Per-destination matching engine.
//
// Each communicator owns one Channel per member rank; senders deposit into
// the destination's channel, receivers post into their own. Matching follows
// MPI's rules: a posted receive matches the earliest queued message whose
// (source, tag) is compatible, and messages from one source never overtake
// each other because a sender deposits in program order.
//
// Matching is where virtual time crosses rank boundaries:
//   eager:       t_deliver = max(t_post, t_avail)
//   rendezvous:  t_deliver = max(t_send_start, t_post) + wire_cost
// Probe reports the completion time of a hypothetical receive posted at
// t_probe, so it follows the same two formulas with t_post := t_probe.
// The second party to arrive performs the match under the channel mutex and
// wakes any rank blocked on it through a WaitPoint — the executor parks the
// rank until delivery, with no polling; World::abort() wakes all waiters so
// one rank's failure cannot deadlock the world.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>

#include "mpisim/message.hpp"
#include "mpisim/scheduler.hpp"
#include "obs/memory.hpp"

namespace mpisect::mpisim {

class Channel {
 public:
  /// `rendezvous_extra` is added to every rendezvous delivery time — the
  /// progress model's completion-publication latency (a progress thread
  /// hands the delivery to the application `thread_latency` after the wire
  /// finishes; zero for synchronous progress).
  ///
  /// `mem` is the owning rank's memory-accounting slot (nullptr = no
  /// accounting, e.g. channels constructed directly by unit tests): every
  /// byte queued in this channel is charged there and credited back on
  /// match, giving an exact per-rank high-water mark. Accounting observes,
  /// never decides — matching and delivery times are unaffected.
  Channel(Executor& exec, const std::atomic<bool>* abort_flag,
          double rendezvous_extra = 0.0,
          obs::MemAccount::RankMem* mem = nullptr) noexcept
      : abort_(abort_flag), rendezvous_extra_(rendezvous_extra), mem_(mem),
        wp_(exec, mu_) {}

  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sender side: enqueue a message, matching an already-posted receive if
  /// one is compatible. Returns the number of unmatched queued messages
  /// after the call (0 = matched immediately) — a telemetry gauge, computed
  /// under the mutex the call already holds. Messages flagged fault_lost by
  /// the fault engine are black-holed: never queued, never matched.
  std::size_t deposit(const MessagePtr& msg);

  /// Receiver side: register a receive; matches immediately against queued
  /// messages when possible. Returns the number of unmatched posted
  /// receives after the call (0 = matched immediately).
  std::size_t post(const PostedRecvPtr& recv);

  /// Block until the posted receive completes. Throws Err::Aborted if the
  /// world aborts and Err::Truncate if the matched message was larger than
  /// the receive buffer's declared size.
  Status wait_recv(const PostedRecvPtr& recv);

  /// Non-blocking completion test (finalizes nothing; pair with
  /// wait_recv once true to collect the status).
  [[nodiscard]] bool test_recv(const PostedRecvPtr& recv);

  /// Non-blocking completion test, sender side: true once the message needs
  /// no further progress (eager always; rendezvous once delivered).
  [[nodiscard]] bool test_send(const MessagePtr& msg);

  /// Park the caller until the channel sees traffic that may have completed
  /// `recv` (returns immediately if it already has). One blocking wait, no
  /// predicate loop: spurious wakeups return early and the caller's test
  /// loop re-polls. Throws Err::Aborted on an abort wake. Request::test()
  /// parks here after its spin budget so a pure test loop reaches exact
  /// quiescence instead of spinning forever.
  void park_recv_incomplete(const PostedRecvPtr& recv);
  /// Sender-side twin of park_recv_incomplete.
  void park_send_incomplete(const MessagePtr& msg);

  /// Block until a rendezvous message has been delivered (sender side).
  /// Returns the delivery time to sync the sender clock to.
  double wait_delivered(const MessagePtr& msg);

  /// Blocking probe: wait until a message matching (src, tag) is queued and
  /// return its envelope without consuming it. t_probe is the prober's
  /// current virtual time; t_complete is when a receive posted at t_probe
  /// would deliver (eager: max(t_probe, t_avail); rendezvous:
  /// max(t_send_start, t_probe) + wire_cost).
  Status probe(int src, int tag, double t_probe);

  /// Number of queued (unmatched) messages — diagnostic for tests.
  [[nodiscard]] std::size_t pending_messages();
  /// Number of unmatched posted receives — diagnostic for tests.
  [[nodiscard]] std::size_t pending_recvs();

 private:
  static bool compatible(const PostedRecv& r, const Message& m) noexcept;
  /// Pair up msg and recv: compute times, copy payload, flag completion.
  /// Caller holds the mutex.
  void complete_match(const MessagePtr& msg, const PostedRecvPtr& recv) const;
  void check_abort() const;

  /// Accounted footprint of a queued unexpected message.
  static std::size_t queued_bytes(const Message& m) noexcept {
    return sizeof(Message) + m.payload.size();
  }

  std::mutex mu_;
  std::deque<MessagePtr> unexpected_;
  std::deque<PostedRecvPtr> posted_;
  const std::atomic<bool>* abort_;
  double rendezvous_extra_;
  obs::MemAccount::RankMem* mem_;
  WaitPoint wp_;
};

}  // namespace mpisect::mpisim
