// Rank execution backends: how the ranks of one World::run get CPU time.
//
// The simulator's blocking primitives (Channel, CollSync) do not own
// condition variables; they own WaitPoints. A WaitPoint delegates blocking
// to the World's Executor, which comes in two flavours:
//
//   * Cooperative (default): a run-to-block fiber scheduler. Every rank is
//     a stackful fiber (ucontext); a fixed pool of worker threads (default
//     hardware_concurrency, override with MPISECT_WORKERS) runs fibers
//     until they block, then parks them on the WaitPoint and picks up the
//     next runnable fiber. Parking costs one user-space context switch, so
//     worlds with thousands of ranks multiplex over a handful of OS
//     threads instead of oversubscribing the machine.
//   * Threads: one OS thread per rank, waits are plain condition-variable
//     blocks. Kept as the differential-testing reference — virtual-time
//     results must be bit-identical between the two backends for the same
//     seed, because virtual time is a pure function of per-rank program
//     order and the seeded jitter draws, never of scheduling.
//
// There is no polling anywhere: waits block until an event delivery calls
// WaitPoint::notify_all(), and World::abort() wakes every waiter explicitly
// via Executor::wake_all().
//
// Both backends detect quiescence exactly: the instant every live rank is
// parked with no wake pending, the quiescence handler fires. That is the
// scheduler's "all runnable tasks parked" signal — a true deadlock by
// construction, which replaces the checker's old real-time watchdog with
// deterministic detection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpisect::obs {
class MemAccount;
}  // namespace mpisect::obs

namespace mpisect::mpisim {

/// Which execution backend a World uses for its ranks.
enum class ExecBackend {
  Cooperative,  ///< fiber scheduler on a fixed worker pool (default)
  Threads,      ///< one OS thread per rank (differential reference)
};

/// Backend selection plus its tuning knobs, with the same
/// `preset[:key=value,...]` spec vocabulary as ProgressModel — what the
/// `--exec` flag parses and what describe() strings print.
///
///   cooperative                    default worker pool, default stacks
///   cooperative:workers=4          fixed worker count
///   cooperative:workers=4,stack=256  256 KiB fiber stacks
///   threads                        one OS thread per rank
struct ExecModel {
  ExecBackend backend = ExecBackend::Cooperative;
  int workers = 0;          ///< 0 = MPISECT_WORKERS env, else hw concurrency
  std::size_t stack_kb = 0; ///< 0 = MPISECT_STACK_KB env, else 1 MiB; min 64

  bool operator==(const ExecModel&) const = default;

  [[nodiscard]] const char* name() const noexcept;
  /// Canonical spec string; ExecModel::parse(spec()) == *this.
  [[nodiscard]] std::string spec() const;
  /// Parse a spec string. Throws MpiError(Err::Arg) on unknown presets,
  /// unknown options, or options on the threads backend.
  static ExecModel parse(const std::string& spec);
  static std::string choices();
};

class WaitPoint;

/// Wall-clock execution counters maintained by the backends (relaxed
/// atomics, bumped on the park/wake paths). These describe *scheduling*,
/// not virtual time: values vary run to run with OS interleaving and worker
/// count, so telemetry exports them as runtime (process-scope) metrics,
/// never as part of the deterministic virtual-time series.
struct ExecStats {
  std::atomic<std::uint64_t> parks{0};      ///< rank blocked on a WaitPoint
  std::atomic<std::uint64_t> wakes{0};      ///< tasks moved back to ready
  std::atomic<std::uint64_t> switches{0};   ///< fiber resumes (coop backend)
  std::atomic<std::uint64_t> max_ready{0};  ///< peak ready-queue depth
  /// Ready-queue depth sampled at every wake batch (sum / samples = mean).
  std::atomic<std::uint64_t> ready_depth_sum{0};
  std::atomic<std::uint64_t> ready_depth_samples{0};
  /// Wake-to-resume latency of parked fibers. Only accumulated while
  /// obs::timing_enabled() (self-trace on, or mpisect-top --self) — the
  /// clock reads cost more than the rest of the wake path.
  std::atomic<std::uint64_t> switch_latency_ns{0};
  std::atomic<std::uint64_t> switch_latency_samples{0};
  /// Per-worker wall time split: running fibers vs waiting for work.
  /// Gated on obs::timing_enabled() like switch latency.
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> idle_ns{0};
  /// Bytes mmap'ed for fiber stacks this run (guard pages included).
  std::atomic<std::uint64_t> stack_bytes{0};
  /// Peak bytes of fiber stacks held concurrently (stacks are allocated on
  /// first resume and returned to the pool when the fiber finishes, so this
  /// tracks live demand, not cumulative churn).
  std::atomic<std::uint64_t> stack_bytes_hwm{0};

  void reset() noexcept {
    parks.store(0, std::memory_order_relaxed);
    wakes.store(0, std::memory_order_relaxed);
    switches.store(0, std::memory_order_relaxed);
    max_ready.store(0, std::memory_order_relaxed);
    ready_depth_sum.store(0, std::memory_order_relaxed);
    ready_depth_samples.store(0, std::memory_order_relaxed);
    switch_latency_ns.store(0, std::memory_order_relaxed);
    switch_latency_samples.store(0, std::memory_order_relaxed);
    busy_ns.store(0, std::memory_order_relaxed);
    idle_ns.store(0, std::memory_order_relaxed);
    stack_bytes.store(0, std::memory_order_relaxed);
    stack_bytes_hwm.store(0, std::memory_order_relaxed);
  }
};

/// Executes the n rank bodies of one World::run and services their blocking
/// waits. Created once per World via make_executor().
class Executor {
 public:
  virtual ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Run body(r) for every r in [0, n) to completion and return when all
  /// have finished. The body must not throw (World::run's rank wrapper
  /// catches everything). May be called repeatedly, not concurrently.
  virtual void run(int n, const std::function<void(int)>& body) = 0;

  /// Wake every waiter of every registered WaitPoint (spurious wakeups).
  /// This is the abort path: World::abort() sets its flag and calls this so
  /// blocked ranks re-check the flag and unwind with Err::Aborted.
  void wake_all() noexcept;

  /// Reschedule the calling rank without blocking it: on the cooperative
  /// backend the current fiber goes to the back of the ready queue so other
  /// runnable ranks get CPU time; on the thread backend this is an OS
  /// yield. Completion-test loops (Request::test) call this so a spinning
  /// rank can never starve the peer that would complete its request.
  virtual void yield() noexcept;

  /// Install the callback fired (at most once per run) when every live rank
  /// is parked with no wake pending — an exact deadlock signal. Set before
  /// run(); the World chains the checker's handler and its own abort here.
  void set_quiescence_handler(std::function<void()> handler);

  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;
  /// Worker threads used to execute ranks (== nranks for Threads backend).
  [[nodiscard]] virtual int workers() const noexcept = 0;

  /// Wall-clock scheduling counters (see ExecStats). Reset at each run().
  [[nodiscard]] const ExecStats& stats() const noexcept { return stats_; }

  /// Optional per-rank stack accounting sink. The cooperative backend
  /// charges rank r's slot when r's fiber stack is assigned and credits it
  /// when the fiber finishes; the account's hwm is therefore each rank's
  /// exact stack high-water mark. Accounting only — never affects
  /// scheduling or virtual time.
  void set_mem_account(obs::MemAccount* acct) noexcept { mem_ = acct; }

  /// Ranks currently runnable but not running (cooperative backend's ready
  /// queue; always 0 for the thread backend). Racy snapshot, telemetry only.
  [[nodiscard]] virtual std::size_t ready_depth() const noexcept { return 0; }

 protected:
  Executor() = default;
  friend class WaitPoint;

  /// Release owner_lk's mutex, block until this WaitPoint is notified (or
  /// spuriously), re-acquire and return. Callers loop on their predicate.
  virtual void do_wait(WaitPoint& wp, std::unique_lock<std::mutex>& owner_lk) = 0;
  /// Wake all waiters of wp. Caller holds wp's owner mutex.
  virtual void do_notify(WaitPoint& wp) = 0;
  /// Wake all waiters of wp from the abort path (no locks held by caller).
  virtual void do_wake(WaitPoint& wp);

  void add_waitpoint(WaitPoint* wp);
  void remove_waitpoint(WaitPoint* wp);
  /// Invoke the quiescence handler (caller must hold no scheduler or owner
  /// locks — the handler typically aborts the world, which calls wake_all).
  void fire_quiescence();

  ExecStats stats_;
  obs::MemAccount* mem_ = nullptr;

 private:
  std::mutex reg_mu_;
  std::vector<WaitPoint*> waitpoints_;
  std::function<void()> quiescence_;
};

/// A blocking point owned by a synchronization object (Channel, CollSync)
/// whose state is guarded by `owner_mu`. Replaces a raw condition variable;
/// the executor decides whether a wait blocks an OS thread or parks a
/// fiber. Usage mirrors a condition variable:
///
///   std::unique_lock lock(mu_);
///   while (!predicate) { check_abort(); wp_.wait(lock); }
///
/// notify_all() must be called while holding the owner mutex — that is what
/// makes a wake race-free against a waiter about to block.
class WaitPoint {
 public:
  WaitPoint(Executor& exec, std::mutex& owner_mu)
      : exec_(exec), owner_mu_(owner_mu) {
    exec_.add_waitpoint(this);
  }
  ~WaitPoint() { exec_.remove_waitpoint(this); }
  WaitPoint(const WaitPoint&) = delete;
  WaitPoint& operator=(const WaitPoint&) = delete;

  /// Block until notified. lk must hold the owner mutex; it is released
  /// while blocked and re-acquired before returning. Spurious wakeups
  /// happen (abort wake-all is one) — callers re-check their predicate.
  void wait(std::unique_lock<std::mutex>& lk) { exec_.do_wait(*this, lk); }

  /// Wake every waiter. Caller MUST hold the owner mutex.
  void notify_all() { exec_.do_notify(*this); }

 private:
  friend class Executor;
  friend class ThreadExecutor;
  friend class FiberExecutor;

  Executor& exec_;
  std::mutex& owner_mu_;
  std::condition_variable cv_;  ///< thread-backend + off-fiber waiters
  /// Wake generation: bumped (under the owner mutex) by every notify. A
  /// waiter records it before blocking; "epoch unchanged" is both the
  /// cv wait predicate and the "no wake pending" half of quiescence.
  std::atomic<std::uint64_t> epoch_{0};
  /// Fiber backend: tasks parked here (FiberTask*, guarded by the
  /// scheduler mutex, populated before the parking fiber's owner mutex is
  /// released so a notifier can never miss a half-parked task).
  std::vector<void*> parked_;
  /// Slot in the executor's registry (maintained by add/remove_waitpoint so
  /// deregistration is O(1) — worlds create one WaitPoint per channel, and
  /// a 65k-rank teardown cannot afford a linear registry scan each).
  std::size_t reg_index_ = 0;
};

/// Number of worker threads `workers` resolves to: the value itself if > 0,
/// else the MPISECT_WORKERS environment variable, else hardware_concurrency.
[[nodiscard]] int resolve_workers(int workers) noexcept;

/// Create an executor. workers is resolved via resolve_workers() and only
/// meaningful for the cooperative backend. stack_kb sets the fiber stack
/// size (clamped up to 64 KiB); 0 falls back to MPISECT_STACK_KB, else
/// 1 MiB.
[[nodiscard]] std::unique_ptr<Executor> make_executor(ExecBackend backend,
                                                      int workers = 0,
                                                      std::size_t stack_kb = 0);

/// make_executor from a parsed spec (backend + workers + stack in one).
[[nodiscard]] std::unique_ptr<Executor> make_executor(const ExecModel& model);

}  // namespace mpisect::mpisim
