// Machine performance models.
//
// A MachineModel bundles everything the virtual-time engine needs to charge
// realistic durations: per-core scalar throughput, node topology, the
// network model, hardware-threading yields, and the OpenMP-substrate
// overhead curve. Three calibrated presets mirror the paper's testbeds:
//
//   nehalem_cluster() — 57 nodes x 8-core Xeon X5560, IB fabric (Fig. 5-6)
//   knl()             — 68-core Xeon Phi, 4 hyper-threads/core (Fig. 9-10)
//   broadwell_2s()    — dual-socket 2 x 18 cores, 2 HT/core (Fig. 8)
//
// Calibration targets the paper's *shapes* (crossovers, inflexion points,
// who-wins ordering), not its absolute seconds — the substitution table in
// DESIGN.md discusses why that is the meaningful reproduction criterion.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mpisim/netmodel.hpp"

namespace mpisect::mpisim {

/// Parameters of the MiniOMP fork/join + worksharing overhead model.
struct OmpModel {
  double fork_join_base = 1e-6;        ///< seconds per parallel region
  double fork_join_per_thread = 3e-7;  ///< linear growth with team size
  double barrier_log_cost = 1e-6;      ///< * ceil(log2 threads)
  /// Relative imbalance charged by static scheduling (fraction of the
  /// parallel span); dynamic scheduling halves it but doubles per-chunk cost.
  double static_imbalance = 0.03;
  /// Per-chunk dispatch cost for dynamic scheduling (seconds).
  double dynamic_chunk_cost = 2e-7;
  /// Multiplier applied when ranks*threads exceed hardware threads.
  double oversubscription_penalty = 1.0;
};

class MachineModel {
 public:
  std::string name = "generic";
  int cores_per_node = 1;
  int nodes = 1;
  int hw_threads_per_core = 1;
  /// Effective sustained scalar rate per core for the stencil/hydro kernels
  /// we model (flops/second). Deliberately far below peak.
  double flops_per_core = 2.0e9;
  /// Marginal throughput of the k-th hardware thread sharing a core
  /// (index 0 = first thread = 1.0).
  std::array<double, 4> smt_yield{1.0, 0.3, 0.15, 0.1};
  /// Relative sigma of multiplicative compute-time noise.
  double compute_noise_sigma = 0.0;
  NetworkModel net;
  OmpModel omp;

  [[nodiscard]] int total_cores() const noexcept {
    return cores_per_node * nodes;
  }
  [[nodiscard]] int total_hw_threads() const noexcept {
    return total_cores() * hw_threads_per_core;
  }

  /// Seconds to execute `flops` floating-point operations on one core
  /// (no noise; the runtime layers noise keyed per rank/op).
  [[nodiscard]] double compute_seconds(double flops) const noexcept {
    return flops / flops_per_core;
  }

  /// Aggregate throughput (in units of one core) of `threads` software
  /// threads confined to `cores_avail` cores of this machine, accounting
  /// for SMT yield. cores_avail may be fractional when ranks share cores.
  [[nodiscard]] double thread_capacity(int threads,
                                       double cores_avail) const noexcept;

  // --- calibrated presets -------------------------------------------------
  /// Paper Section 5.1 testbed: Intel Nehalem cluster, 8-core X5560 nodes,
  /// 24 GB/node, up to 456 cores, hyper-threading disabled.
  [[nodiscard]] static MachineModel nehalem_cluster();
  /// Paper Section 5.2: Intel Knights Landing, 68 cores x 4 HT.
  [[nodiscard]] static MachineModel knl();
  /// Paper Section 5.2: dual-socket Broadwell, 2 x 18 cores x 2 HT.
  [[nodiscard]] static MachineModel broadwell_2s();
  /// Idealized machine for unit tests: no jitter, no noise, round numbers.
  [[nodiscard]] static MachineModel ideal(int cores_per_node = 8,
                                          int nodes = 64);

  // --- introspection (CLI tools, trace headers) ---------------------------
  /// Look up a calibrated preset by its `name` field ("nehalem-cluster",
  /// "knl", "broadwell-2s", "ideal"). Returns nullopt for unknown names.
  [[nodiscard]] static std::optional<MachineModel> preset(
      std::string_view name);
  /// Names accepted by preset(), in presentation order.
  [[nodiscard]] static std::vector<std::string> preset_names();
  /// Human-readable multi-line parameter dump (mpisect-replay info).
  [[nodiscard]] std::string describe() const;
};

}  // namespace mpisect::mpisim
