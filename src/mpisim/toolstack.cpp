#include "mpisim/toolstack.hpp"

#include <algorithm>

#include "mpisim/runtime.hpp"

namespace mpisect::mpisim::hooks {

ToolStack::ToolStack(World& world) : world_(world) {
  base_hooks_ = world_.hooks();
  base_taps_ = world_.trace_tap();
  install();
}

ToolStack::~ToolStack() {
  // Restore the application's raw hooks so a stack-free world behaves as
  // if the stack never existed.
  world_.hooks() = base_hooks_;
  world_.trace_tap() = base_taps_;
}

void ToolStack::attach(Tool* tool, int order) {
  detach(tool);
  entries_.push_back(Entry{tool, order, next_stamp_++});
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.order != b.order ? a.order < b.order
                                        : a.stamp < b.stamp;
            });
}

void ToolStack::detach(Tool* tool) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.tool == tool; }),
                 entries_.end());
}

void ToolStack::install() {
  // One dispatching closure per slot. Begin-type events run the base layer
  // first, then tools in ascending order; end-type events run tools in
  // descending order, then the base — so each tool brackets the ones
  // attached after it, like stacked PMPI wrapper libraries.
  //
  // `this` is stable for the World's lifetime (the stack lives behind a
  // unique_ptr owned by the World and is created at most once).
  auto& h = world_.hooks();
  auto& t = world_.trace_tap();

  h.on_call_begin = [this](Ctx& ctx, const CallInfo& ci) {
    if (base_hooks_.on_call_begin) base_hooks_.on_call_begin(ctx, ci);
    for (const auto& e : entries_) e.tool->on_call_begin(ctx, ci);
  };
  h.on_call_end = [this](Ctx& ctx, const CallInfo& ci) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
      (*it).tool->on_call_end(ctx, ci);
    if (base_hooks_.on_call_end) base_hooks_.on_call_end(ctx, ci);
  };
  h.section_enter_cb = [this](Ctx& ctx, Comm& comm, const char* label,
                              char* data) {
    if (base_hooks_.section_enter_cb)
      base_hooks_.section_enter_cb(ctx, comm, label, data);
    for (const auto& e : entries_) e.tool->on_section_enter(ctx, comm, label, data);
  };
  h.section_leave_cb = [this](Ctx& ctx, Comm& comm, const char* label,
                              char* data) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
      (*it).tool->on_section_leave(ctx, comm, label, data);
    if (base_hooks_.section_leave_cb)
      base_hooks_.section_leave_cb(ctx, comm, label, data);
  };
  h.section_error_cb = [this](Ctx& ctx, Comm& comm, const char* label,
                              int code) {
    if (base_hooks_.section_error_cb)
      base_hooks_.section_error_cb(ctx, comm, label, code);
    for (const auto& e : entries_) e.tool->on_section_error(ctx, comm, label, code);
  };
  h.on_pcontrol = [this](Ctx& ctx, int level, const char* label) {
    if (base_hooks_.on_pcontrol) base_hooks_.on_pcontrol(ctx, level, label);
    for (const auto& e : entries_) e.tool->on_pcontrol(ctx, level, label);
  };
  h.on_comm_create = [this](Ctx& ctx, const CommLifecycle& info) {
    if (base_hooks_.on_comm_create) base_hooks_.on_comm_create(ctx, info);
    for (const auto& e : entries_) e.tool->on_comm_create(ctx, info);
  };
  h.on_comm_free = [this](Ctx& ctx, int context) {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
      (*it).tool->on_comm_free(ctx, context);
    if (base_hooks_.on_comm_free) base_hooks_.on_comm_free(ctx, context);
  };

  t.on_send_post = [this](Ctx& ctx, const TapSend& tap) {
    if (base_taps_.on_send_post) base_taps_.on_send_post(ctx, tap);
    for (const auto& e : entries_) e.tool->on_send_post(ctx, tap);
  };
  t.on_send_wait = [this](Ctx& ctx, const TapSendWait& tap) {
    if (base_taps_.on_send_wait) base_taps_.on_send_wait(ctx, tap);
    for (const auto& e : entries_) e.tool->on_send_wait(ctx, tap);
  };
  t.on_recv_post = [this](Ctx& ctx, const TapRecvPost& tap) {
    if (base_taps_.on_recv_post) base_taps_.on_recv_post(ctx, tap);
    for (const auto& e : entries_) e.tool->on_recv_post(ctx, tap);
  };
  t.on_recv_wait = [this](Ctx& ctx, const TapRecvWait& tap) {
    if (base_taps_.on_recv_wait) base_taps_.on_recv_wait(ctx, tap);
    for (const auto& e : entries_) e.tool->on_recv_wait(ctx, tap);
  };
  t.on_probe = [this](Ctx& ctx, const TapProbe& tap) {
    if (base_taps_.on_probe) base_taps_.on_probe(ctx, tap);
    for (const auto& e : entries_) e.tool->on_probe(ctx, tap);
  };
  t.on_request_test = [this](Ctx& ctx, const TapRequestTest& tap) {
    if (base_taps_.on_request_test) base_taps_.on_request_test(ctx, tap);
    for (const auto& e : entries_) e.tool->on_request_test(ctx, tap);
  };
  t.on_nbc_post = [this](Ctx& ctx, const TapNbcPost& tap) {
    if (base_taps_.on_nbc_post) base_taps_.on_nbc_post(ctx, tap);
    for (const auto& e : entries_) e.tool->on_nbc_post(ctx, tap);
  };
  t.on_nbc_complete = [this](Ctx& ctx, const TapNbcComplete& tap) {
    if (base_taps_.on_nbc_complete) base_taps_.on_nbc_complete(ctx, tap);
    for (const auto& e : entries_) e.tool->on_nbc_complete(ctx, tap);
  };
  t.on_comm_sync = [this](Ctx& ctx, const TapCommSync& tap) {
    if (base_taps_.on_comm_sync) base_taps_.on_comm_sync(ctx, tap);
    for (const auto& e : entries_) e.tool->on_comm_sync(ctx, tap);
  };
  t.on_coll_entry = [this](Ctx& ctx, std::uint64_t op, double t_before) {
    if (base_taps_.on_coll_entry) base_taps_.on_coll_entry(ctx, op, t_before);
    for (const auto& e : entries_) e.tool->on_coll_entry(ctx, op, t_before);
  };
  t.on_omp_region = [this](Ctx& ctx, const TapOmpRegion& tap) {
    if (base_taps_.on_omp_region) base_taps_.on_omp_region(ctx, tap);
    for (const auto& e : entries_) e.tool->on_omp_region(ctx, tap);
  };
  t.on_fault = [this](Ctx& ctx, const TapFault& tap) {
    if (base_taps_.on_fault) base_taps_.on_fault(ctx, tap);
    for (const auto& e : entries_) e.tool->on_fault(ctx, tap);
  };
}

}  // namespace mpisect::mpisim::hooks
