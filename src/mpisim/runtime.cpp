#include "mpisim/runtime.hpp"

#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "mpisim/error.hpp"
#include "mpisim/faults/engine.hpp"
#include "mpisim/toolstack.hpp"
#include "obs/counters.hpp"
#include "obs/spans.hpp"
#include "support/log.hpp"

namespace mpisect::mpisim {

namespace {
/// Warn-once latch for the deprecated eager World constructor. Plain
/// atomic (not std::once_flag) so tests can reset it and assert the
/// single-shot behaviour.
std::atomic<bool> g_eager_ctor_warned{false};
}  // namespace

void World::reset_eager_ctor_warning_for_test() noexcept {
  g_eager_ctor_warned.store(false, std::memory_order_relaxed);
}

World::World(int nranks, WorldOptions options)
    : World(nranks, std::move(options), Lazy{}) {
  if (!g_eager_ctor_warned.exchange(true, std::memory_order_relaxed)) {
    MPISECT_LOG_WARN(
        "World(nranks, options) is deprecated; use "
        "mpisim::Session/WorldBuilder (session.hpp) which construct "
        "per-rank state lazily");
  }
  // Preserve the eager API's observable behaviour: the world communicator
  // (channel slots, per-rank sequence state) exists from construction.
  // Context id 0 is taken literally rather than drawn from the counter:
  // run() replaces this comm before anything can record its id, and
  // consuming a counter slot here would shift every context id embedded
  // in traces/hooks by one relative to a lazily built world.
  std::vector<int> all(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) all[static_cast<std::size_t>(r)] = r;
  world_comm_ = std::make_shared<CommImpl>(*this, Group(std::move(all)), 0);
}

World::World(int nranks, WorldOptions options, Lazy)
    : nranks_(nranks), options_(std::move(options)), rng_(options_.seed) {
  require(nranks_ > 0, Err::Arg, "world size must be positive");
  clocks_.resize(static_cast<std::size_t>(nranks_));
  final_times_.assign(static_cast<std::size_t>(nranks_), 0.0);
  // Keep the network model's placement and seed coherent with the world.
  options_.machine.net.seed = options_.seed;
  // Opportunistic progress polls the network on every MPI entry; fold that
  // per-entry cost into the per-message CPU overheads so every existing
  // charge site (and the machine snapshot recorded in trace headers) pays
  // it without change.
  if (options_.progress.mode == ProgressMode::Opportunistic) {
    options_.machine.net.send_overhead += options_.progress.entry_overhead;
    options_.machine.net.recv_overhead += options_.progress.entry_overhead;
  }
  executor_ =
      make_executor(options_.exec, options_.workers, options_.stack_kb);
  executor_->set_mem_account(&stack_account_);
  // Exact deadlock signal: every live rank parked, no wake pending. Give
  // the checker first look at the wait graph, then tear the world down.
  executor_->set_quiescence_handler([this] {
    if (deadlock_handler_) deadlock_handler_();
    abort();
  });
  if (!options_.faults.empty()) {
    fault_engine_ = std::make_unique<faults::FaultEngine>(
        options_.faults, options_.seed, nranks_);
  }
  // No world communicator yet: run() builds one per run, and CommImpl
  // itself defers per-peer channels to first touch, so an unstarted lazy
  // world holds no per-rank communication state at all.
}

World::~World() = default;

hooks::ToolStack& World::tool_stack() {
  if (!tool_stack_) tool_stack_ = std::make_unique<hooks::ToolStack>(*this);
  return *tool_stack_;
}

void World::attach_extension(std::shared_ptr<Extension> ext) {
  extensions_.push_back(std::move(ext));
}

double World::elapsed() const noexcept {
  if (final_times_.empty()) return 0.0;
  // Seed with -infinity: replay what-ifs can rescale virtual time into
  // negative territory and a 0.0 seed would silently clamp the makespan.
  double m = -std::numeric_limits<double>::infinity();
  for (double t : final_times_) m = std::max(m, t);
  return m;
}

void World::run(const RankMain& rank_main) {
  require(!aborted_.load(), Err::Aborted, "world previously aborted");
  // The previous run's world communicator dies here; tell lifecycle hooks
  // (comm-leak analyses pair every create with a free) while the clocks
  // still carry that run's final times.
  if (world_comm_announced_ && hooks_.on_comm_free) {
    const int old_context = world_comm_->context_id();
    for (int r = 0; r < nranks_; ++r) {
      Ctx ctx(*this, r, clocks_[static_cast<std::size_t>(r)]);
      hooks_.on_comm_free(ctx, old_context);
    }
  }
  world_comm_announced_ = false;
  // Fresh clocks (and a fresh world communicator, so sequence counters and
  // stale messages from a previous run cannot leak into this one). Reset
  // final times too: a failed run must not leave stale per-rank values.
  final_times_.assign(static_cast<std::size_t>(nranks_), 0.0);
  std::vector<int> all(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) all[static_cast<std::size_t>(r)] = r;
  world_comm_ =
      std::make_shared<CommImpl>(*this, Group(std::move(all)),
                                 next_context_id());
  world_comm_announced_ = hooks_.on_comm_create != nullptr;
  for (int r = 0; r < nranks_; ++r) {
    double skew = 0.0;
    if (options_.start_skew_sigma > 0.0) {
      skew = std::abs(options_.start_skew_sigma *
                      rng_.gaussian(support::stream_id(
                                        static_cast<std::uint64_t>(r) + 1,
                                        0xA110C),
                                    0));
    }
    clocks_[static_cast<std::size_t>(r)].reset(skew);
  }

  std::mutex err_mu;
  std::exception_ptr first_error;

  auto rank_body = [&](int r) {
    Ctx ctx(*this, r, clocks_[static_cast<std::size_t>(r)]);
    try {
      if (hooks_.on_comm_create) {
        CommLifecycle info;
        info.context = world_comm_->context_id();
        info.parent_context = -1;
        info.rank = r;
        info.size = nranks_;
        info.world_ranks = &world_comm_->group().world_ranks();
        hooks_.on_comm_create(ctx, info);
      }
      {
        CallInfo ci;
        ci.call = MpiCall::Init;
        ci.rank = r;
        ci.comm_size = nranks_;
        ci.t_virtual = ctx.now();
        if (hooks_.on_call_begin) hooks_.on_call_begin(ctx, ci);
        if (hooks_.on_call_end) hooks_.on_call_end(ctx, ci);
      }
      for (auto& ext : extensions_) ext->on_rank_init(ctx);
      rank_main(ctx);
      for (auto it = extensions_.rbegin(); it != extensions_.rend(); ++it) {
        (*it)->on_rank_finalize(ctx);
      }
      {
        CallInfo ci;
        ci.call = MpiCall::Finalize;
        ci.rank = r;
        ci.comm_size = nranks_;
        ci.t_virtual = ctx.now();
        if (hooks_.on_call_begin) hooks_.on_call_begin(ctx, ci);
        if (hooks_.on_call_end) hooks_.on_call_end(ctx, ci);
      }
      final_times_[static_cast<std::size_t>(r)] = ctx.now();
    } catch (const MpiError& e) {
      if (e.code() == Err::Killed) {
        // Injected kill: the rank retires quietly at its time of death.
        // The world keeps running — ranks that depend on this one block
        // until the scheduler proves quiescence, which the checker then
        // classifies as an injected fault rather than a native deadlock.
        final_times_[static_cast<std::size_t>(r)] = ctx.now();
        return;
      }
      {
        const std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      MPISECT_LOG_ERROR("rank %d raised; aborting world", r);
      abort();
    } catch (...) {
      {
        const std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      MPISECT_LOG_ERROR("rank %d raised; aborting world", r);
      abort();
    }
  };

  {
    const obs::Span span("world.run");
    executor_->run(nranks_, rank_body);
  }

  // Fold this run's wall-clock scheduling totals and memory high-water
  // marks into the process-wide obs counters (scraped by the serve
  // daemon's metrics op and mpisect-top --self). Observation only — the
  // virtual-time results above are already final.
  {
    auto& oc = obs::counters();
    const ExecStats& st = executor_->stats();
    const auto ld = [](const std::atomic<std::uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    oc.sched_parks.fetch_add(ld(st.parks), std::memory_order_relaxed);
    oc.sched_wakes.fetch_add(ld(st.wakes), std::memory_order_relaxed);
    oc.sched_switches.fetch_add(ld(st.switches), std::memory_order_relaxed);
    oc.sched_busy_ns.fetch_add(ld(st.busy_ns), std::memory_order_relaxed);
    oc.sched_idle_ns.fetch_add(ld(st.idle_ns), std::memory_order_relaxed);
    obs::update_max(oc.mem_channel_bytes_hwm, mem_account_.total_hwm());
    // Live peak, not cumulative mmap churn: stacks are pooled and reused
    // across ranks, so the high-water mark is what the run actually held.
    obs::update_max(oc.mem_stack_bytes_hwm, ld(st.stack_bytes_hwm));
    obs::update_max(oc.mem_ranks, static_cast<std::uint64_t>(nranks_));
  }

  if (first_error) {
    std::rethrow_exception(first_error);
  }
  if (aborted_.load()) {
    throw MpiError(Err::Aborted, "world aborted without recorded cause");
  }
}

// ---------------------------------------------------------------------------
// Ctx
// ---------------------------------------------------------------------------

Ctx::Ctx(World& world, int world_rank, VirtualClock& clock) noexcept
    : world_(world), rank_(world_rank), clock_(clock) {}

Comm Ctx::world_comm() noexcept {
  return Comm(this, world_.world_comm_, rank_);
}

void Ctx::compute(double seconds) {
  fault_checkpoint();
  // A progress thread owns a core (or hardware thread): every compute
  // charge pays its tax, deterministically.
  seconds *= world_.progress().compute_factor();
  const double sigma = machine().compute_noise_sigma;
  if (sigma > 0.0) {
    const double g = world_.rng().gaussian(
        support::stream_id(static_cast<std::uint64_t>(rank_) + 1, 0xC0117),
        next_op_id());
    seconds *= std::max(0.0, 1.0 + sigma * g);
  }
  if (auto* fe = world_.fault_engine()) {
    seconds *= fe->compute_factor(rank_, clock_.now());
  }
  clock_.advance(seconds);
}

void Ctx::compute_flops(double flops) {
  compute(machine().compute_seconds(flops));
}

void Ctx::compute_exact(double seconds) noexcept {
  seconds *= world_.progress().compute_factor();
  if (auto* fe = world_.fault_engine()) {
    seconds *= fe->compute_factor(rank_, clock_.now());
  }
  clock_.advance(seconds);
}

void Ctx::fault_checkpoint() {
  auto* fe = world_.fault_engine();
  if (fe == nullptr) return;
  if (const double s = fe->take_stall(rank_, clock_.now()); s > 0.0) {
    TapFault tf;
    tf.kind = FaultKind::Stall;
    tf.src_world = rank_;
    tf.seconds = s;
    tf.t = clock_.now();
    clock_.advance(s);
    if (world_.trace_tap().on_fault) world_.trace_tap().on_fault(*this, tf);
  }
  if (fe->kill_due(rank_, clock_.now())) {
    fe->record_kill(rank_, clock_.now());
    TapFault tf;
    tf.kind = FaultKind::Kill;
    tf.src_world = rank_;
    tf.t = clock_.now();
    if (world_.trace_tap().on_fault) world_.trace_tap().on_fault(*this, tf);
    throw MpiError(Err::Killed,
                   "rank " + std::to_string(rank_) +
                       " killed by fault plan at t=" +
                       std::to_string(clock_.now()));
  }
}

void Ctx::pcontrol(int level, const char* label) {
  // Generic begin/end bracket first (PMPI wrappers see MPI_Pcontrol like
  // any other entry point; `peer` carries the level).
  CallInfo ci;
  ci.call = MpiCall::Pcontrol;
  ci.rank = rank_;
  ci.comm_size = world_.size();
  ci.peer = level;
  ci.t_virtual = now();
  if (world_.hooks().on_call_begin) world_.hooks().on_call_begin(*this, ci);
  auto& hook = world_.hooks().on_pcontrol;
  if (hook) hook(*this, level, label);
  if (world_.hooks().on_call_end) world_.hooks().on_call_end(*this, ci);
}

}  // namespace mpisect::mpisim
