#include "mpisim/channel.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpisim/error.hpp"
#include "support/spec.hpp"

namespace mpisect::mpisim {

// ---------------------------------------------------------------------------
// MatchModel: the --match spec
// ---------------------------------------------------------------------------

const char* MatchModel::name() const noexcept {
  return mode == MatchMode::Legacy ? "legacy" : "hashed";
}

std::string MatchModel::spec() const {
  std::string s = name();
  if (mode == MatchMode::Hashed && buckets > 0) {
    s += ":buckets=" + std::to_string(buckets);
  }
  return s;
}

MatchModel MatchModel::parse(const std::string& spec) {
  support::SpecParts parts;
  try {
    parts = support::parse_spec(spec);
  } catch (const std::invalid_argument& e) {
    throw MpiError(Err::Arg, std::string("match ") + e.what());
  }

  MatchModel m;
  if (parts.preset == "hashed") {
    m.mode = MatchMode::Hashed;
  } else if (parts.preset == "legacy") {
    m.mode = MatchMode::Legacy;
  } else {
    throw MpiError(Err::Arg, "unknown match preset '" + parts.preset +
                                 "' (expected " + choices() + ")");
  }
  require(parts.options.empty() || m.mode == MatchMode::Hashed, Err::Arg,
          "legacy takes no options");

  for (const auto& [key, raw] : parts.options) {
    int value = 0;
    try {
      value = support::spec_int(raw);
    } catch (const std::invalid_argument& e) {
      throw MpiError(Err::Arg, std::string("match ") + e.what());
    }
    if (key == "buckets") {
      m.buckets = static_cast<std::size_t>(value);
    } else {
      throw MpiError(Err::Arg,
                     "unknown match option '" + key + "' for hashed");
    }
  }
  return m;
}

std::string MatchModel::choices() { return "hashed[:buckets=N]|legacy"; }

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

Channel::~Channel() {
  // Credit back whatever never matched so the world's MemAccount drains to
  // zero when all channels die (a leak here would poison the next world's
  // high-water mark reading).
  if (mem_ != nullptr) {
    for (const auto& m : unexpected_) mem_->sub(queued_bytes(*m));
    if (!posted_.empty()) mem_->sub(posted_.size() * sizeof(PostedRecv));
  }
  for (MsgNode* n = um_all_.head; n != nullptr;) {
    MsgNode* next = n->next[3];
    if (mem_ != nullptr) mem_->sub(queued_bytes(*n->msg));
    delete n;
    n = next;
  }
  if (mem_ != nullptr && pr_count_ > 0) {
    mem_->sub(pr_count_ * sizeof(PostedRecv));
  }
  const auto drop_lane = [](RecvList& lane) {
    for (RecvNode* n = lane.head; n != nullptr;) {
      RecvNode* next = n->next;
      delete n;
      n = next;
    }
  };
  for (auto& [key, lane] : pr_by_pair_) drop_lane(lane);
  for (auto& [key, lane] : pr_by_src_) drop_lane(lane);
  for (auto& [key, lane] : pr_by_tag_) drop_lane(lane);
  drop_lane(pr_any_);
  for (MsgNode* n = msg_free_; n != nullptr;) {
    MsgNode* next = n->next[0];
    delete n;
    n = next;
  }
  for (RecvNode* n = recv_free_; n != nullptr;) {
    RecvNode* next = n->next;
    delete n;
    n = next;
  }
}

void Channel::reserve_tables(std::size_t buckets) {
  um_by_pair_.reserve(buckets);
  um_by_src_.reserve(buckets);
  um_by_tag_.reserve(buckets);
  pr_by_pair_.reserve(buckets);
  pr_by_src_.reserve(buckets);
  pr_by_tag_.reserve(buckets);
}

bool Channel::compatible(const PostedRecv& r, const Message& m) noexcept {
  const bool src_ok = r.src == kAnySource || r.src == m.src;
  const bool tag_ok = r.tag == kAnyTag || r.tag == m.tag;
  return src_ok && tag_ok;
}

void Channel::complete_match(const MessagePtr& msg,
                             const PostedRecvPtr& recv) const {
  double t_deliver = 0.0;
  if (msg->rendezvous) {
    t_deliver = std::max(msg->t_send_start, recv->t_post) + msg->wire_cost +
                rendezvous_extra_;
  } else {
    t_deliver = std::max(recv->t_post, msg->t_avail);
  }

  recv->truncated = msg->bytes > recv->max_bytes;
  if (recv->buf != nullptr && !msg->payload.empty()) {
    const std::size_t n = std::min(msg->payload.size(), recv->max_bytes);
    std::memcpy(recv->buf, msg->payload.data(), n);
  }
  recv->status.source = msg->src;
  recv->status.tag = msg->tag;
  recv->status.bytes = msg->bytes;
  recv->status.t_complete = t_deliver;
  recv->status.seq = msg->seq;
  recv->completed = true;

  msg->t_deliver = t_deliver;
  msg->delivered = true;
}

void Channel::check_abort() const {
  if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
    throw MpiError(Err::Aborted, "world aborted while waiting in channel");
  }
}

// --- node pools ------------------------------------------------------------

Channel::MsgNode* Channel::alloc_msg_node() {
  if (msg_free_ == nullptr) return new MsgNode;
  MsgNode* n = msg_free_;
  msg_free_ = n->next[0];
  *n = MsgNode{};
  return n;
}

void Channel::free_msg_node(MsgNode* n) {
  n->msg.reset();
  n->next[0] = msg_free_;
  msg_free_ = n;
}

Channel::RecvNode* Channel::alloc_recv_node() {
  if (recv_free_ == nullptr) return new RecvNode;
  RecvNode* n = recv_free_;
  recv_free_ = n->next;
  n->next = nullptr;
  return n;
}

void Channel::free_recv_node(RecvNode* n) {
  n->recv.reset();
  n->next = recv_free_;
  recv_free_ = n;
}

// --- hashed engine ---------------------------------------------------------

void Channel::link_msg(const MessagePtr& msg) {
  MsgNode* n = alloc_msg_node();
  n->msg = msg;
  MsgList* lists[4] = {&um_by_pair_[pair_key(msg->src, msg->tag)],
                       &um_by_src_[msg->src], &um_by_tag_[msg->tag],
                       &um_all_};
  for (int k = 0; k < 4; ++k) {
    n->prev[k] = lists[k]->tail;
    n->next[k] = nullptr;
    if (lists[k]->tail != nullptr) {
      lists[k]->tail->next[k] = n;
    } else {
      lists[k]->head = n;
    }
    lists[k]->tail = n;
  }
}

void Channel::unlink_msg(MsgNode* n) {
  const Message& m = *n->msg;
  MsgList* lists[4] = {&um_by_pair_[pair_key(m.src, m.tag)],
                       &um_by_src_[m.src], &um_by_tag_[m.tag], &um_all_};
  for (int k = 0; k < 4; ++k) {
    if (n->prev[k] != nullptr) {
      n->prev[k]->next[k] = n->next[k];
    } else {
      lists[k]->head = n->next[k];
    }
    if (n->next[k] != nullptr) {
      n->next[k]->prev[k] = n->prev[k];
    } else {
      lists[k]->tail = n->prev[k];
    }
  }
}

std::size_t Channel::deposit_hashed(const MessagePtr& msg) {
  // Candidate receive lanes for this (src,tag): one per wildcard class.
  // Each lane's head is its earliest-posted member, so the global earliest
  // compatible receive is the min post-ordinal among the four heads —
  // identical to the legacy scan's "first compatible in post order".
  RecvList* lanes[4] = {nullptr, nullptr, nullptr, &pr_any_};
  if (const auto it = pr_by_pair_.find(pair_key(msg->src, msg->tag));
      it != pr_by_pair_.end()) {
    lanes[0] = &it->second;
  }
  if (const auto it = pr_by_src_.find(msg->src); it != pr_by_src_.end()) {
    lanes[1] = &it->second;
  }
  if (const auto it = pr_by_tag_.find(msg->tag); it != pr_by_tag_.end()) {
    lanes[2] = &it->second;
  }
  RecvList* best = nullptr;
  for (RecvList* lane : lanes) {
    if (lane != nullptr && lane->head != nullptr &&
        (best == nullptr || lane->head->ord < best->head->ord)) {
      best = lane;
    }
  }
  if (best != nullptr) {
    RecvNode* n = best->head;
    best->head = n->next;
    if (best->head == nullptr) best->tail = nullptr;
    complete_match(msg, n->recv);
    free_recv_node(n);
    --pr_count_;
    if (mem_ != nullptr) mem_->sub(sizeof(PostedRecv));
    wp_.notify_all();
    return 0;
  }
  link_msg(msg);
  ++um_count_;
  if (mem_ != nullptr) mem_->add(queued_bytes(*msg));
  // Wake probers waiting for a matching envelope.
  wp_.notify_all();
  return um_count_;
}

std::size_t Channel::post_hashed(const PostedRecvPtr& recv) {
  // The receive's wildcard class picks the one message index whose head is
  // the earliest-arrival compatible message (every index list preserves
  // arrival order).
  MsgList* lane = nullptr;
  if (recv->src != kAnySource && recv->tag != kAnyTag) {
    if (const auto it = um_by_pair_.find(pair_key(recv->src, recv->tag));
        it != um_by_pair_.end()) {
      lane = &it->second;
    }
  } else if (recv->src != kAnySource) {
    if (const auto it = um_by_src_.find(recv->src); it != um_by_src_.end()) {
      lane = &it->second;
    }
  } else if (recv->tag != kAnyTag) {
    if (const auto it = um_by_tag_.find(recv->tag); it != um_by_tag_.end()) {
      lane = &it->second;
    }
  } else {
    lane = &um_all_;
  }
  if (lane != nullptr && lane->head != nullptr) {
    MsgNode* n = lane->head;
    if (mem_ != nullptr) mem_->sub(queued_bytes(*n->msg));
    complete_match(n->msg, recv);
    unlink_msg(n);
    free_msg_node(n);
    --um_count_;
    wp_.notify_all();
    return 0;
  }
  RecvNode* n = alloc_recv_node();
  n->recv = recv;
  n->ord = pr_ord_++;
  RecvList* dest = nullptr;
  if (recv->src != kAnySource && recv->tag != kAnyTag) {
    dest = &pr_by_pair_[pair_key(recv->src, recv->tag)];
  } else if (recv->src != kAnySource) {
    dest = &pr_by_src_[recv->src];
  } else if (recv->tag != kAnyTag) {
    dest = &pr_by_tag_[recv->tag];
  } else {
    dest = &pr_any_;
  }
  if (dest->tail != nullptr) {
    dest->tail->next = n;
  } else {
    dest->head = n;
  }
  dest->tail = n;
  ++pr_count_;
  if (mem_ != nullptr) mem_->add(sizeof(PostedRecv));
  return pr_count_;
}

const Message* Channel::probe_head(int src, int tag) const {
  if (src != kAnySource && tag != kAnyTag) {
    const auto it = um_by_pair_.find(pair_key(src, tag));
    return it != um_by_pair_.end() && it->second.head != nullptr
               ? it->second.head->msg.get()
               : nullptr;
  }
  if (src != kAnySource) {
    const auto it = um_by_src_.find(src);
    return it != um_by_src_.end() && it->second.head != nullptr
               ? it->second.head->msg.get()
               : nullptr;
  }
  if (tag != kAnyTag) {
    const auto it = um_by_tag_.find(tag);
    return it != um_by_tag_.end() && it->second.head != nullptr
               ? it->second.head->msg.get()
               : nullptr;
  }
  return um_all_.head != nullptr ? um_all_.head->msg.get() : nullptr;
}

// --- public operations -----------------------------------------------------

std::size_t Channel::deposit(const MessagePtr& msg) {
  const std::lock_guard lock(mu_);
  if (msg->fault_lost) {
    // Injected loss: the retransmit budget was exhausted, so the message
    // never reaches the matching engine. An eager sender proceeds unaware;
    // a rendezvous sender blocks in wait_delivered until quiescence, where
    // the checker attributes the hang to the fault plan.
    return match_.mode == MatchMode::Hashed ? um_count_ : unexpected_.size();
  }
  if (match_.mode == MatchMode::Hashed) return deposit_hashed(msg);
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (compatible(**it, *msg)) {
      complete_match(msg, *it);
      posted_.erase(it);
      if (mem_ != nullptr) mem_->sub(sizeof(PostedRecv));
      wp_.notify_all();
      return 0;
    }
  }
  unexpected_.push_back(msg);
  if (mem_ != nullptr) mem_->add(queued_bytes(*msg));
  // Wake probers waiting for a matching envelope.
  wp_.notify_all();
  return unexpected_.size();
}

std::size_t Channel::post(const PostedRecvPtr& recv) {
  const std::lock_guard lock(mu_);
  if (match_.mode == MatchMode::Hashed) return post_hashed(recv);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (compatible(*recv, **it)) {
      if (mem_ != nullptr) mem_->sub(queued_bytes(**it));
      complete_match(*it, recv);
      unexpected_.erase(it);
      wp_.notify_all();
      return 0;
    }
  }
  posted_.push_back(recv);
  if (mem_ != nullptr) mem_->add(sizeof(PostedRecv));
  return posted_.size();
}

Status Channel::wait_recv(const PostedRecvPtr& recv) {
  std::unique_lock lock(mu_);
  while (!recv->completed) {
    check_abort();
    wp_.wait(lock);
  }
  if (recv->truncated) {
    throw MpiError(Err::Truncate, "message longer than receive buffer");
  }
  return recv->status;
}

bool Channel::test_recv(const PostedRecvPtr& recv) {
  const std::lock_guard lock(mu_);
  return recv->completed;
}

bool Channel::test_send(const MessagePtr& msg) {
  const std::lock_guard lock(mu_);
  return !msg->rendezvous || msg->delivered;
}

void Channel::park_recv_incomplete(const PostedRecvPtr& recv) {
  std::unique_lock lock(mu_);
  // Predicate checked under the same lock the park registers under, so a
  // completion between the caller's failed test and this park cannot be a
  // lost wake — it either flips `completed` before we check, or notifies
  // after the WaitPoint registration.
  if (recv->completed) return;
  check_abort();
  wp_.wait(lock);
  check_abort();
}

void Channel::park_send_incomplete(const MessagePtr& msg) {
  std::unique_lock lock(mu_);
  if (!msg->rendezvous || msg->delivered) return;
  check_abort();
  wp_.wait(lock);
  check_abort();
}

double Channel::wait_delivered(const MessagePtr& msg) {
  std::unique_lock lock(mu_);
  while (!msg->delivered) {
    check_abort();
    wp_.wait(lock);
  }
  return msg->t_deliver;
}

Status Channel::probe(int src, int tag, double t_probe) {
  std::unique_lock lock(mu_);
  for (;;) {
    const Message* found = nullptr;
    if (match_.mode == MatchMode::Hashed) {
      found = probe_head(src, tag);
    } else {
      const PostedRecv pattern{src, tag, t_probe, nullptr, 0, false, false,
                               {}};
      for (const auto& msg : unexpected_) {
        if (compatible(pattern, *msg)) {
          found = msg.get();
          break;
        }
      }
    }
    if (found != nullptr) {
      Status st;
      st.source = found->src;
      st.tag = found->tag;
      st.bytes = found->bytes;
      st.seq = found->seq;
      // Completion time of a hypothetical receive posted at t_probe —
      // the same delivery model complete_match applies. In particular a
      // rendezvous message still pays its wire cost; reporting
      // max(t_send_start, t_probe) alone would claim availability earlier
      // than any matching recv could ever complete.
      st.t_complete =
          found->rendezvous
              ? std::max(found->t_send_start, t_probe) + found->wire_cost +
                    rendezvous_extra_
              : std::max(t_probe, found->t_avail);
      return st;
    }
    check_abort();
    wp_.wait(lock);
  }
}

std::size_t Channel::pending_messages() {
  const std::lock_guard lock(mu_);
  return match_.mode == MatchMode::Hashed ? um_count_ : unexpected_.size();
}

std::size_t Channel::pending_recvs() {
  const std::lock_guard lock(mu_);
  return match_.mode == MatchMode::Hashed ? pr_count_ : posted_.size();
}

}  // namespace mpisect::mpisim
