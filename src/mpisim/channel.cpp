#include "mpisim/channel.hpp"

#include <algorithm>
#include <cstring>

#include "mpisim/error.hpp"

namespace mpisect::mpisim {

Channel::~Channel() {
  // Credit back whatever never matched so the world's MemAccount drains to
  // zero when all channels die (a leak here would poison the next world's
  // high-water mark reading).
  if (mem_ != nullptr) {
    for (const auto& m : unexpected_) mem_->sub(queued_bytes(*m));
    if (!posted_.empty()) mem_->sub(posted_.size() * sizeof(PostedRecv));
  }
}

bool Channel::compatible(const PostedRecv& r, const Message& m) noexcept {
  const bool src_ok = r.src == kAnySource || r.src == m.src;
  const bool tag_ok = r.tag == kAnyTag || r.tag == m.tag;
  return src_ok && tag_ok;
}

void Channel::complete_match(const MessagePtr& msg,
                             const PostedRecvPtr& recv) const {
  double t_deliver = 0.0;
  if (msg->rendezvous) {
    t_deliver = std::max(msg->t_send_start, recv->t_post) + msg->wire_cost +
                rendezvous_extra_;
  } else {
    t_deliver = std::max(recv->t_post, msg->t_avail);
  }

  recv->truncated = msg->bytes > recv->max_bytes;
  if (recv->buf != nullptr && !msg->payload.empty()) {
    const std::size_t n = std::min(msg->payload.size(), recv->max_bytes);
    std::memcpy(recv->buf, msg->payload.data(), n);
  }
  recv->status.source = msg->src;
  recv->status.tag = msg->tag;
  recv->status.bytes = msg->bytes;
  recv->status.t_complete = t_deliver;
  recv->status.seq = msg->seq;
  recv->completed = true;

  msg->t_deliver = t_deliver;
  msg->delivered = true;
}

void Channel::check_abort() const {
  if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
    throw MpiError(Err::Aborted, "world aborted while waiting in channel");
  }
}

std::size_t Channel::deposit(const MessagePtr& msg) {
  const std::lock_guard lock(mu_);
  if (msg->fault_lost) {
    // Injected loss: the retransmit budget was exhausted, so the message
    // never reaches the matching engine. An eager sender proceeds unaware;
    // a rendezvous sender blocks in wait_delivered until quiescence, where
    // the checker attributes the hang to the fault plan.
    return unexpected_.size();
  }
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (compatible(**it, *msg)) {
      complete_match(msg, *it);
      posted_.erase(it);
      if (mem_ != nullptr) mem_->sub(sizeof(PostedRecv));
      wp_.notify_all();
      return 0;
    }
  }
  unexpected_.push_back(msg);
  if (mem_ != nullptr) mem_->add(queued_bytes(*msg));
  // Wake probers waiting for a matching envelope.
  wp_.notify_all();
  return unexpected_.size();
}

std::size_t Channel::post(const PostedRecvPtr& recv) {
  const std::lock_guard lock(mu_);
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (compatible(*recv, **it)) {
      if (mem_ != nullptr) mem_->sub(queued_bytes(**it));
      complete_match(*it, recv);
      unexpected_.erase(it);
      wp_.notify_all();
      return 0;
    }
  }
  posted_.push_back(recv);
  if (mem_ != nullptr) mem_->add(sizeof(PostedRecv));
  return posted_.size();
}

Status Channel::wait_recv(const PostedRecvPtr& recv) {
  std::unique_lock lock(mu_);
  while (!recv->completed) {
    check_abort();
    wp_.wait(lock);
  }
  if (recv->truncated) {
    throw MpiError(Err::Truncate, "message longer than receive buffer");
  }
  return recv->status;
}

bool Channel::test_recv(const PostedRecvPtr& recv) {
  const std::lock_guard lock(mu_);
  return recv->completed;
}

bool Channel::test_send(const MessagePtr& msg) {
  const std::lock_guard lock(mu_);
  return !msg->rendezvous || msg->delivered;
}

void Channel::park_recv_incomplete(const PostedRecvPtr& recv) {
  std::unique_lock lock(mu_);
  // Predicate checked under the same lock the park registers under, so a
  // completion between the caller's failed test and this park cannot be a
  // lost wake — it either flips `completed` before we check, or notifies
  // after the WaitPoint registration.
  if (recv->completed) return;
  check_abort();
  wp_.wait(lock);
  check_abort();
}

void Channel::park_send_incomplete(const MessagePtr& msg) {
  std::unique_lock lock(mu_);
  if (!msg->rendezvous || msg->delivered) return;
  check_abort();
  wp_.wait(lock);
  check_abort();
}

double Channel::wait_delivered(const MessagePtr& msg) {
  std::unique_lock lock(mu_);
  while (!msg->delivered) {
    check_abort();
    wp_.wait(lock);
  }
  return msg->t_deliver;
}

Status Channel::probe(int src, int tag, double t_probe) {
  std::unique_lock lock(mu_);
  for (;;) {
    for (const auto& msg : unexpected_) {
      const PostedRecv pattern{src, tag, t_probe, nullptr, 0, false, false, {}};
      if (compatible(pattern, *msg)) {
        Status st;
        st.source = msg->src;
        st.tag = msg->tag;
        st.bytes = msg->bytes;
        st.seq = msg->seq;
        // Completion time of a hypothetical receive posted at t_probe —
        // the same delivery model complete_match applies. In particular a
        // rendezvous message still pays its wire cost; reporting
        // max(t_send_start, t_probe) alone would claim availability earlier
        // than any matching recv could ever complete.
        st.t_complete =
            msg->rendezvous
                ? std::max(msg->t_send_start, t_probe) + msg->wire_cost +
                      rendezvous_extra_
                : std::max(t_probe, msg->t_avail);
        return st;
      }
    }
    check_abort();
    wp_.wait(lock);
  }
}

std::size_t Channel::pending_messages() {
  const std::lock_guard lock(mu_);
  return unexpected_.size();
}

std::size_t Channel::pending_recvs() {
  const std::lock_guard lock(mu_);
  return posted_.size();
}

}  // namespace mpisect::mpisim
