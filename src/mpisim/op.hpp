// Reduction operators for MiniMPI collective reductions.
#pragma once

#include "mpisim/datatype.hpp"

namespace mpisect::mpisim {

enum class ReduceOp {
  Sum,
  Prod,
  Max,
  Min,
  LAnd,   ///< logical and
  LOr,    ///< logical or
  BAnd,   ///< bitwise and (integer types only)
  BOr,    ///< bitwise or (integer types only)
  MaxLoc, ///< DoubleInt only
  MinLoc, ///< DoubleInt only
};

[[nodiscard]] const char* op_name(ReduceOp op) noexcept;

/// inout[i] = op(in[i], inout[i]) for count elements. Throws MpiError on an
/// op/type combination MPI itself forbids (e.g. BAnd on Double).
void apply_op(ReduceOp op, Datatype type, const void* in, void* inout,
              int count);

/// True if the op/type combination is valid.
[[nodiscard]] bool op_valid(ReduceOp op, Datatype type) noexcept;

}  // namespace mpisect::mpisim
