#include "mpisim/datatype.hpp"

namespace mpisect::mpisim {

std::size_t datatype_size(Datatype t) noexcept {
  switch (t) {
    case Datatype::Byte: return sizeof(std::byte);
    case Datatype::Char: return sizeof(char);
    case Datatype::Int: return sizeof(int);
    case Datatype::Long: return sizeof(long);
    case Datatype::UnsignedLong: return sizeof(unsigned long);
    case Datatype::Float: return sizeof(float);
    case Datatype::Double: return sizeof(double);
    case Datatype::DoubleInt: return sizeof(DoubleInt);
  }
  return 0;
}

const char* datatype_name(Datatype t) noexcept {
  switch (t) {
    case Datatype::Byte: return "MPI_BYTE";
    case Datatype::Char: return "MPI_CHAR";
    case Datatype::Int: return "MPI_INT";
    case Datatype::Long: return "MPI_LONG";
    case Datatype::UnsignedLong: return "MPI_UNSIGNED_LONG";
    case Datatype::Float: return "MPI_FLOAT";
    case Datatype::Double: return "MPI_DOUBLE";
    case Datatype::DoubleInt: return "MPI_DOUBLE_INT";
  }
  return "MPI_DATATYPE_NULL";
}

}  // namespace mpisect::mpisim
