// Error codes and exception type for the MiniMPI runtime.
//
// MiniMPI follows the MPI convention of integer error classes but, being a
// C++ library, reports hard errors by throwing MpiError (MPI_ERRORS_ARE_FATAL
// semantics). Query-style calls that can fail benignly return codes instead.
#pragma once

#include <stdexcept>
#include <string>

namespace mpisect::mpisim {

enum class Err {
  Success = 0,
  Comm,       ///< invalid communicator
  Count,      ///< invalid count
  Rank,       ///< invalid rank
  Tag,        ///< invalid tag
  Type,       ///< invalid datatype
  Op,         ///< invalid reduction operation
  Truncate,   ///< message truncated on receive
  Buffer,     ///< invalid buffer
  Arg,        ///< other invalid argument
  Pending,    ///< request not complete
  Section,    ///< MPI_Section misuse (nesting/label violation)
  Aborted,    ///< world aborted (peer rank raised)
  Killed,     ///< rank killed by an injected fault plan
  Internal,   ///< runtime invariant violation
};

[[nodiscard]] const char* err_name(Err e) noexcept;

/// Fatal runtime error carrying an MPI-style error class.
class MpiError : public std::runtime_error {
 public:
  MpiError(Err code, const std::string& what)
      : std::runtime_error(std::string(err_name(code)) + ": " + what),
        code_(code) {}

  [[nodiscard]] Err code() const noexcept { return code_; }

 private:
  Err code_;
};

/// Throw MpiError(code, what) if cond is false.
void require(bool cond, Err code, const char* what);

}  // namespace mpisect::mpisim
