// PMPI-style interposition.
//
// Real MPI tools interpose at link time: the tool defines MPI_Send, the
// runtime provides PMPI_Send. MiniMPI reproduces that contract with an
// explicit per-World HookTable: every public entry point dispatches through
// the table, whose default slots are the runtime's own implementations.
// A tool installs wrappers and the *application never names the tool* —
// exactly the decoupling the paper's MPI_Section proposal relies on
// ("A profiling tool redefining those functions is able to intercept
// Section events in a straightforward manner").
//
// Two hook families:
//   * generic call begin/end notifications carrying a CallInfo descriptor
//     (what a PMPI wrapper library sees), and
//   * the paper's Figure 2 section callbacks,
//     MPIX_Section_enter_cb / MPIX_Section_leave_cb(comm, label, data[32]),
//     with the 32-byte tool payload preserved between enter and leave.
#pragma once

#include <cstddef>
#include <functional>

namespace mpisect::mpisim {

class Ctx;
class Comm;

/// Which MPI entry point a CallInfo describes.
enum class MpiCall {
  Send,
  Recv,
  Isend,
  Irecv,
  Wait,
  Sendrecv,
  Probe,
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Scatter,
  Scatterv,
  Gather,
  Gatherv,
  Allgather,
  Alltoall,
  CommSplit,
  CommDup,
  Init,
  Finalize,
  Pcontrol,
};

[[nodiscard]] const char* mpi_call_name(MpiCall c) noexcept;
[[nodiscard]] bool is_collective(MpiCall c) noexcept;
[[nodiscard]] bool is_point_to_point(MpiCall c) noexcept;

/// Descriptor passed to the generic begin/end hooks.
struct CallInfo {
  MpiCall call = MpiCall::Init;
  int comm_context = 0;   ///< communicator context id
  int rank = 0;           ///< caller's rank in that communicator
  int comm_size = 1;
  int peer = -1;          ///< destination/source/root; -1 if n/a
  int tag = -1;
  std::size_t bytes = 0;  ///< payload size this rank sends/receives
  double t_virtual = 0.0; ///< caller's virtual clock at hook time
};

/// Size of the tool payload carried across a section's lifetime (Fig. 2).
inline constexpr std::size_t kSectionDataBytes = 32;

struct HookTable {
  /// Fired on entry to / exit from every intercepted MPI call.
  std::function<void(Ctx&, const CallInfo&)> on_call_begin;
  std::function<void(Ctx&, const CallInfo&)> on_call_end;

  /// MPIX_Section_enter_cb(comm, label, data[32]) — the runtime invokes
  /// this when a section is entered; `data` points to 32 bytes of mutable
  /// tool storage preserved until the matching leave callback.
  std::function<void(Ctx&, Comm&, const char* label, char* data)>
      section_enter_cb;
  /// MPIX_Section_leave_cb(comm, label, data[32]).
  std::function<void(Ctx&, Comm&, const char* label, char* data)>
      section_leave_cb;

  /// MPI_Pcontrol(level, label) — the IPM-style phase baseline (Sec. 6).
  std::function<void(Ctx&, int level, const char* label)> on_pcontrol;
};

}  // namespace mpisect::mpisim
