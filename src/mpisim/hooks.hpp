// PMPI-style interposition.
//
// Real MPI tools interpose at link time: the tool defines MPI_Send, the
// runtime provides PMPI_Send. MiniMPI reproduces that contract with an
// explicit per-World HookTable: every public entry point dispatches through
// the table, whose default slots are the runtime's own implementations.
// A tool installs wrappers and the *application never names the tool* —
// exactly the decoupling the paper's MPI_Section proposal relies on
// ("A profiling tool redefining those functions is able to intercept
// Section events in a straightforward manner").
//
// Two hook families:
//   * generic call begin/end notifications carrying a CallInfo descriptor
//     (what a PMPI wrapper library sees), and
//   * the paper's Figure 2 section callbacks,
//     MPIX_Section_enter_cb / MPIX_Section_leave_cb(comm, label, data[32]),
//     with the 32-byte tool payload preserved between enter and leave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mpisect::mpisim {

class Ctx;
class Comm;

/// Which MPI entry point a CallInfo describes.
enum class MpiCall {
  Send,
  Recv,
  Isend,
  Irecv,
  Wait,
  Sendrecv,
  Probe,
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Scatter,
  Scatterv,
  Gather,
  Gatherv,
  Allgather,
  Alltoall,
  CommSplit,
  CommDup,
  CommFree,
  Init,
  Finalize,
  Pcontrol,
  // Appended after Pcontrol: recorded CollBegin events store the numeric
  // MpiCall value, so existing values must never be renumbered.
  Test,
  Iallreduce,
  Ibarrier,
};

/// Number of distinct MpiCall values (for exhaustive tables/tests).
inline constexpr int kMpiCallCount = static_cast<int>(MpiCall::Ibarrier) + 1;

[[nodiscard]] const char* mpi_call_name(MpiCall c) noexcept;
[[nodiscard]] bool is_collective(MpiCall c) noexcept;
[[nodiscard]] bool is_point_to_point(MpiCall c) noexcept;
/// True for calls whose begin/end bracket may block the caller waiting on
/// other ranks (the wait-for-graph candidates of correctness tools).
[[nodiscard]] bool is_blocking(MpiCall c) noexcept;

/// Descriptor passed to the generic begin/end hooks.
struct CallInfo {
  MpiCall call = MpiCall::Init;
  int comm_context = 0;   ///< communicator context id
  int rank = 0;           ///< caller's rank in that communicator
  int comm_size = 1;
  int peer = -1;          ///< destination/source/root; -1 if n/a
  int tag = -1;
  std::size_t bytes = 0;  ///< payload size this rank sends/receives
  double t_virtual = 0.0; ///< caller's virtual clock at hook time
  /// Nonblocking-operation id (per rank, starting at 1): set on Isend/Irecv
  /// and on the Wait that completes the same operation. 0 = no request.
  std::uint64_t request = 0;
};

/// Descriptor for communicator-lifecycle notifications (MUST-style tools
/// track groups and resources through these, not through app cooperation).
struct CommLifecycle {
  int context = 0;          ///< new communicator's context id
  int parent_context = -1;  ///< context it was derived from; -1 for world
  int rank = 0;             ///< caller's rank in the new communicator
  int size = 1;
  /// Member world ranks, indexed by comm rank. Borrowed pointer, valid only
  /// for the duration of the callback — copy to retain.
  const std::vector<int>* world_ranks = nullptr;
};

/// Size of the tool payload carried across a section's lifetime (Fig. 2).
inline constexpr std::size_t kSectionDataBytes = 32;

struct HookTable {
  /// Fired on entry to / exit from every intercepted MPI call.
  std::function<void(Ctx&, const CallInfo&)> on_call_begin;
  std::function<void(Ctx&, const CallInfo&)> on_call_end;

  /// MPIX_Section_enter_cb(comm, label, data[32]) — the runtime invokes
  /// this when a section is entered; `data` points to 32 bytes of mutable
  /// tool storage preserved until the matching leave callback.
  std::function<void(Ctx&, Comm&, const char* label, char* data)>
      section_enter_cb;
  /// MPIX_Section_leave_cb(comm, label, data[32]).
  std::function<void(Ctx&, Comm&, const char* label, char* data)>
      section_leave_cb;

  /// MPI_Pcontrol(level, label) — the IPM-style phase baseline (Sec. 6).
  std::function<void(Ctx&, int level, const char* label)> on_pcontrol;

  /// Fired on every rank that becomes a member of a new communicator
  /// (world creation, split, dup) before the creating call returns.
  std::function<void(Ctx&, const CommLifecycle&)> on_comm_create;
  /// Fired when a rank frees its handle to communicator `context`.
  std::function<void(Ctx&, int context)> on_comm_free;

  /// Fired when the sections layer rejects an operation (bad nesting,
  /// empty stack, cross-rank mismatch, section leaked at finalize). `code`
  /// is a sections::SectionResult value; `comm` may be invalid for
  /// invalid-communicator errors.
  std::function<void(Ctx&, Comm&, const char* label, int code)>
      section_error_cb;
};

// ---------------------------------------------------------------------------
// Trace taps
// ---------------------------------------------------------------------------
//
// The HookTable above shows tools what a PMPI wrapper sees: public entry
// points only, with collective-internal traffic hidden. Trace capture needs
// the opposite view — every modelled message, with the logical identifiers
// (per-edge sequence number, per-rank op id) that key the deterministic
// jitter draws. The TraceTap exposes exactly those identifiers so a recorded
// skeleton can be re-costed under a different MachineModel and, on the
// recorded model, reproduce the original virtual timeline bit for bit.
// Tap callbacks observe and never charge virtual time.

/// A send entered the matching engine. `t_before` is the sender clock before
/// the send-side CPU overhead was charged with op id `op`.
struct TapSend {
  const void* token = nullptr;  ///< correlates with the matching TapSendWait
  int comm_context = 0;
  int src_world = 0;
  int dst_world = 0;
  int tag = 0;
  std::size_t bytes = 0;
  std::uint64_t seq = 0;  ///< per-(comm,src,dst) wire sequence (jitter key)
  std::uint64_t op = 0;   ///< sender overhead draw key
  double t_before = 0.0;
  /// Unmatched messages queued in the destination channel right after this
  /// deposit (0 = matched an already-posted receive). Wall-clock-order
  /// dependent — observability only, never a replay input.
  std::size_t queue_depth = 0;
};

/// A send completed locally (rendezvous senders have synced to delivery).
struct TapSendWait {
  const void* token = nullptr;
  double t_before = 0.0;  ///< clock before any rendezvous sync
};

/// A receive was posted (clock untouched).
struct TapRecvPost {
  const void* token = nullptr;  ///< correlates with the matching TapRecvWait
  int comm_context = 0;
  /// Unmatched posted receives in this rank's channel right after the post
  /// (0 = matched a queued message). Observability only.
  std::size_t queue_depth = 0;
  /// Posted envelope: requested source world rank (kAnySource for a
  /// wildcard) and tag (kAnyTag for a wildcard). Offline match-set
  /// analysis needs the envelope as posted, not as matched.
  int src_posted = 0;
  int tag_posted = 0;
};

/// A receive completed: matched message identity plus the receive-side
/// overhead op id. `t_before` is the clock before the delivery sync.
struct TapRecvWait {
  const void* token = nullptr;
  int comm_context = 0;
  int src_world = 0;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  std::uint64_t op = 0;
  double t_before = 0.0;
};

/// A probe returned a matching envelope (identified by src/seq).
struct TapProbe {
  int comm_context = 0;
  int src_world = 0;
  std::uint64_t seq = 0;
  double t_before = 0.0;
  /// Probed envelope as requested: source world rank (kAnySource for a
  /// wildcard) and tag (kAnyTag for a wildcard).
  int src_posted = 0;
  int tag_posted = 0;
};

/// A Request::test() completion poll ran. Observational only: test never
/// charges virtual time (its spin count is scheduling-dependent), so the
/// recorder deliberately ignores this tap to keep traces deterministic.
struct TapRequestTest {
  std::uint64_t request = 0;  ///< the polled request's id
  bool completed = false;     ///< this poll's outcome
  double t = 0.0;             ///< caller's (unchanged) clock
};

/// A nonblocking collective was posted: the rank deposited its contribution
/// and returned without blocking. `op` keys the collective-entry overhead
/// charged before the deposit; `t_before` is the clock before that charge.
struct TapNbcPost {
  int comm_context = 0;
  std::uint64_t gen = 0;  ///< per-(comm,rank) nonblocking-collective ordinal
  MpiCall call = MpiCall::Ibarrier;
  int members = 0;        ///< communicator size (the fence quorum)
  std::size_t bytes = 0;
  std::uint64_t op = 0;
  double t_before = 0.0;
};

/// A nonblocking collective completed at its wait fence: every member's
/// contribution had arrived and the completion time was charged.
struct TapNbcComplete {
  int comm_context = 0;
  std::uint64_t gen = 0;
  double t_before = 0.0;   ///< clock before the completion sync
  double t_complete = 0.0; ///< modelled completion time synced to
};

/// A split/dup metadata rendezvous synchronized this communicator:
/// leave time = max member entry time + rounds * inter-node latency.
struct TapCommSync {
  int comm_context = 0;
  std::uint64_t gen = 0;  ///< per-comm rendezvous generation
  int members = 0;
  int rounds = 0;
  double t_before = 0.0;  ///< caller clock at rendezvous entry
};

/// A MiniOMP worksharing region charged its modelled parallel time on the
/// calling rank's clock. Fired by Team::charge_region after the charge; the
/// breakdown is deterministic per rank (pure function of the model inputs).
struct TapOmpRegion {
  int threads = 0;
  double serial_seconds = 0.0;  ///< serial duration being parallelized
  double compute = 0.0;         ///< charged parallel compute time
  double imbalance = 0.0;       ///< charged schedule-imbalance time
  double overhead = 0.0;        ///< charged fork/join overhead
  double t_before = 0.0;        ///< clock before the region's charges
};

/// Kind of injected-fault event a TapFault describes.
enum class FaultKind {
  Drop,       ///< transmissions dropped then recovered by retransmit
  Loss,       ///< retry budget exhausted: the message will never arrive
  Duplicate,  ///< a duplicate copy was put on the wire
  Stall,      ///< a straggler stall charged lost progress on a rank
  Kill,       ///< the rank is about to retire mid-run
};

[[nodiscard]] const char* fault_kind_name(FaultKind k) noexcept;

/// An injected fault materialized. Fired on the rank that owns the event
/// (the sender for wire faults, the faulting rank for stall/kill), so
/// fault telemetry stays deterministic. Observational only — by the time
/// the tap fires, the cost/decision has already been applied.
struct TapFault {
  FaultKind kind = FaultKind::Drop;
  int comm_context = -1;   ///< -1 for rank-level faults
  int src_world = -1;
  int dst_world = -1;
  std::uint64_t seq = 0;
  int attempts = 1;        ///< wire transmissions modelled (Drop/Loss)
  double seconds = 0.0;    ///< retransmit delay / stall duration
  double t = 0.0;          ///< owning rank's clock at the event
};

/// Message-level observation points (all optional, fired when set).
struct TraceTap {
  std::function<void(Ctx&, const TapSend&)> on_send_post;
  std::function<void(Ctx&, const TapSendWait&)> on_send_wait;
  std::function<void(Ctx&, const TapRecvPost&)> on_recv_post;
  std::function<void(Ctx&, const TapRecvWait&)> on_recv_wait;
  std::function<void(Ctx&, const TapProbe&)> on_probe;
  std::function<void(Ctx&, const TapRequestTest&)> on_request_test;
  std::function<void(Ctx&, const TapNbcPost&)> on_nbc_post;
  std::function<void(Ctx&, const TapNbcComplete&)> on_nbc_complete;
  std::function<void(Ctx&, const TapCommSync&)> on_comm_sync;
  /// Collective-entry CPU overhead charged with op id `op`; `t_before` is
  /// the clock before the charge.
  std::function<void(Ctx&, std::uint64_t op, double t_before)> on_coll_entry;
  /// MiniOMP fork/join region charged on the calling rank.
  std::function<void(Ctx&, const TapOmpRegion&)> on_omp_region;
  /// An injected fault materialized (see TapFault for the ownership rule).
  std::function<void(Ctx&, const TapFault&)> on_fault;
};

}  // namespace mpisect::mpisim
