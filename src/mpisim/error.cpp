#include "mpisim/error.hpp"

namespace mpisect::mpisim {

const char* err_name(Err e) noexcept {
  switch (e) {
    case Err::Success: return "MPI_SUCCESS";
    case Err::Comm: return "MPI_ERR_COMM";
    case Err::Count: return "MPI_ERR_COUNT";
    case Err::Rank: return "MPI_ERR_RANK";
    case Err::Tag: return "MPI_ERR_TAG";
    case Err::Type: return "MPI_ERR_TYPE";
    case Err::Op: return "MPI_ERR_OP";
    case Err::Truncate: return "MPI_ERR_TRUNCATE";
    case Err::Buffer: return "MPI_ERR_BUFFER";
    case Err::Arg: return "MPI_ERR_ARG";
    case Err::Pending: return "MPI_ERR_PENDING";
    case Err::Section: return "MPIX_ERR_SECTION";
    case Err::Aborted: return "MPIX_ERR_ABORTED";
    case Err::Killed: return "MPIX_ERR_KILLED";
    case Err::Internal: return "MPIX_ERR_INTERNAL";
  }
  return "MPI_ERR_UNKNOWN";
}

void require(bool cond, Err code, const char* what) {
  if (!cond) throw MpiError(code, what);
}

}  // namespace mpisect::mpisim
