// Deterministic fault-injection engine.
//
// The engine is the single decision point for every fault in a run. All
// message-level decisions are pure functions of logical identifiers
// (world src/dst ranks, per-edge sequence number, retransmission attempt)
// hashed through the world's CounterRng — exactly like the netmodel's
// jitter — so identical (plan, seed) pairs replay the same faults no
// matter how the scheduler interleaves ranks. Rank-level decisions
// (stall, slow, kill) are pure functions of the rank's own virtual clock.
//
// The engine also keeps per-rank fault counters (relaxed atomics in
// padded slots, written from the rank that owns the event) so the checker
// and the CLI tools can summarize what was injected even when no
// telemetry tool is attached. The *set* of faults is deterministic, so
// the counter totals are too.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/faults/plan.hpp"
#include "support/rng.hpp"

namespace mpisect::mpisim::faults {

/// What happens to one message on the wire: how many transmissions the
/// resilient transport needed, the delay + degradation that costs, and
/// whether the message was ultimately lost or duplicated.
struct WireFate {
  int attempts = 1;          ///< transmissions modelled (1 = clean)
  double extra_delay = 0.0;  ///< retransmit backoff + delay-rule seconds
  double cost_factor = 1.0;  ///< link-degradation multiplier on wire cost
  double add_latency = 0.0;  ///< link-degradation additive latency
  bool lost = false;         ///< retry budget exhausted: never delivered
  bool duplicate = false;    ///< a second copy reaches the receiver
};

class FaultEngine {
 public:
  /// Per-rank injected-fault tallies (see class comment for determinism).
  struct Counters {
    std::uint64_t drops = 0;       ///< transmissions dropped (then retried)
    std::uint64_t lost = 0;        ///< messages lost outright
    std::uint64_t duplicates = 0;  ///< duplicate copies injected
    std::uint64_t stalls = 0;
    double retransmit_delay = 0.0;  ///< seconds of backoff charged
    double stall_seconds = 0.0;
    bool killed = false;
    double kill_time = 0.0;  ///< virtual time the kill fired
  };

  FaultEngine(FaultPlan plan, std::uint64_t seed, int nranks);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Decide the fate of message (src -> dst, seq) posted at t_start.
  /// `internal` marks collective-internal traffic, which is exempt from
  /// loss while plan().collectives_recover holds. Records drop/loss/dup
  /// counters against the sending rank.
  WireFate wire_fate(int src_world, int dst_world, std::uint64_t seq,
                     double t_start, bool internal);

  /// Compute-charge multiplier for `rank` at virtual time `t` (slow rules).
  [[nodiscard]] double compute_factor(int rank, double t) const noexcept;

  /// One-shot stall charge: seconds of lost progress due at `rank`'s first
  /// checkpoint at or past each stall rule's trigger time. Call only from
  /// the owning rank thread; returns 0 once a rule has been consumed.
  double take_stall(int rank, double now);

  /// True when a kill rule for `rank` has come due at time `now`.
  [[nodiscard]] bool kill_due(int rank, double now) const noexcept;
  /// Record that the kill fired (owning rank thread, just before throwing).
  void record_kill(int rank, double now);

  /// Whether duplicate copies should be suppressed by the channel layer.
  [[nodiscard]] bool dedup_duplicates() const noexcept {
    return plan_.retransmit.dedup_duplicates;
  }

  // -- post-run / quiescence queries --------------------------------------

  [[nodiscard]] Counters counters(int rank) const;
  [[nodiscard]] bool any_kill_fired() const noexcept;
  [[nodiscard]] bool any_loss() const noexcept;
  /// World ranks whose kill rules fired, ascending.
  [[nodiscard]] std::vector<int> killed_ranks() const;
  /// Human-readable tally, e.g. "12 drops, 1 lost, 1 rank killed".
  [[nodiscard]] std::string summary() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> drops{0};
    std::atomic<std::uint64_t> lost{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<double> retransmit_delay{0.0};
    std::atomic<double> stall_seconds{0.0};
    std::atomic<bool> killed{false};
    std::atomic<double> kill_time{0.0};
    /// One consumed flag per stall rule; written only by the owning rank.
    std::vector<bool> stall_done;
  };

  FaultPlan plan_;
  support::CounterRng rng_;
  std::vector<Slot> slots_;
};

}  // namespace mpisect::mpisim::faults
