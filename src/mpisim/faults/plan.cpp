#include "mpisim/faults/plan.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mpisect::mpisim::faults {
namespace {

[[noreturn]] void fail(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("fault plan: bad clause '" + clause + "': " +
                              why);
}

/// Key/value fields of one clause, with presence tracking so unknown or
/// unconsumed keys become errors instead of silent no-ops.
class Fields {
 public:
  Fields(std::string clause, std::string_view body) : clause_(std::move(clause)) {
    std::size_t pos = 0;
    while (pos < body.size()) {
      const std::size_t comma = body.find(',', pos);
      const std::string_view item =
          body.substr(pos, comma == std::string_view::npos ? comma : comma - pos);
      pos = comma == std::string_view::npos ? body.size() : comma + 1;
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size())
        fail(clause_, "expected key=value, got '" + std::string(item) + "'");
      kv_[std::string(item.substr(0, eq))] = std::string(item.substr(eq + 1));
    }
  }

  double number(const std::string& key, double fallback) {
    auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const std::string v = it->second;
    kv_.erase(it);
    char* end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || std::isnan(x))
      fail(clause_, "'" + key + "=" + v + "' is not a number");
    return x;
  }

  double required(const std::string& key) {
    if (kv_.find(key) == kv_.end())
      fail(clause_, "missing required field '" + key + "'");
    return number(key, 0.0);
  }

  int rank(const std::string& key, int fallback) {
    const double x = number(key, static_cast<double>(fallback));
    const int r = static_cast<int>(x);
    if (static_cast<double>(r) != x) fail(clause_, "'" + key + "' must be an integer rank");
    return r;
  }

  EdgeFilter edge() {
    EdgeFilter e;
    e.src = rank("src", -1);
    e.dst = rank("dst", -1);
    e.from = number("from", e.from);
    e.until = number("until", e.until);
    return e;
  }

  void done() {
    if (!kv_.empty())
      fail(clause_, "unknown field '" + kv_.begin()->first + "'");
  }

 private:
  std::string clause_;
  std::map<std::string, std::string> kv_;
};

double checked_probability(const std::string& clause, double p) {
  if (p < 0.0 || p > 1.0)
    fail(clause, "probability must be in [0, 1]");
  return p;
}

void append_window(std::ostringstream& os, const EdgeFilter& e) {
  if (e.src >= 0) os << ",src=" << e.src;
  if (e.dst >= 0) os << ",dst=" << e.dst;
  if (e.from > 0.0) os << ",from=" << e.from;
  if (e.until != std::numeric_limits<double>::infinity())
    os << ",until=" << e.until;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    std::string_view clause =
        spec.substr(pos, semi == std::string_view::npos ? semi : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    // Trim surrounding whitespace.
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    const std::string kind(clause.substr(0, colon));
    Fields f(std::string(clause),
             colon == std::string_view::npos ? std::string_view{}
                                             : clause.substr(colon + 1));
    if (kind == "drop") {
      DropRule r;
      r.p = checked_probability(std::string(clause), f.required("p"));
      r.edge = f.edge();
      plan.drops.push_back(r);
    } else if (kind == "dup") {
      DuplicateRule r;
      r.p = checked_probability(std::string(clause), f.required("p"));
      r.edge = f.edge();
      plan.duplicates.push_back(r);
    } else if (kind == "delay") {
      DelayRule r;
      r.seconds = f.required("t");
      r.p = checked_probability(std::string(clause), f.number("p", 1.0));
      r.edge = f.edge();
      if (r.seconds < 0.0) fail(std::string(clause), "'t' must be >= 0");
      plan.delays.push_back(r);
    } else if (kind == "degrade") {
      DegradeRule r;
      r.cost_factor = f.number("factor", 1.0);
      r.add_latency = f.number("lat", 0.0);
      r.edge = f.edge();
      if (r.cost_factor < 1.0 || r.add_latency < 0.0)
        fail(std::string(clause), "'factor' must be >= 1 and 'lat' >= 0");
      plan.degrades.push_back(r);
    } else if (kind == "stall") {
      StallRule r;
      r.rank = f.rank("rank", -1);
      r.at = f.number("at", 0.0);
      r.seconds = f.required("for");
      if (r.seconds < 0.0) fail(std::string(clause), "'for' must be >= 0");
      plan.stalls.push_back(r);
    } else if (kind == "slow") {
      SlowRule r;
      r.rank = f.rank("rank", -1);
      r.factor = f.required("factor");
      r.from = f.number("from", r.from);
      r.until = f.number("until", r.until);
      if (r.factor < 1.0) fail(std::string(clause), "'factor' must be >= 1");
      plan.slows.push_back(r);
    } else if (kind == "kill") {
      KillRule r;
      r.rank = f.rank("rank", -1);
      r.at = f.number("at", 0.0);
      if (r.rank < 0) fail(std::string(clause), "'rank' is required");
      plan.kills.push_back(r);
    } else if (kind == "retransmit") {
      plan.retransmit.rto = f.number("rto", plan.retransmit.rto);
      plan.retransmit.backoff = f.number("backoff", plan.retransmit.backoff);
      plan.retransmit.max_retries =
          f.rank("max", plan.retransmit.max_retries);
      plan.retransmit.dedup_duplicates =
          f.number("dedup", plan.retransmit.dedup_duplicates ? 1.0 : 0.0) != 0.0;
      if (plan.retransmit.rto <= 0.0 || plan.retransmit.backoff < 1.0 ||
          plan.retransmit.max_retries < 0)
        fail(std::string(clause),
             "need rto > 0, backoff >= 1, max >= 0");
    } else if (kind == "collectives") {
      plan.collectives_recover = f.number("recover", 1.0) != 0.0;
    } else {
      fail(std::string(clause), "unknown rule kind '" + kind + "'");
    }
    f.done();
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  const char* sep = "";
  auto next = [&] {
    os << sep;
    sep = ";";
  };
  for (const auto& r : drops) {
    next();
    os << "drop:p=" << r.p;
    append_window(os, r.edge);
  }
  for (const auto& r : duplicates) {
    next();
    os << "dup:p=" << r.p;
    append_window(os, r.edge);
  }
  for (const auto& r : delays) {
    next();
    os << "delay:t=" << r.seconds;
    if (r.p != 1.0) os << ",p=" << r.p;
    append_window(os, r.edge);
  }
  for (const auto& r : degrades) {
    next();
    os << "degrade:factor=" << r.cost_factor;
    if (r.add_latency > 0.0) os << ",lat=" << r.add_latency;
    append_window(os, r.edge);
  }
  for (const auto& r : stalls) {
    next();
    os << "stall:";
    if (r.rank >= 0) os << "rank=" << r.rank << ",";
    os << "at=" << r.at << ",for=" << r.seconds;
  }
  for (const auto& r : slows) {
    next();
    os << "slow:";
    if (r.rank >= 0) os << "rank=" << r.rank << ",";
    os << "factor=" << r.factor;
    if (r.from > 0.0) os << ",from=" << r.from;
    if (r.until != std::numeric_limits<double>::infinity())
      os << ",until=" << r.until;
  }
  for (const auto& r : kills) {
    next();
    os << "kill:rank=" << r.rank << ",at=" << r.at;
  }
  if (!empty()) {
    next();
    os << "retransmit:rto=" << retransmit.rto
       << ",backoff=" << retransmit.backoff << ",max=" << retransmit.max_retries
       << ",dedup=" << (retransmit.dedup_duplicates ? 1 : 0);
    if (!collectives_recover) {
      next();
      os << "collectives:recover=0";
    }
  }
  return os.str();
}

}  // namespace mpisect::mpisim::faults
