// FaultInjector — the fifth stack-registered tool.
//
// The FaultEngine itself lives inside the simulator core (wire fates are
// applied in raw_start_send, stalls/kills at fault checkpoints) because
// faults must perturb virtual time, which tools are forbidden to do. The
// injector is the tool-side face of the engine: it registers with the
// hooks::ToolStack at kOrderFaults, observes every TapFault the core
// emits, and keeps a per-rank, program-ordered log of injected events so
// CLIs and tests can report exactly what the plan did — without poking at
// the engine's atomic counters or requiring telemetry to be attached.
//
// Events fire on the owning rank (the sender for wire faults, the victim
// for stalls/kills), so each per-rank log is deterministic across
// scheduler backends and worker counts.
//
//   mpisim::WorldOptions opt;
//   opt.faults = faults::FaultPlan::parse("drop:p=0.05");
//   mpisim::World world(16, opt);
//   auto inj = faults::FaultInjector::install(world);
//   world.run(app);
//   std::cout << inj->summary();
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mpisim/hooks.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/toolstack.hpp"

namespace mpisect::mpisim::faults {

/// One observed fault event, in the owning rank's program order.
struct FaultEvent {
  FaultKind kind = FaultKind::Drop;
  int comm_context = -1;
  int src_world = -1;
  int dst_world = -1;
  std::uint64_t seq = 0;
  int attempts = 1;     ///< wire attempts including the final one
  double seconds = 0.0; ///< retransmit delay or stall length
  double t = 0.0;       ///< virtual time of the observation
};

class FaultInjector final : public Extension, public hooks::Tool {
 public:
  /// Create and attach an injector (idempotent per world). Safe to call on
  /// a world without a fault plan — the log simply stays empty.
  static std::shared_ptr<FaultInjector> install(World& world);

  explicit FaultInjector(World& world);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Unregister from the world's ToolStack. Idempotent.
  void detach();

  /// Snapshot of `rank`'s event log (program order).
  [[nodiscard]] std::vector<FaultEvent> events(int rank) const;
  /// Total events observed across all ranks.
  [[nodiscard]] std::size_t total_events() const;
  /// Human-readable digest: the engine's counter summary when a plan is
  /// active, "no faults injected" otherwise.
  [[nodiscard]] std::string summary() const;

  // Tool interface.
  void on_fault(Ctx& ctx, const TapFault& f) override;

 private:
  struct RankLog {
    mutable std::mutex mu;  ///< live reads race the rank thread
    std::vector<FaultEvent> events;
  };

  World* world_;
  bool attached_ = false;
  std::vector<std::unique_ptr<RankLog>> logs_;
};

}  // namespace mpisect::mpisim::faults
