#include "mpisim/faults/injector.hpp"

#include "mpisim/faults/engine.hpp"

namespace mpisect::mpisim::faults {

std::shared_ptr<FaultInjector> FaultInjector::install(World& world) {
  if (auto existing = world.find_extension<FaultInjector>()) return existing;
  auto self = std::make_shared<FaultInjector>(world);
  world.attach_extension(self);
  return self;
}

FaultInjector::FaultInjector(World& world) : world_(&world) {
  logs_.reserve(static_cast<std::size_t>(world.size()));
  for (int r = 0; r < world.size(); ++r) {
    logs_.push_back(std::make_unique<RankLog>());
  }
  world.tool_stack().attach(this, hooks::kOrderFaults);
  attached_ = true;
}

FaultInjector::~FaultInjector() { detach(); }

void FaultInjector::detach() {
  if (!attached_) return;
  world_->tool_stack().detach(this);
  attached_ = false;
}

void FaultInjector::on_fault(Ctx& ctx, const TapFault& f) {
  RankLog& log = *logs_[static_cast<std::size_t>(ctx.rank())];
  FaultEvent ev;
  ev.kind = f.kind;
  ev.comm_context = f.comm_context;
  ev.src_world = f.src_world;
  ev.dst_world = f.dst_world;
  ev.seq = f.seq;
  ev.attempts = f.attempts;
  ev.seconds = f.seconds;
  ev.t = f.t;
  const std::lock_guard lock(log.mu);
  log.events.push_back(ev);
}

std::vector<FaultEvent> FaultInjector::events(int rank) const {
  const RankLog& log = *logs_.at(static_cast<std::size_t>(rank));
  const std::lock_guard lock(log.mu);
  return log.events;
}

std::size_t FaultInjector::total_events() const {
  std::size_t n = 0;
  for (const auto& log : logs_) {
    const std::lock_guard lock(log->mu);
    n += log->events.size();
  }
  return n;
}

std::string FaultInjector::summary() const {
  const FaultEngine* fe = world_->fault_engine();
  if (fe == nullptr) return "no faults injected";
  return fe->summary();
}

}  // namespace mpisect::mpisim::faults
