#include "mpisim/faults/engine.hpp"

#include <algorithm>
#include <sstream>

namespace mpisect::mpisim::faults {
namespace {

/// Stream salt separating fault draws from jitter (0xA110C) and compute
/// noise (0xC0117) streams.
constexpr std::uint64_t kFaultSalt = 0xFA017;

/// Per-(draw kind, rule index) sub-salts so each rule consults an
/// independent stream on the same edge.
constexpr std::uint64_t kDropDraw = 1;
constexpr std::uint64_t kDupDraw = 2;
constexpr std::uint64_t kDelayDraw = 3;

std::uint64_t edge_stream(int src, int dst, std::uint64_t draw_kind,
                          std::size_t rule_index) {
  return support::stream_id(
      static_cast<std::uint64_t>(src + 1),
      static_cast<std::uint64_t>(dst + 1),
      kFaultSalt ^ (draw_kind << 40) ^ (static_cast<std::uint64_t>(rule_index) << 8));
}

void add_relaxed(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

FaultEngine::FaultEngine(FaultPlan plan, std::uint64_t seed, int nranks)
    : plan_(std::move(plan)), rng_(seed), slots_(static_cast<std::size_t>(nranks)) {
  for (auto& s : slots_) s.stall_done.assign(plan_.stalls.size(), false);
}

WireFate FaultEngine::wire_fate(int src_world, int dst_world,
                                std::uint64_t seq, double t_start,
                                bool internal) {
  WireFate fate;
  auto& slot = slots_[static_cast<std::size_t>(src_world)];

  // Link degradation: multiplicative over overlapping windows.
  for (const auto& r : plan_.degrades) {
    if (!r.edge.matches(src_world, dst_world, t_start)) continue;
    fate.cost_factor *= r.cost_factor;
    fate.add_latency += r.add_latency;
  }

  // Deterministic extra delay.
  for (std::size_t i = 0; i < plan_.delays.size(); ++i) {
    const auto& r = plan_.delays[i];
    if (!r.edge.matches(src_world, dst_world, t_start)) continue;
    if (r.p >= 1.0 ||
        rng_.uniform(edge_stream(src_world, dst_world, kDelayDraw, i), seq) <
            r.p)
      fate.extra_delay += r.seconds;
  }

  // Drop + retransmit-with-backoff. Each transmission attempt k of message
  // `seq` draws at counter seq * 64 + k, so attempts are independent yet
  // fully determined by the message's logical identity.
  double drop_p = 0.0;
  std::size_t drop_rule = 0;
  for (std::size_t i = 0; i < plan_.drops.size(); ++i) {
    const auto& r = plan_.drops[i];
    if (r.edge.matches(src_world, dst_world, t_start) && r.p > drop_p) {
      drop_p = r.p;
      drop_rule = i;
    }
  }
  if (drop_p > 0.0) {
    const std::uint64_t stream =
        edge_stream(src_world, dst_world, kDropDraw, drop_rule);
    double rto = plan_.retransmit.rto;
    const int max_attempts = plan_.retransmit.max_retries + 1;
    while (fate.attempts <= max_attempts &&
           rng_.uniform(stream, seq * 64 +
                                    static_cast<std::uint64_t>(fate.attempts)) <
               drop_p) {
      slot.drops.fetch_add(1, std::memory_order_relaxed);
      if (fate.attempts == max_attempts) {
        // Retry budget exhausted. Collective-internal traffic survives
        // anyway when the plan grants collectives graceful recovery.
        if (!(internal && plan_.collectives_recover)) {
          fate.lost = true;
          slot.lost.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      fate.extra_delay += rto;
      rto *= plan_.retransmit.backoff;
      ++fate.attempts;
    }
    if (fate.extra_delay > 0.0 && !fate.lost)
      add_relaxed(slot.retransmit_delay, fate.extra_delay);
  }

  // Duplication (pointless for a lost message).
  if (!fate.lost) {
    for (std::size_t i = 0; i < plan_.duplicates.size(); ++i) {
      const auto& r = plan_.duplicates[i];
      if (!r.edge.matches(src_world, dst_world, t_start)) continue;
      if (rng_.uniform(edge_stream(src_world, dst_world, kDupDraw, i), seq) <
          r.p) {
        fate.duplicate = true;
        slot.duplicates.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  return fate;
}

double FaultEngine::compute_factor(int rank, double t) const noexcept {
  double factor = 1.0;
  for (const auto& r : plan_.slows)
    if ((r.rank < 0 || r.rank == rank) && t >= r.from && t < r.until)
      factor *= r.factor;
  return factor;
}

double FaultEngine::take_stall(int rank, double now) {
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  double charge = 0.0;
  for (std::size_t i = 0; i < plan_.stalls.size(); ++i) {
    const auto& r = plan_.stalls[i];
    if (slot.stall_done[i] || (r.rank >= 0 && r.rank != rank) || now < r.at)
      continue;
    slot.stall_done[i] = true;
    charge += r.seconds;
    slot.stalls.fetch_add(1, std::memory_order_relaxed);
    add_relaxed(slot.stall_seconds, r.seconds);
  }
  return charge;
}

bool FaultEngine::kill_due(int rank, double now) const noexcept {
  const auto& slot = slots_[static_cast<std::size_t>(rank)];
  if (slot.killed.load(std::memory_order_relaxed)) return false;
  for (const auto& r : plan_.kills)
    if (r.rank == rank && now >= r.at) return true;
  return false;
}

void FaultEngine::record_kill(int rank, double now) {
  auto& slot = slots_[static_cast<std::size_t>(rank)];
  slot.kill_time.store(now, std::memory_order_relaxed);
  slot.killed.store(true, std::memory_order_relaxed);
}

FaultEngine::Counters FaultEngine::counters(int rank) const {
  const auto& s = slots_[static_cast<std::size_t>(rank)];
  Counters c;
  c.drops = s.drops.load(std::memory_order_relaxed);
  c.lost = s.lost.load(std::memory_order_relaxed);
  c.duplicates = s.duplicates.load(std::memory_order_relaxed);
  c.stalls = s.stalls.load(std::memory_order_relaxed);
  c.retransmit_delay = s.retransmit_delay.load(std::memory_order_relaxed);
  c.stall_seconds = s.stall_seconds.load(std::memory_order_relaxed);
  c.killed = s.killed.load(std::memory_order_relaxed);
  c.kill_time = s.kill_time.load(std::memory_order_relaxed);
  return c;
}

bool FaultEngine::any_kill_fired() const noexcept {
  for (const auto& s : slots_)
    if (s.killed.load(std::memory_order_relaxed)) return true;
  return false;
}

bool FaultEngine::any_loss() const noexcept {
  for (const auto& s : slots_)
    if (s.lost.load(std::memory_order_relaxed) != 0) return true;
  return false;
}

std::vector<int> FaultEngine::killed_ranks() const {
  std::vector<int> out;
  for (std::size_t r = 0; r < slots_.size(); ++r)
    if (slots_[r].killed.load(std::memory_order_relaxed))
      out.push_back(static_cast<int>(r));
  return out;
}

std::string FaultEngine::summary() const {
  std::uint64_t drops = 0, lost = 0, dups = 0, stalls = 0;
  double delay = 0.0, stall_s = 0.0;
  for (std::size_t r = 0; r < slots_.size(); ++r) {
    const Counters c = counters(static_cast<int>(r));
    drops += c.drops;
    lost += c.lost;
    dups += c.duplicates;
    stalls += c.stalls;
    delay += c.retransmit_delay;
    stall_s += c.stall_seconds;
  }
  const auto kills = killed_ranks();
  std::ostringstream os;
  os << drops << " drops (" << delay << " s retransmit delay), " << lost
     << " lost, " << dups << " duplicates, " << stalls << " stalls ("
     << stall_s << " s)";
  if (!kills.empty()) {
    os << ", killed ranks:";
    for (int r : kills) os << " " << r;
  }
  return os.str();
}

}  // namespace mpisect::mpisim::faults
