// Declarative fault plans for the deterministic fault-injection engine.
//
// A FaultPlan is pure data: a set of rules that say *which* logical events
// go wrong (message drops/duplicates/delays on chosen edges, link
// degradation windows, per-rank stalls, compute slowdowns, a mid-run rank
// kill) plus the transport's resilience policy (retransmit timeout,
// backoff, retry budget, duplicate suppression). The FaultEngine
// (engine.hpp) turns a plan into per-message/per-rank decisions through
// counter-based RNG draws keyed on logical identifiers — never on call
// order — so the same (plan, seed) pair produces byte-identical runs
// across scheduler backends and worker counts.
//
// Plans parse from compact CLI spec strings, semicolon-separated:
//
//   drop:p=0.05                     drop 5% of all messages
//   drop:p=0.2,src=3,dst=4          only on the edge 3 -> 4
//   dup:p=0.01                      duplicate 1% of messages
//   delay:t=1e-4,p=0.5              add 100us wire delay to 50% of messages
//   degrade:factor=4,from=0.1,until=0.2   4x wire cost in a time window
//   stall:rank=2,at=0.1,for=0.05    rank 2 loses 50ms at t=0.1
//   slow:rank=2,factor=2            rank 2 computes 2x slower
//   kill:rank=3,at=0.5              rank 3 dies at the first checkpoint
//                                   past t=0.5
//   retransmit:rto=1e-4,backoff=2,max=8,dedup=1   resilience policy
//   collectives:recover=0           let collective-internal traffic be lost
//
// `src`/`dst`/`rank` are world ranks (-1 = any); `from`/`until` bound the
// virtual-time window a rule applies to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace mpisect::mpisim::faults {

/// Edge + virtual-time-window filter shared by the message-level rules.
struct EdgeFilter {
  int src = -1;  ///< sender world rank; -1 = any
  int dst = -1;  ///< receiver world rank; -1 = any
  double from = 0.0;
  double until = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool matches(int s, int d, double t) const noexcept {
    return (src < 0 || src == s) && (dst < 0 || dst == d) && t >= from &&
           t < until;
  }
};

/// Drop each matching message transmission with probability `p`. The
/// transport retransmits with backoff (see RetransmitPolicy); a message
/// whose retry budget is exhausted is *lost* — never delivered.
struct DropRule {
  EdgeFilter edge;
  double p = 0.0;
};

/// Deliver a second copy of a matching message with probability `p`. The
/// resilient transport suppresses duplicates when the policy says so;
/// with suppression off the copy lands in the unexpected queue where a
/// wildcard receive can consume it.
struct DuplicateRule {
  EdgeFilter edge;
  double p = 0.0;
};

/// Add `seconds` of wire delay to a matching message with probability `p`.
struct DelayRule {
  EdgeFilter edge;
  double p = 1.0;
  double seconds = 0.0;
};

/// Degrade matching links: wire cost multiplied by `cost_factor` and
/// extended by `add_latency` seconds while the window is open.
struct DegradeRule {
  EdgeFilter edge;
  double cost_factor = 1.0;
  double add_latency = 0.0;
};

/// Charge `seconds` of lost progress on `rank` at its first fault
/// checkpoint at or past virtual time `at` (a straggler event).
struct StallRule {
  int rank = -1;  ///< -1 = every rank
  double at = 0.0;
  double seconds = 0.0;
};

/// Multiply `rank`'s compute charges by `factor` inside the window.
struct SlowRule {
  int rank = -1;  ///< -1 = every rank
  double factor = 1.0;
  double from = 0.0;
  double until = std::numeric_limits<double>::infinity();
};

/// Kill `rank` at its first fault checkpoint at or past virtual time `at`.
/// The rank retires without unwinding the world; ranks that depend on it
/// block until the scheduler proves quiescence, which the checker then
/// classifies as an injected fault rather than a native deadlock.
struct KillRule {
  int rank = 0;
  double at = 0.0;
};

/// Resilient-transport policy: how the channel layer survives drops.
struct RetransmitPolicy {
  double rto = 50e-6;       ///< retransmit timeout before the first retry
  double backoff = 2.0;     ///< multiplier applied to rto per retry
  int max_retries = 8;      ///< retry budget; exhausted = message lost
  bool dedup_duplicates = true;  ///< suppress injected duplicate copies
};

struct FaultPlan {
  std::vector<DropRule> drops;
  std::vector<DuplicateRule> duplicates;
  std::vector<DelayRule> delays;
  std::vector<DegradeRule> degrades;
  std::vector<StallRule> stalls;
  std::vector<SlowRule> slows;
  std::vector<KillRule> kills;
  RetransmitPolicy retransmit;
  /// Graceful degradation for collectives: their internal traffic is
  /// retransmitted like any other but never *lost*, so a collective under
  /// a lossy plan recovers (slower) instead of hanging. Disable to test
  /// the diagnosable-failure path.
  bool collectives_recover = true;

  /// True when no rule is present — the engine is not even constructed,
  /// keeping fault-free runs bit-identical to builds without this layer.
  [[nodiscard]] bool empty() const noexcept {
    return drops.empty() && duplicates.empty() && delays.empty() &&
           degrades.empty() && stalls.empty() && slows.empty() &&
           kills.empty();
  }

  /// Parse a semicolon-separated spec string (see file comment). Throws
  /// std::invalid_argument with a pointed message on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Canonical one-line rendering (stable order, round-trips via parse).
  [[nodiscard]] std::string describe() const;
};

}  // namespace mpisect::mpisim::faults
