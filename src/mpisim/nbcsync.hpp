// Split-phase rendezvous for nonblocking collectives.
//
// CollSync's exchange() is deposit-and-block — correct for metadata
// collectives, useless for Iallreduce/Ibarrier where the whole point is
// that the posting rank keeps computing. NbcSync splits the round in two:
//
//   post(gen, rank, t_post, value)   deposit and return immediately
//   fence(gen, rank)                 block until every member has posted,
//                                    then read the round
//
// Rounds are keyed by a per-(comm,rank) generation number exactly like
// CollSync: all members must issue the same sequence of nonblocking
// collectives on a communicator, which is what MPI requires of collective
// ordering anyway. A round is garbage-collected when the last member's
// fence departs. ready() lets Request::test() poll arrival without
// blocking. World::abort() wakes fenced ranks via the WaitPoint.
#pragma once

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "mpisim/error.hpp"
#include "mpisim/scheduler.hpp"

namespace mpisect::mpisim {

template <typename T>
class NbcSync {
 public:
  NbcSync(int nranks, Executor& exec, const std::atomic<bool>* abort_flag)
      : nranks_(nranks), abort_(abort_flag), wp_(exec, mu_) {}

  struct Round {
    std::vector<T> values;
    std::vector<double> t_post;
    int arrived = 0;
    int departed = 0;
    [[nodiscard]] double max_post() const {
      // -infinity seed for the same reason as CollSync::Round::max_entry.
      double m = -std::numeric_limits<double>::infinity();
      for (double t : t_post) m = std::max(m, t);
      return t_post.empty() ? 0.0 : m;
    }
  };

  /// Deposit this rank's contribution to round `generation` and return
  /// without blocking (the nonblocking-collective post).
  void post(std::uint64_t generation, int rank, double t_post, T value) {
    const std::lock_guard lock(mu_);
    Round& round = round_for(generation);
    round.values[static_cast<std::size_t>(rank)] = std::move(value);
    round.t_post[static_cast<std::size_t>(rank)] = t_post;
    ++round.arrived;
    wp_.notify_all();
  }

  /// True once every member has posted round `generation` (the fence would
  /// not block). Safe to poll from Request::test().
  [[nodiscard]] bool ready(std::uint64_t generation) {
    const std::lock_guard lock(mu_);
    const auto it = rounds_.find(generation);
    return it != rounds_.end() && it->second.arrived >= nranks_;
  }

  /// Park the caller until round `generation` sees another post (returns
  /// immediately once the round is ready). Single wait, predicate under the
  /// lock — the test-loop twin of Channel::park_recv_incomplete.
  void park_not_ready(std::uint64_t generation) {
    std::unique_lock lock(mu_);
    const auto it = rounds_.find(generation);
    if (it != rounds_.end() && it->second.arrived >= nranks_) return;
    check_abort();
    wp_.wait(lock);
    check_abort();
  }

  /// Block until every member has posted round `generation`, then return
  /// the member contributions (indexed by comm rank) and max post time.
  /// Each member must fence exactly once per round it posted.
  std::pair<std::vector<T>, double> fence(std::uint64_t generation) {
    std::unique_lock lock(mu_);
    Round& round = round_for(generation);
    while (round.arrived < nranks_) {
      check_abort();
      wp_.wait(lock);
    }
    auto result = std::make_pair(round.values, round.max_post());
    if (++round.departed == nranks_) rounds_.erase(generation);
    return result;
  }

 private:
  Round& round_for(std::uint64_t generation) {
    Round& round = rounds_[generation];
    if (round.values.empty()) {
      round.values.resize(static_cast<std::size_t>(nranks_));
      round.t_post.assign(static_cast<std::size_t>(nranks_), 0.0);
    }
    return round;
  }

  void check_abort() const {
    if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
      throw MpiError(Err::Aborted,
                     "world aborted in nonblocking collective");
    }
  }

  int nranks_;
  const std::atomic<bool>* abort_;
  std::mutex mu_;
  WaitPoint wp_;
  std::map<std::uint64_t, Round> rounds_;
};

}  // namespace mpisect::mpisim
