// Unified tool registration — one stack instead of four hand-rolled chains.
//
// Before this API, every PMPI-style tool (profiler, checker, trace
// recorder, telemetry sampler) saved the World's HookTable/TraceTap,
// installed its own closures, and manually forwarded to the previous
// occupant — four slightly different copies of the same chaining
// boilerplate, each with its own ordering quirks. The ToolStack replaces
// that: a tool derives from hooks::Tool, overrides only the events it
// cares about, and registers with
//
//   world.tool_stack().attach(&tool, order);
//
// The stack installs one dispatching closure per HookTable/TraceTap slot
// (capturing whatever raw hooks an application had installed beforehand as
// the innermost "base" layer, so plain-hook users keep working) and calls
// tools in `order`: ascending for begin-type events, descending for
// end-type events, so tool A that attaches before tool B brackets B's
// observations like PMPI wrapper libraries stack. Tools never charge
// virtual time; order therefore affects only observation nesting, never
// simulation results.
//
// Detach is symmetric (`detach(&tool)`); the stack never owns a tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpisim/hooks.hpp"

namespace mpisect::mpisim {

class World;

namespace hooks {

/// Conventional attach orders for the in-tree tools (ascending = outermost
/// first on begin events). Gaps are deliberate: user tools can slot between.
inline constexpr int kOrderProfiler = 10;
inline constexpr int kOrderChecker = 20;
inline constexpr int kOrderRecorder = 30;
inline constexpr int kOrderTelemetry = 40;
inline constexpr int kOrderFaults = 50;

/// Base class for stack-registered tools. Every method is an empty-bodied
/// virtual observing one HookTable or TraceTap event; override what you
/// need. Methods run on rank threads and must not charge virtual time.
class Tool {
 public:
  virtual ~Tool() = default;

  // HookTable events (PMPI view).
  virtual void on_call_begin(Ctx&, const CallInfo&) {}
  virtual void on_call_end(Ctx&, const CallInfo&) {}
  virtual void on_section_enter(Ctx&, Comm&, const char* /*label*/,
                                char* /*data*/) {}
  virtual void on_section_leave(Ctx&, Comm&, const char* /*label*/,
                                char* /*data*/) {}
  virtual void on_section_error(Ctx&, Comm&, const char* /*label*/,
                                int /*code*/) {}
  virtual void on_pcontrol(Ctx&, int /*level*/, const char* /*label*/) {}
  virtual void on_comm_create(Ctx&, const CommLifecycle&) {}
  virtual void on_comm_free(Ctx&, int /*context*/) {}

  // TraceTap events (message-level view).
  virtual void on_send_post(Ctx&, const TapSend&) {}
  virtual void on_send_wait(Ctx&, const TapSendWait&) {}
  virtual void on_recv_post(Ctx&, const TapRecvPost&) {}
  virtual void on_recv_wait(Ctx&, const TapRecvWait&) {}
  virtual void on_probe(Ctx&, const TapProbe&) {}
  virtual void on_request_test(Ctx&, const TapRequestTest&) {}
  virtual void on_nbc_post(Ctx&, const TapNbcPost&) {}
  virtual void on_nbc_complete(Ctx&, const TapNbcComplete&) {}
  virtual void on_comm_sync(Ctx&, const TapCommSync&) {}
  virtual void on_coll_entry(Ctx&, std::uint64_t /*op*/, double /*t_before*/) {}
  virtual void on_omp_region(Ctx&, const TapOmpRegion&) {}
  virtual void on_fault(Ctx&, const TapFault&) {}
};

class ToolStack {
 public:
  /// Captures the World's current raw HookTable/TraceTap as the innermost
  /// base layer and installs the dispatching closures. Obtain through
  /// World::tool_stack() — one stack per world.
  explicit ToolStack(World& world);
  ~ToolStack();

  ToolStack(const ToolStack&) = delete;
  ToolStack& operator=(const ToolStack&) = delete;

  /// Register `tool` at `order` (see kOrder* above). Ties dispatch in
  /// attach order. The stack borrows the pointer; detach before the tool
  /// dies. Attach/detach before World::run, not from rank threads.
  void attach(Tool* tool, int order);
  /// Remove a previously attached tool (no-op if absent).
  void detach(Tool* tool);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    Tool* tool = nullptr;
    int order = 0;
    std::uint64_t stamp = 0;  ///< attach sequence, the tie-breaker
  };

  void install();

  World& world_;
  HookTable base_hooks_;
  TraceTap base_taps_;
  std::vector<Entry> entries_;  ///< kept sorted by (order, stamp)
  std::uint64_t next_stamp_ = 0;
};

}  // namespace hooks
}  // namespace mpisect::mpisim
