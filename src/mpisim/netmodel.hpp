// Network performance model (LogGP-flavoured) with deterministic jitter.
//
// A transfer between two ranks costs
//     latency + bytes / bandwidth
// with link parameters chosen by locality (same node vs. different nodes)
// and an optional multiplicative lognormal jitter drawn from a counter-based
// RNG keyed on (edge, sequence-number). Sender/receiver CPU overheads (the
// "o" of LogP) are charged on the local clocks.
//
// The jitter keying is the load-bearing design decision: because the draw
// depends only on logical identifiers, a run's virtual timeline is fully
// reproducible, yet over a 1000-step halo-exchange loop the skew performs a
// random walk that propagates through message dependencies — the
// "accumulation of variability" the paper observes on its Nehalem cluster.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"

namespace mpisect::mpisim {

/// Jitter applied multiplicatively to transfer costs and additively to
/// latency. All draws are deterministic given (seed, edge, seq).
struct JitterModel {
  enum class Kind { None, Gaussian, Lognormal };
  Kind kind = Kind::None;
  /// Relative sigma of the multiplicative term (e.g. 0.15 = 15%).
  double rel_sigma = 0.0;
  /// Absolute sigma (seconds) of an additive latency term; models OS noise
  /// spikes independent of message size.
  double add_sigma = 0.0;
  /// Probability of a "noise spike" (heavy tail); each spike adds an
  /// exponential extra delay with mean spike_mean seconds.
  double spike_prob = 0.0;
  double spike_mean = 0.0;
};

/// One link class: base latency plus streaming bandwidth.
struct LinkParams {
  double latency = 1e-6;       ///< seconds
  double bandwidth = 1e9;      ///< bytes/second
  [[nodiscard]] double cost(std::size_t bytes) const noexcept {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

class NetworkModel {
 public:
  LinkParams intra_node;        ///< shared-memory transport
  LinkParams inter_node;        ///< fabric transport
  double send_overhead = 3e-7;  ///< CPU seconds charged on the sender
  double recv_overhead = 3e-7;  ///< CPU seconds charged on the receiver
  std::size_t eager_threshold = 16 * 1024;  ///< rendezvous above this
  int cores_per_node = 1;       ///< block rank placement: node = rank / cpn
  /// Topology-aware nonblocking-collective cost: when set, nbc_cost()
  /// models a two-level tree (combine within each node over the intra-node
  /// link, then disseminate across nodes over the fabric) instead of a
  /// flat ceil(log2 p) fabric tree. Off by default so every artifact —
  /// trace headers included — stays bit-identical to earlier versions; at
  /// 65,536 ranks the flat formula overcharges badly because log2 p rounds
  /// of fabric latency ignore that most pairs share a node.
  bool hierarchical_nbc = false;
  JitterModel jitter;

  /// Deterministic RNG seed for all draws from this model.
  std::uint64_t seed = 0x5EC710975EEDULL;

  [[nodiscard]] int node_of(int world_rank) const noexcept {
    return world_rank / (cores_per_node > 0 ? cores_per_node : 1);
  }
  [[nodiscard]] bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// End-to-end wire cost of one message (no CPU overheads, which the
  /// caller charges locally). `seq` is the per-edge message sequence number
  /// used to key the jitter draw.
  [[nodiscard]] double transfer_cost(int src, int dst, std::size_t bytes,
                                     std::uint64_t seq) const noexcept;

  /// Jittered CPU overhead for one send/recv call. `kind_salt`
  /// disambiguates the draw stream (0 = send, 1 = recv).
  [[nodiscard]] double cpu_overhead(int rank, double base, std::uint64_t seq,
                                    std::uint64_t kind_salt) const noexcept;

  /// Modeled background-algorithm cost of a nonblocking collective over p
  /// ranks. Flat (default): ceil(log2 p) rounds of one inter-node link
  /// cost — exactly the historical nbc_algo_cost charge. Hierarchical
  /// (hierarchical_nbc): ceil(log2 min(p, cores_per_node)) intra-node
  /// rounds to combine within each node plus ceil(log2 ceil(p/cpn))
  /// inter-node rounds to disseminate across nodes; collapses to a pure
  /// intra-node tree when all ranks share one node. The single shared
  /// formula for the live simulator, the replayer and the interpolator —
  /// they must never drift.
  [[nodiscard]] double nbc_cost(int p, std::uint64_t bytes) const noexcept;

 private:
  [[nodiscard]] double jitter_factor(std::uint64_t stream,
                                     std::uint64_t seq) const noexcept;
  [[nodiscard]] double jitter_additive(std::uint64_t stream,
                                       std::uint64_t seq) const noexcept;
};

}  // namespace mpisect::mpisim
