// The asynchronous-progress engine's time model.
//
// Real MPI implementations differ in *when* a pending transfer advances:
// some only progress the rendezvous protocol when the application is inside
// a blocking MPI call, some poll the network on every MPI entry, and some
// dedicate a core (or hardware thread) to a progress thread that completes
// transfers asynchronously — the design space "MPI Progress For All"
// surveys. MiniMPI models the three classic points of that space:
//
//   blocking-only    today's semantics: transfers complete when the parties
//                    reach their completion calls; the default, bit-compatible
//                    with every trace and telemetry artifact recorded before
//                    this model existed.
//   opportunistic    the library polls on every MPI entry: each send/recv/
//                    collective entry pays an extra `entry_overhead`, folded
//                    into the NetworkModel's per-message CPU overheads so the
//                    charge sites (and recorded machine headers) stay
//                    unchanged.
//   progress-thread  a dedicated progress thread completes rendezvous
//                    transfers `thread_latency` after the wire is done,
//                    independent of what the peer is executing, and steals
//                    `core_tax` of every compute charge (the core it owns).
//
// The model is deterministic by construction: all three presets change only
// *charged virtual time*, never matching order, so results remain a pure
// function of (program, machine, seed, progress model).
#pragma once

#include <cstdint>
#include <string>

namespace mpisect::mpisim {

enum class ProgressMode {
  BlockingOnly,    ///< progress only inside blocking completion calls
  Opportunistic,   ///< poll at every MPI entry (per-entry overhead)
  ProgressThread,  ///< async completion thread (latency + core tax)
};

[[nodiscard]] const char* progress_mode_name(ProgressMode m) noexcept;

/// One world's progress model: a preset plus its tunable charges.
struct ProgressModel {
  ProgressMode mode = ProgressMode::BlockingOnly;
  /// Opportunistic: extra CPU seconds folded into the network model's
  /// send/recv overheads (the poll executed on every MPI entry).
  double entry_overhead = 5e-8;
  /// Progress-thread: seconds between wire completion and the progress
  /// thread publishing a rendezvous delivery to the application.
  double thread_latency = 2e-6;
  /// Progress-thread: fraction of every compute charge lost to the core
  /// (or hardware thread) the progress thread occupies.
  double core_tax = 0.05;

  bool operator==(const ProgressModel&) const = default;

  /// Rendezvous delivery surcharge this model adds in the channel.
  [[nodiscard]] double rendezvous_extra() const noexcept {
    return mode == ProgressMode::ProgressThread ? thread_latency : 0.0;
  }
  /// Multiplier applied to compute charges (1 + core_tax under a
  /// progress thread, 1 otherwise).
  [[nodiscard]] double compute_factor() const noexcept {
    return mode == ProgressMode::ProgressThread ? 1.0 + core_tax : 1.0;
  }
  /// Completion time of a nonblocking collective at its wait fence, given
  /// the waiter's entry time, the last member's post time, and the modeled
  /// background-algorithm cost. Shared by the live simulator and the trace
  /// replayer so the two can never drift.
  [[nodiscard]] double nbc_complete_time(double t_wait_entry, double max_post,
                                         double algo_cost) const noexcept;

  [[nodiscard]] const char* name() const noexcept {
    return progress_mode_name(mode);
  }
  /// Canonical spec string: round-trips through parse().
  [[nodiscard]] std::string spec() const;

  /// Parse a spec: "blocking-only" | "opportunistic[:entry=S]" |
  /// "progress-thread[:tax=F][,lat=S]" (options comma-separated, any
  /// order). Throws MpiError(Err::Arg) on an unknown preset or option.
  [[nodiscard]] static ProgressModel parse(const std::string& spec);

  /// "blocking-only|opportunistic|progress-thread" — shared help text.
  [[nodiscard]] static std::string choices();
};

/// Modeled cost of the background algorithm behind a nonblocking
/// collective: ceil(log2 p) rounds of one link latency plus the
/// contribution's streaming time. Jitter-free — the jittered CPU overhead
/// is charged separately at the post.
[[nodiscard]] double nbc_algo_cost(double latency, double bandwidth, int p,
                                   std::uint64_t bytes) noexcept;

}  // namespace mpisect::mpisim
