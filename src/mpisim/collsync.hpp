// Generation-counted all-to-all rendezvous for metadata collectives.
//
// Comm split/dup (and the sections layer's optional validation pass) need
// to exchange small values among all members of a communicator outside the
// modelled data path. CollSync provides that: every member deposits a value
// and blocks until the round is complete, then reads the full vector. The
// round also computes max(entry virtual times), which callers use to model
// the synchronizing cost.
//
// Rounds are identified by a per-caller generation number that each rank
// tracks in its own communicator state, so back-to-back rounds on the same
// communicator cannot be confused even though ranks proceed asynchronously.
// Waiting ranks park on a WaitPoint until the last arrival notifies them;
// World::abort() wakes them so a failed rank cannot strand the round.
#pragma once

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "mpisim/error.hpp"
#include "mpisim/scheduler.hpp"

namespace mpisect::mpisim {

template <typename T>
class CollSync {
 public:
  CollSync(int nranks, Executor& exec, const std::atomic<bool>* abort_flag)
      : nranks_(nranks), abort_(abort_flag), wp_(exec, mu_) {}

  struct Round {
    std::vector<T> values;
    std::vector<double> t_entry;
    int arrived = 0;
    int departed = 0;
    [[nodiscard]] double max_entry() const {
      // Seed with -infinity, not 0.0: replay what-ifs can rescale the time
      // base into negative territory and a 0.0 seed would silently clamp.
      double m = -std::numeric_limits<double>::infinity();
      for (double t : t_entry) m = std::max(m, t);
      return t_entry.empty() ? 0.0 : m;
    }
  };

  /// Deposit `value` for round `generation` and block until all nranks have
  /// arrived. Returns the completed round's values and max entry time.
  std::pair<std::vector<T>, double> exchange(std::uint64_t generation,
                                             int rank, double t_entry,
                                             T value) {
    std::unique_lock lock(mu_);
    Round& round = rounds_[generation];
    if (round.values.empty()) {
      round.values.resize(static_cast<std::size_t>(nranks_));
      round.t_entry.assign(static_cast<std::size_t>(nranks_), 0.0);
    }
    round.values[static_cast<std::size_t>(rank)] = std::move(value);
    round.t_entry[static_cast<std::size_t>(rank)] = t_entry;
    ++round.arrived;
    wp_.notify_all();
    while (round.arrived < nranks_) {
      if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
        throw MpiError(Err::Aborted, "world aborted in collective rendezvous");
      }
      wp_.wait(lock);
    }
    auto result = std::make_pair(round.values, round.max_entry());
    if (++round.departed == nranks_) rounds_.erase(generation);
    return result;
  }

 private:
  int nranks_;
  const std::atomic<bool>* abort_;
  std::mutex mu_;
  WaitPoint wp_;
  std::map<std::uint64_t, Round> rounds_;
};

}  // namespace mpisect::mpisim
