#include "mpisim/hooks.hpp"

namespace mpisect::mpisim {

const char* mpi_call_name(MpiCall c) noexcept {
  switch (c) {
    case MpiCall::Send: return "MPI_Send";
    case MpiCall::Recv: return "MPI_Recv";
    case MpiCall::Isend: return "MPI_Isend";
    case MpiCall::Irecv: return "MPI_Irecv";
    case MpiCall::Wait: return "MPI_Wait";
    case MpiCall::Sendrecv: return "MPI_Sendrecv";
    case MpiCall::Probe: return "MPI_Probe";
    case MpiCall::Barrier: return "MPI_Barrier";
    case MpiCall::Bcast: return "MPI_Bcast";
    case MpiCall::Reduce: return "MPI_Reduce";
    case MpiCall::Allreduce: return "MPI_Allreduce";
    case MpiCall::Scatter: return "MPI_Scatter";
    case MpiCall::Scatterv: return "MPI_Scatterv";
    case MpiCall::Gather: return "MPI_Gather";
    case MpiCall::Gatherv: return "MPI_Gatherv";
    case MpiCall::Allgather: return "MPI_Allgather";
    case MpiCall::Alltoall: return "MPI_Alltoall";
    case MpiCall::CommSplit: return "MPI_Comm_split";
    case MpiCall::CommDup: return "MPI_Comm_dup";
    case MpiCall::CommFree: return "MPI_Comm_free";
    case MpiCall::Init: return "MPI_Init";
    case MpiCall::Finalize: return "MPI_Finalize";
    case MpiCall::Pcontrol: return "MPI_Pcontrol";
    case MpiCall::Test: return "MPI_Test";
    case MpiCall::Iallreduce: return "MPI_Iallreduce";
    case MpiCall::Ibarrier: return "MPI_Ibarrier";
  }
  return "MPI_(unknown)";
}

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::Drop: return "drop";
    case FaultKind::Loss: return "loss";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Stall: return "stall";
    case FaultKind::Kill: return "kill";
  }
  return "(unknown)";
}

bool is_collective(MpiCall c) noexcept {
  switch (c) {
    case MpiCall::Barrier:
    case MpiCall::Bcast:
    case MpiCall::Reduce:
    case MpiCall::Allreduce:
    case MpiCall::Scatter:
    case MpiCall::Scatterv:
    case MpiCall::Gather:
    case MpiCall::Gatherv:
    case MpiCall::Allgather:
    case MpiCall::Alltoall:
    case MpiCall::CommSplit:
    case MpiCall::CommDup:
    case MpiCall::CommFree:  // collective per the MPI standard
    case MpiCall::Iallreduce:
    case MpiCall::Ibarrier:
      return true;
    default:
      return false;
  }
}

bool is_point_to_point(MpiCall c) noexcept {
  switch (c) {
    case MpiCall::Send:
    case MpiCall::Recv:
    case MpiCall::Isend:
    case MpiCall::Irecv:
    case MpiCall::Sendrecv:
    case MpiCall::Probe:
      return true;
    default:
      return false;
  }
}

bool is_blocking(MpiCall c) noexcept {
  switch (c) {
    case MpiCall::Send:      // rendezvous sends block on delivery
    case MpiCall::Recv:
    case MpiCall::Wait:
    case MpiCall::Sendrecv:
    case MpiCall::Probe:
      return true;
    case MpiCall::CommFree:   // local in MiniMPI despite being collective
    case MpiCall::Test:       // completion poll, returns immediately
    case MpiCall::Iallreduce: // nonblocking: the Wait fence blocks, not post
    case MpiCall::Ibarrier:
      return false;
    default:
      return is_collective(c);
  }
}

}  // namespace mpisect::mpisim
