// Groups, communicators and the per-rank Comm handle.
//
// A CommImpl is the shared state of one communicator: the member group, a
// matching Channel per member, per-rank sequence counters and the metadata
// rendezvous used by split/dup. A Comm is the cheap per-rank *handle*
// through which application code performs every MPI operation; it carries
// the caller's Ctx so operations can charge the right virtual clock.
//
// Collectives are implemented over the runtime's own point-to-point layer
// (binomial broadcast/reduce, dissemination barrier, linear rooted
// scatter/gather, ring allgather, pairwise alltoall) on a reserved tag
// range, exactly like a real MPI library — so their virtual-time costs
// emerge from message mechanics instead of being special-cased, and tools
// hooked on the public entry points never see the internal traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "mpisim/channel.hpp"
#include "mpisim/collsync.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/hooks.hpp"
#include "mpisim/message.hpp"
#include "mpisim/nbcsync.hpp"
#include "mpisim/op.hpp"

namespace mpisect::mpisim {

class World;
class Ctx;
class CommImpl;

/// An ordered set of world ranks; index in the vector = rank in the group.
class Group {
 public:
  Group() = default;
  explicit Group(std::vector<int> world_ranks);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(world_ranks_.size());
  }
  [[nodiscard]] int world_rank(int group_rank) const;
  /// Rank of a world rank in this group, or -1 if not a member.
  [[nodiscard]] int rank_of_world(int world_rank) const noexcept;
  [[nodiscard]] const std::vector<int>& world_ranks() const noexcept {
    return world_ranks_;
  }

 private:
  std::vector<int> world_ranks_;
};

/// Per-rank handle to a communicator. Cheap to copy; not thread-portable
/// (it is bound to the owning rank's Ctx).
class Comm {
 public:
  Comm() = default;

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;
  [[nodiscard]] int context_id() const noexcept;
  [[nodiscard]] int world_rank_of(int comm_rank) const;
  [[nodiscard]] Ctx& ctx() const noexcept { return *ctx_; }

  /// Caller's virtual time (MPI_Wtime).
  [[nodiscard]] double wtime() const noexcept;

  // --- point-to-point ------------------------------------------------------
  /// Blocking standard-mode send. buf may be nullptr for a modelled-only
  /// message of `bytes` (charge/execute decoupling).
  void send(const void* buf, std::size_t bytes, int dst, int tag);
  /// Blocking receive. buf may be nullptr to model without storing.
  Status recv(void* buf, std::size_t max_bytes, int src, int tag);
  /// Combined send+receive without deadlock (internally isend + recv).
  Status sendrecv(const void* sendbuf, std::size_t send_bytes, int dst,
                  int send_tag, void* recvbuf, std::size_t recv_bytes,
                  int src, int recv_tag);
  /// Blocking probe for a matching envelope (does not consume it).
  Status probe(int src, int tag);

  class Request;
  Request isend(const void* buf, std::size_t bytes, int dst, int tag);
  Request irecv(void* buf, std::size_t max_bytes, int src, int tag);

  // --- nonblocking collectives ----------------------------------------------
  /// Post a nonblocking allreduce: deposits this rank's contribution and
  /// returns immediately; the reduction completes (and `recvbuf` is filled)
  /// at the returned request's wait() fence. All members must post the same
  /// sequence of nonblocking collectives on a communicator. Buffers may be
  /// nullptr for a modelled-only reduction.
  Request iallreduce(const void* sendbuf, void* recvbuf, int count,
                     Datatype type, ReduceOp op);
  /// Post a nonblocking barrier; wait() blocks until every member posted.
  Request ibarrier();

  // --- typed convenience ----------------------------------------------------
  template <typename T>
  void send(std::span<const T> data, int dst, int tag) {
    send(data.data(), data.size_bytes(), dst, tag);
  }
  template <typename T>
  Status recv(std::span<T> data, int src, int tag) {
    return recv(data.data(), data.size_bytes(), src, tag);
  }

  // --- collectives ----------------------------------------------------------
  void barrier();
  void bcast(void* buf, std::size_t bytes, int root);
  /// Rooted reduction; `recvbuf` is significant only at root. Buffers may be
  /// nullptr for a modelled-only reduction (no data combined).
  void reduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
              ReduceOp op, int root);
  void allreduce(const void* sendbuf, void* recvbuf, int count, Datatype type,
                 ReduceOp op);
  /// Equal-chunk scatter: root sends bytes_per_rank to every rank.
  void scatter(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf,
               int root);
  /// Variable scatter with per-rank byte counts and displacements (at root).
  void scatterv(const void* sendbuf, std::span<const std::size_t> counts,
                std::span<const std::size_t> displs, void* recvbuf,
                std::size_t recv_bytes, int root);
  void gather(const void* sendbuf, std::size_t bytes_per_rank, void* recvbuf,
              int root);
  void gatherv(const void* sendbuf, std::size_t send_bytes, void* recvbuf,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> displs, int root);
  void allgather(const void* sendbuf, std::size_t bytes_per_rank,
                 void* recvbuf);
  void alltoall(const void* sendbuf, std::size_t bytes_per_rank,
                void* recvbuf);

  template <typename T>
  T allreduce_one(T value, ReduceOp op) {
    T out{};
    allreduce(&value, &out, 1, datatype_of<T>, op);
    return out;
  }

  // --- communicator management ----------------------------------------------
  /// Collective: partition members by color, order by (key, rank).
  /// color < 0 means "not a member of any new communicator" (returns an
  /// invalid Comm for that caller).
  Comm split(int color, int key);
  Comm dup();
  /// MPI_Comm_free: release this rank's handle (sets it invalid). Local in
  /// MiniMPI — the shared state dies with the last handle — but fires the
  /// CommFree hook so resource-tracking tools see the lifecycle event.
  /// Freeing the world communicator is an error.
  void free();

  /// Metadata rendezvous: exchange one uint64 with every member, returning
  /// (values, max entry virtual time). Used by the sections layer's
  /// optional validation; synchronizes in real time, charges nothing.
  std::pair<std::vector<std::uint64_t>, double> collsync_u64(
      std::uint64_t value);

  // Internals used by the runtime ---------------------------------------------
  Comm(Ctx* ctx, std::shared_ptr<CommImpl> impl, int rank) noexcept
      : ctx_(ctx), impl_(std::move(impl)), rank_(rank) {}
  [[nodiscard]] CommImpl& impl() const noexcept { return *impl_; }

 private:
  // Hook-free internals used by collective algorithms.
  void send_internal(const void* buf, std::size_t bytes, int dst, int tag);
  Status recv_internal(void* buf, std::size_t max_bytes, int src, int tag);
  void sendrecv_internal(const void* sendbuf, std::size_t send_bytes, int dst,
                         void* recvbuf, std::size_t recv_bytes, int src,
                         int tag);
  /// Next reserved tag for one collective invocation on this comm.
  int next_internal_tag();
  /// Charge a jittered CPU overhead for entering a collective.
  void charge_collective_entry();
  /// Shared post path for iallreduce/ibarrier: fire the call hooks, charge
  /// the entry overhead, deposit into the NbcSync round, return the request.
  Request nbc_post(MpiCall call, const void* sendbuf, void* recvbuf,
                   int count, Datatype type, ReduceOp op, std::size_t bytes);

  void bcast_binomial(void* buf, std::size_t bytes, int root, int tag);
  void reduce_binomial(const void* sendbuf, void* recvbuf, int count,
                       Datatype type, ReduceOp op, int root, int tag);
  void scatter_linear(const void* sendbuf, std::size_t bytes_per_rank,
                      void* recvbuf, int root, int tag);
  void scatter_binomial(const void* sendbuf, std::size_t bytes_per_rank,
                        void* recvbuf, int root, int tag);
  void gather_linear(const void* sendbuf, std::size_t bytes_per_rank,
                     void* recvbuf, int root, int tag);
  void gather_binomial(const void* sendbuf, std::size_t bytes_per_rank,
                       void* recvbuf, int root, int tag);

  Ctx* ctx_ = nullptr;
  std::shared_ptr<CommImpl> impl_;
  int rank_ = -1;
};

/// Nonblocking-operation handle (shared state, copyable).
class Comm::Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const noexcept { return s_ != nullptr; }
  /// Complete the operation; syncs the caller's clock. Idempotent.
  Status wait();
  /// True if the operation has already completed (does not sync the clock).
  [[nodiscard]] bool test();

 private:
  friend class Comm;
  friend void waitall(std::span<Comm::Request>);
  enum class Kind { Send, Recv, Coll };
  /// Extra state for a nonblocking-collective request (Kind::Coll).
  struct NbcState {
    MpiCall call = MpiCall::Ibarrier;
    std::uint64_t gen = 0;       ///< NbcSync round on the communicator
    std::size_t bytes = 0;       ///< per-rank contribution size
    int count = 0;
    Datatype type{};
    ReduceOp op{};
    void* recvbuf = nullptr;     ///< filled at the wait fence (iallreduce)
  };
  struct State {
    Kind kind = Kind::Send;
    MessagePtr msg;
    PostedRecvPtr recv;
    Channel* channel = nullptr;  ///< null for Kind::Coll
    std::shared_ptr<CommImpl> impl;  ///< keeps group mapping alive for wait
    Ctx* ctx = nullptr;
    int peer = -1;
    int comm_context = -1;
    int comm_rank = -1;
    int comm_size = 1;
    std::uint64_t id = 0;  ///< rank-local request id (CallInfo::request)
    bool done = false;
    /// Consecutive failed test() polls; after the spin budget the next
    /// poll parks on the completion event instead of yielding.
    int test_spins = 0;
    std::unique_ptr<NbcState> nbc;
    Status status;
  };
  explicit Request(std::shared_ptr<State> s) noexcept : s_(std::move(s)) {}
  std::shared_ptr<State> s_;
};

/// Complete all requests. Under the blocking-only progress model this waits
/// strictly in index order (the historical, bit-compatible semantics). The
/// progress engines complete receives first, then sends and collective
/// fences — so a rendezvous send parked at a low index can never delay
/// dating a receive that already completed earlier in virtual time, and the
/// final times are independent of where each request sits in the array.
void waitall(std::span<Comm::Request> requests);

/// Shared communicator state. Owned via shared_ptr by every member's handle.
class CommImpl {
 public:
  CommImpl(World& world, Group group, int context_id);
  ~CommImpl();

  [[nodiscard]] int size() const noexcept { return group_.size(); }
  [[nodiscard]] int context_id() const noexcept { return context_id_; }
  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] World& world() noexcept { return world_; }
  /// The matching channel of comm_rank, created on first touch (lazily:
  /// a 65k-rank communicator materializes channels only for ranks that
  /// actually see traffic). Thread-safe — senders touch destination
  /// channels from other ranks' threads.
  [[nodiscard]] Channel& channel(int comm_rank);

  /// Sparse per-destination send-sequence counters. A rank talks to O(log p)
  /// partners (halo neighbours, binomial-tree edges), so the dense
  /// p-entry vector per rank — p² counters per communicator — was the first
  /// structure to die at 65k ranks. A linear probe over the touched
  /// destinations beats a hash map at the observed degree.
  class SendSeq {
   public:
    [[nodiscard]] std::uint64_t& operator[](int dst) {
      for (auto& e : entries_) {
        if (e.dst == dst) return e.count;
      }
      entries_.push_back({dst, 0});
      return entries_.back().count;
    }
    /// Destinations this rank has ever sent to (diagnostics).
    [[nodiscard]] std::size_t destinations() const noexcept {
      return entries_.size();
    }

   private:
    struct Entry {
      int dst = 0;
      std::uint64_t count = 0;
    };
    std::vector<Entry> entries_;
  };

  /// Per-rank mutable state; each slot is touched only by its owner thread.
  struct RankState {
    SendSeq send_seq;           ///< per-destination counters (sparse)
    std::uint64_t coll_seq = 0; ///< collective ordinal
    std::uint64_t sync_gen = 0; ///< CollSync generation
    std::uint64_t nbc_gen = 0;  ///< nonblocking-collective ordinal
  };
  [[nodiscard]] RankState& rank_state(int comm_rank);

  struct SplitItem {
    int color = 0;
    int key = 0;
  };
  CollSync<SplitItem>& split_sync() noexcept { return split_sync_; }
  using CommMap = std::shared_ptr<std::vector<std::shared_ptr<CommImpl>>>;
  CollSync<CommMap>& publish_sync() noexcept { return publish_sync_; }
  CollSync<std::uint64_t>& u64_sync() noexcept { return u64_sync_; }
  /// Split-phase rendezvous backing Iallreduce/Ibarrier; the payload is the
  /// posting rank's raw contribution bytes (empty for barrier/modelled).
  NbcSync<std::vector<std::byte>>& nbc_sync() noexcept { return nbc_sync_; }

 private:
  World& world_;
  Group group_;
  int context_id_;
  /// Lazily-created channels, one slot per member. Acquire-load on the hot
  /// path; creation double-checks under chan_mu_.
  std::unique_ptr<std::atomic<Channel*>[]> channels_;
  std::mutex chan_mu_;
  std::vector<RankState> rank_states_;
  CollSync<SplitItem> split_sync_;
  CollSync<CommMap> publish_sync_;
  CollSync<std::uint64_t> u64_sync_;
  NbcSync<std::vector<std::byte>> nbc_sync_;
};

}  // namespace mpisect::mpisim
