// Message and posted-receive records for the matching engine.
//
// A Message may carry a real payload (Full-fidelity apps) or only a modelled
// byte count (bench sweeps) — the charge/execute decoupling described in
// DESIGN.md. Virtual-time fields record when the send started, when an eager
// message becomes available at the receiver, and (once matched) when the
// transfer completes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mpisect::mpisim {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// User tags must be in [0, kTagUb); higher values are reserved for the
/// runtime's internal collective algorithms.
inline constexpr int kTagUb = 1 << 20;
inline constexpr int kInternalTagBase = kTagUb;

/// Completion record returned by receive operations.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;     ///< size of the message that matched
  double t_complete = 0.0;   ///< virtual completion time
  /// Wire sequence number of the matched message on its (comm,src,dst)
  /// edge — the jitter-draw key trace tools need to re-cost the transfer.
  std::uint64_t seq = 0;
};

struct Message {
  int src = 0;               ///< rank in the communicator
  int tag = 0;
  std::uint64_t seq = 0;     ///< per-(src,dst) sequence in this comm
  std::size_t bytes = 0;     ///< modelled size
  std::vector<std::byte> payload;  ///< empty when modelled-only

  double t_send_start = 0.0; ///< sender clock when the wire transfer begins
  double wire_cost = 0.0;    ///< latency + bytes/bw (+ jitter), precomputed
  double t_avail = 0.0;      ///< eager: arrival time at the receiver
  bool rendezvous = false;

  // Injected-fault transport flags (set by the fault engine, consumed by
  // the channel): a lost message is black-holed at deposit; a duplicate
  // copy is suppressed when the retransmit policy dedups.
  bool fault_lost = false;
  bool fault_duplicate = false;

  // Set at match time:
  bool delivered = false;
  double t_deliver = 0.0;
};

struct PostedRecv {
  int src = kAnySource;      ///< requested source (or kAnySource)
  int tag = kAnyTag;         ///< requested tag (or kAnyTag)
  double t_post = 0.0;       ///< receiver clock when the receive was posted
  void* buf = nullptr;       ///< destination buffer (nullptr = discard)
  std::size_t max_bytes = 0;

  // Set at match time:
  bool completed = false;
  bool truncated = false;
  Status status;
};

using MessagePtr = std::shared_ptr<Message>;
using PostedRecvPtr = std::shared_ptr<PostedRecv>;

}  // namespace mpisect::mpisim
