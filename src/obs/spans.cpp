#include "obs/spans.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "support/log.hpp"
#include "support/strings.hpp"

namespace mpisect::obs {
namespace {

constexpr std::size_t kDefaultRingSpans = 8192;

/// One ring slot. Fields are relaxed atomics so the exporter may read a
/// slot the owning thread is concurrently overwriting without a data race;
/// the seqlock head re-check below discards any such torn record.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
};

/// A single-producer span ring owned by one thread, snapshot by any.
struct Ring {
  explicit Ring(std::uint32_t tid_in, std::size_t capacity)
      : tid(tid_in), slots(capacity) {}

  const std::uint32_t tid;
  /// Spans ever written; slot index = head % capacity. Written with
  /// release order after the slot fields so a snapshot that observes the
  /// bump also observes the record.
  std::atomic<std::uint64_t> head{0};
  std::vector<Slot> slots;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  ///< never shrunk while live
  std::string flush_path;                    ///< "" = no atexit flush
  bool atexit_armed = false;
};

Registry& registry() {
  static Registry* r = new Registry;  // immortal: rings outlive any thread
  return *r;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_timing{false};
std::atomic<std::size_t> g_ring_capacity{kDefaultRingSpans};
/// Bumped by reset_spans_for_test so threads drop their cached ring.
std::atomic<std::uint64_t> g_generation{0};

Ring* acquire_ring() {
  thread_local Ring* tl_ring = nullptr;
  thread_local std::uint64_t tl_generation = ~std::uint64_t{0};
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (tl_ring == nullptr || tl_generation != gen) {
    Registry& reg = registry();
    const std::lock_guard lock(reg.mu);
    auto ring = std::make_unique<Ring>(
        static_cast<std::uint32_t>(reg.rings.size()),
        g_ring_capacity.load(std::memory_order_relaxed));
    tl_ring = ring.get();
    tl_generation = gen;
    reg.rings.push_back(std::move(ring));
  }
  return tl_ring;
}

void flush_at_exit() {
  std::string path;
  {
    Registry& reg = registry();
    const std::lock_guard lock(reg.mu);
    path = reg.flush_path;
  }
  if (!path.empty()) (void)write_self_trace(path);
}

/// MPISECT_SELF_TRACE / MPISECT_SELF_TRACE_RING, applied on library load so
/// every binary honors the environment without CLI wiring.
const bool g_env_applied = [] {
  if (const char* ring = std::getenv("MPISECT_SELF_TRACE_RING")) {
    const long v = std::strtol(ring, nullptr, 10);
    if (v > 0) g_ring_capacity.store(static_cast<std::size_t>(v),
                                     std::memory_order_relaxed);
  }
  if (const char* path = std::getenv("MPISECT_SELF_TRACE")) {
    if (path[0] != '\0') enable_self_trace(path);
  }
  return true;
}();

}  // namespace

std::uint64_t now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point base = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           base)
          .count());
}

bool self_trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

bool timing_enabled() noexcept {
  return g_timing.load(std::memory_order_relaxed) ||
         g_enabled.load(std::memory_order_relaxed);
}

void set_timing(bool on) noexcept {
  g_timing.store(on, std::memory_order_relaxed);
}

void enable_self_trace(const std::string& path) {
  (void)now_ns();  // pin the clock base before the first span
  bool arm = false;
  {
    Registry& reg = registry();
    const std::lock_guard lock(reg.mu);
    if (!path.empty()) reg.flush_path = path;
    if (!reg.flush_path.empty() && !reg.atexit_armed) {
      reg.atexit_armed = true;
      arm = true;
    }
  }
  if (arm) std::atexit(flush_at_exit);
  g_enabled.store(true, std::memory_order_relaxed);
}

void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t dur_ns) noexcept {
  Ring* ring = acquire_ring();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& s = ring->slots[static_cast<std::size_t>(head % ring->slots.size())];
  s.name.store(name, std::memory_order_relaxed);
  s.t0_ns.store(t0_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
}

std::vector<SpanRecord> snapshot_spans() {
  std::vector<SpanRecord> out;
  Registry& reg = registry();
  const std::lock_guard lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::size_t cap = ring->slots.size();
    const std::uint64_t h1 = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = h1 < cap ? h1 : cap;
    std::vector<SpanRecord> local;
    local.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t g = h1 - n; g < h1; ++g) {
      const Slot& s = ring->slots[static_cast<std::size_t>(g % cap)];
      SpanRecord rec;
      rec.name = s.name.load(std::memory_order_relaxed);
      rec.t0_ns = s.t0_ns.load(std::memory_order_relaxed);
      rec.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      rec.tid = ring->tid;
      local.push_back(rec);
    }
    // Seqlock re-check: entries the producer may have overwritten while we
    // copied (global index < h2 - cap) are discarded, so a torn record can
    // never reach the export.
    const std::uint64_t h2 = ring->head.load(std::memory_order_acquire);
    std::size_t skip = 0;
    if (h2 > cap) {
      const std::uint64_t floor = h2 - cap;
      const std::uint64_t first = h1 - n;
      if (floor > first) skip = static_cast<std::size_t>(floor - first);
    }
    for (std::size_t i = skip; i < local.size(); ++i) {
      if (local[i].name != nullptr) out.push_back(local[i]);
    }
  }
  return out;
}

std::uint64_t spans_recorded() noexcept {
  std::uint64_t total = 0;
  Registry& reg = registry();
  const std::lock_guard lock(reg.mu);
  for (const auto& ring : reg.rings) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t spans_dropped() noexcept {
  std::uint64_t dropped = 0;
  Registry& reg = registry();
  const std::lock_guard lock(reg.mu);
  for (const auto& ring : reg.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t cap = ring->slots.size();
    if (head > cap) dropped += head - cap;
  }
  return dropped;
}

std::string render_chrome_json(const std::vector<SpanRecord>& spans) {
  // chrome://tracing "complete" events; ts/dur in microseconds.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  support::json_escape(s.name != nullptr ? s.name : "?")
                      .c_str(),
                  s.tid, static_cast<double>(s.t0_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans_dropped\":\"";
  out += std::to_string(spans_dropped());
  out += "\"}}\n";
  return out;
}

std::string render_csv(const std::vector<SpanRecord>& spans) {
  std::string out = "name,tid,t0_ns,dur_ns\n";
  char buf[192];
  for (const SpanRecord& s : spans) {
    std::snprintf(buf, sizeof buf, "%s,%u,%llu,%llu\n",
                  s.name != nullptr ? s.name : "?", s.tid,
                  static_cast<unsigned long long>(s.t0_ns),
                  static_cast<unsigned long long>(s.dur_ns));
    out += buf;
  }
  return out;
}

bool write_self_trace(const std::string& path) {
  std::vector<SpanRecord> spans = snapshot_spans();
  const std::string body = support::ends_with(path, ".json")
                               ? render_chrome_json(spans)
                               : render_csv(spans);
  std::ofstream out(path, std::ios::binary);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) {
    MPISECT_LOG_ERROR("self-trace: short write to %s", path.c_str());
    return false;
  }
  MPISECT_LOG_INFO("self-trace: wrote %zu spans (%llu dropped) to %s",
                   spans.size(),
                   static_cast<unsigned long long>(spans_dropped()),
                   path.c_str());
  return true;
}

void set_ring_capacity(std::size_t spans) noexcept {
  if (spans > 0) g_ring_capacity.store(spans, std::memory_order_relaxed);
}

void reset_spans_for_test() {
  Registry& reg = registry();
  const std::lock_guard lock(reg.mu);
  reg.rings.clear();
  g_generation.fetch_add(1, std::memory_order_release);
}

void set_enabled_for_test(bool on) noexcept {
  if (on) {
    enable_self_trace();
  } else {
    g_enabled.store(false, std::memory_order_relaxed);
  }
}

}  // namespace mpisect::obs
