// Prometheus text rendering of the obs.* self-observability counters.
//
// The serve daemon's {"op":"metrics"} response concatenates the telemetry
// registry's serve.* dump with this text so one scrape sees the request
// metrics, the span tracer's health, codec throughput, and the simulator's
// scheduler/memory gauges.
#pragma once

#include <string>

namespace mpisect::obs {

/// Render every obs_* counter (and derived GB/s gauges) as Prometheus
/// exposition text.
[[nodiscard]] std::string prometheus_text();

}  // namespace mpisect::obs
