// Wall-clock self-observability: RAII spans over per-thread lock-free rings.
//
// Everything else in this repository measures the *simulated* program in
// virtual time; this subsystem watches the *simulator* in wall-clock time.
// The two must never mix: a span records steady-clock nanoseconds and is
// forbidden (by construction — it touches no virtual clock and no scheduler
// state) from perturbing virtual time. Runs with self-tracing enabled are
// bit-identical to runs without it.
//
// Design:
//   * Disabled is the common case and costs one relaxed atomic load per
//     span construction; no ring is touched, no clock is read.
//   * Each recording thread owns a ring of fixed capacity. The producer is
//     single-threaded (the owning thread); the exporter snapshots rings
//     seqlock-style: read head, copy slots, re-read head, discard any
//     prefix that may have been overwritten meanwhile. Slots are relaxed
//     atomics so concurrent snapshot reads are TSan-clean.
//   * Overflow drops the *oldest* spans (the ring keeps the newest
//     `capacity` entries) and the drop count is exposed — never UB.
//   * Export formats: chrome://tracing JSON ("*.json") or a flat CSV
//     (anything else). Activation: enable_self_trace(path) from a CLI
//     `--self-trace` flag, or the MPISECT_SELF_TRACE environment variable
//     (applied on library load); an atexit hook flushes the file.
//
// Span names must be string literals (or otherwise immortal): rings store
// the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mpisect::obs {

/// One completed span, as copied out of a ring by snapshot().
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;   ///< steady-clock start, process-relative
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     ///< small per-process thread ordinal
};

/// Steady-clock nanoseconds since the first call in this process.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// True once self-tracing has been enabled (flag or environment). One
/// relaxed atomic load — the disabled fast path of every span.
[[nodiscard]] bool self_trace_enabled() noexcept;

/// Turn on span recording. `path` is where the atexit flush writes the
/// trace ("" records to rings without scheduling a file flush — used by
/// tests and by callers that export through write_self_trace themselves).
void enable_self_trace(const std::string& path = "");

/// True when wall-clock *timing* instrumentation should run (scheduler
/// busy/idle, switch latency). On whenever self-tracing is on; can also be
/// requested alone (mpisect-top --self) without any span file.
[[nodiscard]] bool timing_enabled() noexcept;
void set_timing(bool on) noexcept;

/// Append a completed span to the calling thread's ring (no-op while
/// disabled). Span() is the intended producer; exposed for tests.
void record_span(const char* name, std::uint64_t t0_ns,
                 std::uint64_t dur_ns) noexcept;

/// RAII span: measures construction → destruction when tracing is enabled,
/// does one relaxed load and nothing else when disabled.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(name), t0_(self_trace_enabled() ? now_ns() + 1 : 0) {}
  ~Span() {
    if (t0_ != 0) record_span(name_, t0_ - 1, now_ns() + 1 - t0_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_;  ///< now_ns()+1 at entry; 0 = disabled, skip recording
};

/// Copy every ring's surviving spans, oldest first within each thread.
[[nodiscard]] std::vector<SpanRecord> snapshot_spans();

/// Total spans ever recorded / dropped to overflow, across all threads.
[[nodiscard]] std::uint64_t spans_recorded() noexcept;
[[nodiscard]] std::uint64_t spans_dropped() noexcept;

/// Write the current snapshot to `path`: chrome://tracing JSON when the
/// path ends in ".json", flat CSV otherwise. Returns false (and logs) on
/// I/O failure.
bool write_self_trace(const std::string& path);

/// Render helpers (exposed for tests; write_self_trace uses them).
[[nodiscard]] std::string render_chrome_json(
    const std::vector<SpanRecord>& spans);
[[nodiscard]] std::string render_csv(const std::vector<SpanRecord>& spans);

/// Ring capacity for rings created *after* the call (default 8192 spans,
/// MPISECT_SELF_TRACE_RING overrides). Testing hook.
void set_ring_capacity(std::size_t spans) noexcept;

/// Drop all recorded spans and per-thread rings (single-threaded callers
/// only — unit tests between cases).
void reset_spans_for_test();

/// Force the enabled flag (differential on/off tests; production code has
/// no reason to turn tracing back off).
void set_enabled_for_test(bool on) noexcept;

}  // namespace mpisect::obs
