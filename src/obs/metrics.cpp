#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/counters.hpp"
#include "obs/spans.hpp"

namespace mpisect::obs {

Counters& counters() noexcept {
  static Counters c;
  return c;
}

namespace {

void emit(std::string& out, const char* name, const char* type,
          std::uint64_t v) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "# TYPE %s %s\n%s %" PRIu64 "\n", name,
                type, name, v);
  out += buf;
}

void emit_gauge(std::string& out, const char* name, double v) {
  char buf[160];
  if (v != v) v = 0.0;  // drop NaN
  std::snprintf(buf, sizeof buf, "# TYPE %s gauge\n%s %.6g\n", name, name, v);
  out += buf;
}

double rate_gbps(std::uint64_t bytes, std::uint64_t ns) noexcept {
  if (ns == 0) return 0.0;
  return static_cast<double>(bytes) / static_cast<double>(ns);  // B/ns == GB/s
}

}  // namespace

std::string prometheus_text() {
  const Counters& c = counters();
  std::string out;
  out.reserve(2048);
  const auto ld = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };

  emit(out, "obs_spans_recorded", "counter", spans_recorded());
  emit(out, "obs_spans_dropped", "counter", spans_dropped());
  emit(out, "obs_self_trace_enabled", "gauge", self_trace_enabled() ? 1 : 0);

  emit(out, "obs_codec_compress_bytes_in", "counter",
       ld(c.codec_compress_bytes_in));
  emit(out, "obs_codec_compress_bytes_out", "counter",
       ld(c.codec_compress_bytes_out));
  emit(out, "obs_codec_compress_ns", "counter", ld(c.codec_compress_ns));
  emit(out, "obs_codec_decompress_bytes_out", "counter",
       ld(c.codec_decompress_bytes_out));
  emit(out, "obs_codec_decompress_ns", "counter", ld(c.codec_decompress_ns));
  emit_gauge(out, "obs_codec_compress_gbps",
             rate_gbps(ld(c.codec_compress_bytes_in),
                       ld(c.codec_compress_ns)));
  emit_gauge(out, "obs_codec_decompress_gbps",
             rate_gbps(ld(c.codec_decompress_bytes_out),
                       ld(c.codec_decompress_ns)));

  emit(out, "obs_trace_encoded_bytes", "counter", ld(c.trace_encoded_bytes));
  emit(out, "obs_trace_buffered_bytes_hwm", "gauge",
       ld(c.trace_buffered_bytes_hwm));
  emit(out, "obs_trace_flushes", "counter", ld(c.trace_flushes));

  emit(out, "obs_sched_parks", "counter", ld(c.sched_parks));
  emit(out, "obs_sched_wakes", "counter", ld(c.sched_wakes));
  emit(out, "obs_sched_switches", "counter", ld(c.sched_switches));
  emit(out, "obs_sched_busy_ns", "counter", ld(c.sched_busy_ns));
  emit(out, "obs_sched_idle_ns", "counter", ld(c.sched_idle_ns));

  emit(out, "obs_mem_channel_bytes_hwm", "gauge",
       ld(c.mem_channel_bytes_hwm));
  emit(out, "obs_mem_stack_bytes_hwm", "gauge", ld(c.mem_stack_bytes_hwm));
  emit(out, "obs_mem_ranks", "gauge", ld(c.mem_ranks));
  const std::uint64_t ranks = ld(c.mem_ranks);
  emit_gauge(out, "obs_mem_bytes_per_rank",
             ranks == 0 ? 0.0
                        : static_cast<double>(ld(c.mem_channel_bytes_hwm) +
                                              ld(c.mem_stack_bytes_hwm)) /
                              static_cast<double>(ranks));
  return out;
}

}  // namespace mpisect::obs
