// Exact per-rank memory accounting for the simulated world.
//
// Each World owns one MemAccount with a slot per rank. Channels charge the
// destination rank's slot for every queued byte (unexpected messages:
// struct + payload; posted receives: struct) and credit it back when the
// entry is matched or destroyed, so `hwm` is the exact high-water mark of
// bytes the matching engine ever held for that rank. Two relaxed atomic
// ops per queue transition — always on, no configuration.
//
// The accounting observes memory, it never influences matching or virtual
// time; runs are bit-identical with or without anyone reading it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/counters.hpp"

namespace mpisect::obs {

class MemAccount {
 public:
  struct RankMem {
    std::atomic<std::uint64_t> current{0};
    std::atomic<std::uint64_t> hwm{0};

    void add(std::uint64_t bytes) noexcept {
      const std::uint64_t now =
          current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
      update_max(hwm, now);
    }
    void sub(std::uint64_t bytes) noexcept {
      current.fetch_sub(bytes, std::memory_order_relaxed);
    }
  };

  explicit MemAccount(int nranks)
      : nranks_(nranks > 0 ? nranks : 1),
        ranks_(std::make_unique<RankMem[]>(
            static_cast<std::size_t>(nranks_))) {}

  [[nodiscard]] int nranks() const noexcept { return nranks_; }

  [[nodiscard]] RankMem& rank(int r) noexcept {
    return ranks_[static_cast<std::size_t>(r >= 0 && r < nranks_ ? r : 0)];
  }

  /// Sum of live queued bytes across ranks (racy snapshot).
  [[nodiscard]] std::uint64_t total_current() const noexcept {
    std::uint64_t sum = 0;
    for (int r = 0; r < nranks_; ++r) {
      sum += ranks_[static_cast<std::size_t>(r)].current.load(
          std::memory_order_relaxed);
    }
    return sum;
  }

  /// Sum over ranks of each rank's own high-water mark (upper bound on the
  /// simultaneous total; exact per rank).
  [[nodiscard]] std::uint64_t total_hwm() const noexcept {
    std::uint64_t sum = 0;
    for (int r = 0; r < nranks_; ++r) {
      sum += ranks_[static_cast<std::size_t>(r)].hwm.load(
          std::memory_order_relaxed);
    }
    return sum;
  }

  /// Largest single-rank high-water mark.
  [[nodiscard]] std::uint64_t peak_rank_hwm() const noexcept {
    std::uint64_t peak = 0;
    for (int r = 0; r < nranks_; ++r) {
      const std::uint64_t h = ranks_[static_cast<std::size_t>(r)].hwm.load(
          std::memory_order_relaxed);
      if (h > peak) peak = h;
    }
    return peak;
  }

  /// Mean per-rank high-water mark — the "bytes/rank" scaling curve value.
  [[nodiscard]] double bytes_per_rank() const noexcept {
    return static_cast<double>(total_hwm()) / static_cast<double>(nranks_);
  }

 private:
  int nranks_;
  std::unique_ptr<RankMem[]> ranks_;
};

}  // namespace mpisect::obs
