// Always-on process-wide self-observability counters.
//
// Relaxed atomics bumped from the codec, the trace writer, and (after each
// World::run) the scheduler; read by the Prometheus surface (`{"op":
// "metrics"}` on the serve daemon, `--export prom`, mpisect-top --self).
// These measure the *simulator* in wall-clock terms and are therefore
// non-deterministic run to run; they must never feed back into virtual
// time or into deterministic artifacts (.mpst bytes, telemetry CSV).
#pragma once

#include <atomic>
#include <cstdint>

namespace mpisect::obs {

/// Monotonic CAS-max on a relaxed atomic (high-water marks).
inline void update_max(std::atomic<std::uint64_t>& slot,
                       std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

struct Counters {
  // Codec throughput (bytes through compress/decompress + wall time spent).
  std::atomic<std::uint64_t> codec_compress_bytes_in{0};
  std::atomic<std::uint64_t> codec_compress_bytes_out{0};
  std::atomic<std::uint64_t> codec_compress_ns{0};
  std::atomic<std::uint64_t> codec_decompress_bytes_out{0};
  std::atomic<std::uint64_t> codec_decompress_ns{0};

  // Trace writer: bytes buffered at encode time (high-water), bytes
  // written, file flushes.
  std::atomic<std::uint64_t> trace_encoded_bytes{0};
  std::atomic<std::uint64_t> trace_buffered_bytes_hwm{0};
  std::atomic<std::uint64_t> trace_flushes{0};

  // Scheduler totals folded in at the end of each World::run (the live
  // per-run values stay in Executor::stats()).
  std::atomic<std::uint64_t> sched_parks{0};
  std::atomic<std::uint64_t> sched_wakes{0};
  std::atomic<std::uint64_t> sched_switches{0};
  std::atomic<std::uint64_t> sched_busy_ns{0};
  std::atomic<std::uint64_t> sched_idle_ns{0};

  // Simulated-world memory (channel queues + fiber stacks), high-water.
  std::atomic<std::uint64_t> mem_channel_bytes_hwm{0};
  std::atomic<std::uint64_t> mem_stack_bytes_hwm{0};
  std::atomic<std::uint64_t> mem_ranks{0};  ///< nranks of the widest world

  void reset() noexcept {
    codec_compress_bytes_in.store(0, std::memory_order_relaxed);
    codec_compress_bytes_out.store(0, std::memory_order_relaxed);
    codec_compress_ns.store(0, std::memory_order_relaxed);
    codec_decompress_bytes_out.store(0, std::memory_order_relaxed);
    codec_decompress_ns.store(0, std::memory_order_relaxed);
    trace_encoded_bytes.store(0, std::memory_order_relaxed);
    trace_buffered_bytes_hwm.store(0, std::memory_order_relaxed);
    trace_flushes.store(0, std::memory_order_relaxed);
    sched_parks.store(0, std::memory_order_relaxed);
    sched_wakes.store(0, std::memory_order_relaxed);
    sched_switches.store(0, std::memory_order_relaxed);
    sched_busy_ns.store(0, std::memory_order_relaxed);
    sched_idle_ns.store(0, std::memory_order_relaxed);
    mem_channel_bytes_hwm.store(0, std::memory_order_relaxed);
    mem_stack_bytes_hwm.store(0, std::memory_order_relaxed);
    mem_ranks.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide counter block.
[[nodiscard]] Counters& counters() noexcept;

}  // namespace mpisect::obs
