// Cross-rank call-consistency analysis (MUST's "local + non-local checks").
//
// Each rank thread appends collective and point-to-point events to its own
// per-rank log (owner-thread only, no locks); after World::run() has joined
// the rank threads, analyze() compares the logs:
//
//   * collectives, per communicator context: every member must issue the
//     same call at every ordinal, rooted calls must agree on the root, and
//     uniform-size calls (bcast, reduce, allreduce, scatter, gather,
//     allgather, alltoall) must agree on the per-rank byte count;
//   * point-to-point, per (context, sender, receiver) pair: the ordered
//     (tag, bytes) sequences of sends and matching posted receives must
//     line up — a receive buffer smaller than the message is a truncation
//     error, more sends than receives (or vice versa) is a count mismatch.
//
// Pairing is deliberately conservative: any pair whose endpoint took part
// in a Sendrecv or posted a wildcard (any-source) receive on that context
// is excluded, because the observer cannot know which message matched.
#pragma once

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "checker/comm_registry.hpp"
#include "checker/diagnostics.hpp"
#include "mpisim/hooks.hpp"

namespace mpisect::checker {

class ConsistencyChecker {
 public:
  explicit ConsistencyChecker(int nranks);

  /// Rank thread: a collective began (recorded at begin so mismatched
  /// collectives that subsequently fail are still compared).
  void on_collective(int world_rank, const mpisim::CallInfo& info);
  /// Rank thread: Send/Isend began. `dst_world` already mapped to world rank.
  void on_send(int world_rank, int dst_world, const mpisim::CallInfo& info);
  /// Rank thread: Recv/Irecv began. `src_world` is -1 for any-source.
  void on_recv(int world_rank, int src_world, const mpisim::CallInfo& info);
  /// Rank thread: a Sendrecv was observed — taints this rank's pairs.
  void on_sendrecv(int world_rank, int context);

  /// `aborted` suppresses the count/length comparisons (an unwound run
  /// truncates every rank's log at an arbitrary point); the prefix
  /// comparisons — call/root/byte agreement, send-vs-receive sizes — still
  /// run on what was observed.
  void analyze(const CommRegistry& comms, DiagnosticSink& sink,
               bool aborted) const;

 private:
  struct CollEvent {
    mpisim::MpiCall call;
    int context;
    int root;  ///< comm rank of the root; -1 for rootless collectives
    std::size_t bytes;
    double t_virtual;
  };
  struct P2PEvent {
    bool send;
    int context;
    int peer_world;  ///< destination (send) / source (recv, -1 = wildcard)
    int tag;
    std::size_t bytes;  ///< payload (send) / buffer capacity (recv)
    double t_virtual;
  };
  struct PerRank {
    std::vector<CollEvent> coll;
    std::vector<P2PEvent> p2p;
    /// Contexts on which this rank used Sendrecv or an any-source receive.
    std::set<int> tainted_contexts;
  };

  void analyze_collectives(const CommRegistry& comms, DiagnosticSink& sink,
                           bool aborted) const;
  void analyze_p2p(DiagnosticSink& sink, bool aborted) const;

  std::vector<PerRank> ranks_;
};

}  // namespace mpisect::checker
