// mpicheck — a MUST-style MPI correctness analyzer.
//
// MpiChecker attaches to a World exactly the way a real PMPI tool attaches
// to an MPI application: it registers with the world's hooks::ToolStack
// (composing with the section profiler, recorder and sampler without any
// hand-rolled chaining) and as an Extension for per-rank lifecycle. The
// application is never modified.
//
// Four analyses:
//   * deadlock: rank tasks publish blocked states into a WaitGraph; the
//     scheduler reports exact quiescence (every live rank parked with no
//     wake pending) through World::set_deadlock_handler, at which point the
//     checker analyzes the wait-for snapshot for cycles/orphaned waits,
//     reports them and lets the world abort so the blocked ranks unwind
//     with Err::Aborted. Detection is deterministic — no timeouts;
//   * resource leaks: nonblocking requests never completed and derived
//     communicators never freed at MPI_Finalize;
//   * call consistency: collective call/root/count agreement across ranks
//     and conservative send/recv size pairing;
//   * section lint: rejected MPIX_Section operations plus cross-rank
//     comparison of the per-communicator section sequences.
//
// Usage:
//   auto checker = checker::MpiChecker::install(world);
//   world.run(app);              // or catch Err::Aborted on deadlock
//   checker->analyze();          // post-run passes
//   std::cout << checker::render_text(checker->diagnostics());
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "checker/comm_registry.hpp"
#include "checker/consistency.hpp"
#include "checker/diagnostics.hpp"
#include "checker/resource_tracker.hpp"
#include "checker/section_lint.hpp"
#include "checker/waitgraph.hpp"
#include "mpisim/hooks.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/toolstack.hpp"

namespace mpisect::checker {

struct CheckerOptions {
  /// Hook the scheduler's quiescence signal for deadlock analysis.
  /// Off = post-run passes only.
  bool deadlock_detection = true;
  /// Legacy (ignored): real-time window of the old sampling watchdog.
  /// Detection is now exact — the scheduler proves quiescence instead of
  /// timing it. Kept so existing configuration code keeps compiling.
  int deadlock_timeout_ms = 500;
  /// Legacy (ignored): sampling period of the old watchdog.
  int poll_interval_ms = 25;
  /// Legacy (ignored): tools now register with the world's ToolStack,
  /// which chains unconditionally. Kept so existing configuration code
  /// keeps compiling.
  bool chain_hooks = true;
};

class MpiChecker final : public mpisim::Extension,
                         public mpisim::hooks::Tool {
 public:
  /// Create a checker, install its hooks on `world` (chaining whatever was
  /// installed before) and attach it as an Extension. Call before run().
  static std::shared_ptr<MpiChecker> install(mpisim::World& world,
                                             CheckerOptions options = {});

  MpiChecker(mpisim::World& world, CheckerOptions options);
  ~MpiChecker() override;
  MpiChecker(const MpiChecker&) = delete;
  MpiChecker& operator=(const MpiChecker&) = delete;

  /// Run the post-run analyses (leaks, consistency, section sequences).
  /// Call after World::run() returned or threw. Idempotent.
  void analyze();

  /// Unhook the deadlock handler and restore the previously installed hook
  /// table. Called automatically on destruction.
  void detach();

  [[nodiscard]] std::vector<Diagnostic> diagnostics() const {
    return sink_.diagnostics();
  }
  [[nodiscard]] const DiagnosticSink& sink() const noexcept { return sink_; }
  [[nodiscard]] DiagnosticSink& sink() noexcept { return sink_; }
  [[nodiscard]] bool deadlock_reported() const noexcept {
    return deadlock_reported_.load();
  }
  [[nodiscard]] const CheckerOptions& options() const noexcept {
    return options_;
  }

  // Extension interface.
  void on_rank_init(mpisim::Ctx& ctx) override;
  void on_rank_finalize(mpisim::Ctx& ctx) override;

  // Tool interface (invoked by the world's ToolStack).
  void on_call_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_call_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info) override;
  void on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, char* data) override;
  void on_section_error(mpisim::Ctx& ctx, mpisim::Comm& comm,
                        const char* label, int code) override;
  void on_comm_create(mpisim::Ctx& ctx,
                      const mpisim::CommLifecycle& info) override;
  void on_comm_free(mpisim::Ctx& ctx, int context) override;

 private:
  void handle_begin(mpisim::Ctx& ctx, const mpisim::CallInfo& info);
  void handle_end(mpisim::Ctx& ctx, const mpisim::CallInfo& info);
  /// Map a CallInfo peer (comm rank) to a world rank; -1 stays -1.
  [[nodiscard]] int peer_world(int context, int comm_rank) const;

  /// Scheduler callback: every live rank is parked, nothing can wake them.
  /// Snapshot the wait graph and report; the world aborts right after.
  void on_quiescence();
  void report_deadlock(const std::vector<RankWaitState>& states);

  mpisim::World* world_;
  CheckerOptions options_;
  bool attached_ = false;
  bool handler_installed_ = false;

  DiagnosticSink sink_;
  CommRegistry comms_;
  WaitGraph waitgraph_;
  ResourceTracker resources_;
  ConsistencyChecker consistency_;
  SectionLint lint_;

  std::atomic<bool> deadlock_reported_{false};
  std::atomic<bool> analyzed_{false};
};

}  // namespace mpisect::checker
