#include "checker/section_lint.hpp"

#include <algorithm>

#include "core/sections/runtime.hpp"

namespace mpisect::checker {

SectionLint::SectionLint(int nranks)
    : ranks_(static_cast<std::size_t>(nranks)) {}

void SectionLint::on_event(int world_rank, int context, bool enter,
                           const char* label, double t_virtual) {
  ranks_[static_cast<std::size_t>(world_rank)].events.push_back(
      {context, enter, label != nullptr ? label : "", t_virtual});
}

void SectionLint::on_error(int world_rank, const char* label, int code,
                           double t_virtual, DiagnosticSink& sink) {
  {
    const std::lock_guard lock(err_mu_);
    ++error_events_;
  }
  Diagnostic d;
  d.category = Category::SectionMisuse;
  d.severity = Severity::Error;
  d.rank = world_rank;
  d.t_virtual = t_virtual;
  d.site = label != nullptr ? label : "";
  d.message = std::string(sections::section_result_name(code)) + ": ";
  switch (code) {
    case sections::kSectionErrBadLabel:
      d.message += "null or empty section label";
      break;
    case sections::kSectionErrNotNested:
      d.message += "exit label \"" + d.site +
                   "\" does not match the innermost open section";
      break;
    case sections::kSectionErrEmptyStack:
      d.message += "section exit \"" + d.site + "\" with no open section";
      break;
    case sections::kSectionErrMismatch:
      d.message +=
          "ranks disagree on section label/depth at \"" + d.site + "\"";
      break;
    case sections::kSectionErrComm:
      d.message += "section call on an invalid communicator";
      break;
    case sections::kSectionErrLeaked:
      d.message += "section \"" + d.site + "\" still open at MPI_Finalize";
      break;
    default:
      d.message += "section operation failed on \"" + d.site + "\"";
      break;
  }
  sink.emit(std::move(d));
}

void SectionLint::analyze(const CommRegistry& comms, DiagnosticSink& sink,
                          bool aborted) const {
  for (const auto& rec : comms.records()) {
    std::vector<int> members;
    std::vector<std::vector<const Event*>> seqs;
    for (const int wr : rec.world_ranks) {
      if (wr < 0 || wr >= static_cast<int>(ranks_.size())) continue;
      members.push_back(wr);
      auto& seq = seqs.emplace_back();
      for (const auto& ev : ranks_[static_cast<std::size_t>(wr)].events) {
        if (ev.context == rec.context) seq.push_back(&ev);
      }
    }
    if (members.size() < 2) continue;

    std::size_t min_len = seqs.front().size();
    std::size_t max_len = seqs.front().size();
    for (const auto& s : seqs) {
      min_len = std::min(min_len, s.size());
      max_len = std::max(max_len, s.size());
    }

    bool diverged = false;
    for (std::size_t i = 0; i < min_len && !diverged; ++i) {
      const Event* ref = seqs.front()[i];
      for (std::size_t m = 1; m < seqs.size(); ++m) {
        const Event* ev = seqs[m][i];
        if (ev->enter == ref->enter && ev->label == ref->label) continue;
        Diagnostic d;
        d.category = Category::SectionMisuse;
        d.severity = Severity::Error;
        d.rank = members[m];
        d.comm_context = rec.context;
        d.t_virtual = ev->t_virtual;
        d.site = ev->label;
        d.message = "section event #" + std::to_string(i) + " on context " +
                    std::to_string(rec.context) + ": rank " +
                    std::to_string(members[m]) + " did " +
                    (ev->enter ? "enter(\"" : "exit(\"") + ev->label +
                    "\") but rank " + std::to_string(members.front()) +
                    " did " + (ref->enter ? "enter(\"" : "exit(\"") +
                    ref->label + "\")";
        sink.emit(std::move(d));
        diverged = true;  // later events are shifted; avoid cascade noise
        break;
      }
    }

    if (!diverged && !aborted && min_len != max_len) {
      int short_rank = -1;
      int long_rank = -1;
      for (std::size_t m = 0; m < seqs.size(); ++m) {
        if (seqs[m].size() == min_len && short_rank < 0) short_rank = members[m];
        if (seqs[m].size() == max_len && long_rank < 0) long_rank = members[m];
      }
      Diagnostic d;
      d.category = Category::SectionMisuse;
      d.severity = Severity::Error;
      d.rank = short_rank;
      d.comm_context = rec.context;
      d.site = "section sequence";
      d.message = "context " + std::to_string(rec.context) + ": rank " +
                  std::to_string(short_rank) + " performed " +
                  std::to_string(min_len) + " section event(s) but rank " +
                  std::to_string(long_rank) + " performed " +
                  std::to_string(max_len);
      sink.emit(std::move(d));
    }
  }
}

}  // namespace mpisect::checker
