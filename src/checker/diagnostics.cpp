#include "checker/diagnostics.hpp"

namespace mpisect::checker {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::Deadlock: return "DEADLOCK";
    case Category::ResourceLeak: return "RESOURCE_LEAK";
    case Category::CollectiveMismatch: return "COLLECTIVE_MISMATCH";
    case Category::P2PMismatch: return "P2P_MISMATCH";
    case Category::SectionMisuse: return "SECTION_MISUSE";
    case Category::InjectedFault: return "INJECTED_FAULT";
    case Category::MessageRace: return "MESSAGE_RACE";
    case Category::LatentDeadlock: return "LATENT_DEADLOCK";
  }
  return "?";
}

void DiagnosticSink::emit(Diagnostic d) {
  const std::lock_guard lock(mu_);
  diags_.push_back(std::move(d));
}

std::vector<Diagnostic> DiagnosticSink::diagnostics() const {
  const std::lock_guard lock(mu_);
  return diags_;
}

std::size_t DiagnosticSink::count() const {
  const std::lock_guard lock(mu_);
  return diags_.size();
}

std::size_t DiagnosticSink::count(Category c) const {
  const std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.category == c) ++n;
  }
  return n;
}

std::size_t DiagnosticSink::error_count() const {
  const std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

void DiagnosticSink::clear() {
  const std::lock_guard lock(mu_);
  diags_.clear();
}

}  // namespace mpisect::checker
