// Reporters for mpicheck findings.
//
// One diagnostic list, three renderings: an aligned text table (via
// support::TextTable, the same formatter the bench harnesses use), CSV
// (via support::CsvWriter) and JSON. `render_summary` produces the one-line
// per-category tally the CLI prints at exit.
#pragma once

#include <string>
#include <vector>

#include "checker/diagnostics.hpp"

namespace mpisect::checker {

[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diags);
[[nodiscard]] std::string render_csv(const std::vector<Diagnostic>& diags);
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diags);

/// "mpicheck: 3 finding(s): DEADLOCK=1 RESOURCE_LEAK=2" or
/// "mpicheck: no findings".
[[nodiscard]] std::string render_summary(const std::vector<Diagnostic>& diags);
/// Same tally under another tool's name (mpisect-analyze reuses the
/// checker's diagnostic vocabulary and reporters verbatim).
[[nodiscard]] std::string render_summary(const std::vector<Diagnostic>& diags,
                                         const std::string& tool);

}  // namespace mpisect::checker
