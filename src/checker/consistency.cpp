#include "checker/consistency.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

namespace mpisect::checker {

namespace {

bool is_rooted(mpisim::MpiCall c) noexcept {
  using mpisim::MpiCall;
  switch (c) {
    case MpiCall::Bcast:
    case MpiCall::Reduce:
    case MpiCall::Scatter:
    case MpiCall::Scatterv:
    case MpiCall::Gather:
    case MpiCall::Gatherv:
      return true;
    default:
      return false;
  }
}

/// Calls whose CallInfo.bytes must agree across all members.
bool is_uniform_size(mpisim::MpiCall c) noexcept {
  using mpisim::MpiCall;
  switch (c) {
    case MpiCall::Bcast:
    case MpiCall::Reduce:
    case MpiCall::Allreduce:
    case MpiCall::Scatter:
    case MpiCall::Gather:
    case MpiCall::Allgather:
    case MpiCall::Alltoall:
      return true;
    default:
      return false;
  }
}

}  // namespace

ConsistencyChecker::ConsistencyChecker(int nranks)
    : ranks_(static_cast<std::size_t>(nranks)) {}

void ConsistencyChecker::on_collective(int world_rank,
                                       const mpisim::CallInfo& info) {
  auto& pr = ranks_[static_cast<std::size_t>(world_rank)];
  pr.coll.push_back({info.call, info.comm_context,
                     is_rooted(info.call) ? info.peer : -1, info.bytes,
                     info.t_virtual});
}

void ConsistencyChecker::on_send(int world_rank, int dst_world,
                                 const mpisim::CallInfo& info) {
  auto& pr = ranks_[static_cast<std::size_t>(world_rank)];
  pr.p2p.push_back({true, info.comm_context, dst_world, info.tag, info.bytes,
                    info.t_virtual});
}

void ConsistencyChecker::on_recv(int world_rank, int src_world,
                                 const mpisim::CallInfo& info) {
  auto& pr = ranks_[static_cast<std::size_t>(world_rank)];
  pr.p2p.push_back({false, info.comm_context, src_world, info.tag, info.bytes,
                    info.t_virtual});
  if (src_world < 0) pr.tainted_contexts.insert(info.comm_context);
}

void ConsistencyChecker::on_sendrecv(int world_rank, int context) {
  ranks_[static_cast<std::size_t>(world_rank)].tainted_contexts.insert(context);
}

void ConsistencyChecker::analyze(const CommRegistry& comms,
                                 DiagnosticSink& sink, bool aborted) const {
  analyze_collectives(comms, sink, aborted);
  analyze_p2p(sink, aborted);
}

void ConsistencyChecker::analyze_collectives(const CommRegistry& comms,
                                             DiagnosticSink& sink,
                                             bool aborted) const {
  for (const auto& rec : comms.records()) {
    // Per-member collective sequences on this context, in issue order.
    std::vector<int> members;
    std::vector<std::vector<const CollEvent*>> seqs;
    for (const int wr : rec.world_ranks) {
      if (wr < 0 || wr >= static_cast<int>(ranks_.size())) continue;
      members.push_back(wr);
      auto& seq = seqs.emplace_back();
      for (const auto& ev : ranks_[static_cast<std::size_t>(wr)].coll) {
        if (ev.context == rec.context) seq.push_back(&ev);
      }
    }
    if (members.size() < 2) continue;

    std::size_t min_len = seqs.front().size();
    std::size_t max_len = seqs.front().size();
    for (const auto& s : seqs) {
      min_len = std::min(min_len, s.size());
      max_len = std::max(max_len, s.size());
    }

    bool type_diverged = false;
    for (std::size_t i = 0; i < min_len && !type_diverged; ++i) {
      const CollEvent* ref = seqs.front()[i];
      for (std::size_t m = 1; m < seqs.size(); ++m) {
        const CollEvent* ev = seqs[m][i];
        if (ev->call != ref->call) {
          Diagnostic d;
          d.category = Category::CollectiveMismatch;
          d.severity = Severity::Error;
          d.rank = members[m];
          d.comm_context = rec.context;
          d.t_virtual = ev->t_virtual;
          d.site = mpisim::mpi_call_name(ev->call);
          d.message = "collective #" + std::to_string(i) + " on context " +
                      std::to_string(rec.context) + ": rank " +
                      std::to_string(members[m]) + " called " +
                      mpisim::mpi_call_name(ev->call) + " but rank " +
                      std::to_string(members.front()) + " called " +
                      mpisim::mpi_call_name(ref->call);
          sink.emit(std::move(d));
          // Later ordinals are shifted; comparing them would cascade noise.
          type_diverged = true;
          break;
        }
        if (ev->root != ref->root) {
          Diagnostic d;
          d.category = Category::CollectiveMismatch;
          d.severity = Severity::Error;
          d.rank = members[m];
          d.comm_context = rec.context;
          d.t_virtual = ev->t_virtual;
          d.site = mpisim::mpi_call_name(ev->call);
          d.message = std::string(mpisim::mpi_call_name(ev->call)) + " #" +
                      std::to_string(i) + " on context " +
                      std::to_string(rec.context) + ": rank " +
                      std::to_string(members[m]) + " named root " +
                      std::to_string(ev->root) + " but rank " +
                      std::to_string(members.front()) + " named root " +
                      std::to_string(ref->root);
          sink.emit(std::move(d));
        } else if (is_uniform_size(ev->call) && ev->bytes != ref->bytes) {
          Diagnostic d;
          d.category = Category::CollectiveMismatch;
          d.severity = Severity::Error;
          d.rank = members[m];
          d.comm_context = rec.context;
          d.t_virtual = ev->t_virtual;
          d.site = mpisim::mpi_call_name(ev->call);
          d.message = std::string(mpisim::mpi_call_name(ev->call)) + " #" +
                      std::to_string(i) + " on context " +
                      std::to_string(rec.context) + ": rank " +
                      std::to_string(members[m]) + " passed " +
                      std::to_string(ev->bytes) + " bytes but rank " +
                      std::to_string(members.front()) + " passed " +
                      std::to_string(ref->bytes);
          sink.emit(std::move(d));
        }
      }
    }

    if (!type_diverged && !aborted && min_len != max_len) {
      int short_rank = -1;
      int long_rank = -1;
      for (std::size_t m = 0; m < seqs.size(); ++m) {
        if (seqs[m].size() == min_len && short_rank < 0) short_rank = members[m];
        if (seqs[m].size() == max_len && long_rank < 0) long_rank = members[m];
      }
      Diagnostic d;
      d.category = Category::CollectiveMismatch;
      d.severity = Severity::Error;
      d.rank = short_rank;
      d.comm_context = rec.context;
      d.site = "collective sequence";
      d.message = "context " + std::to_string(rec.context) + ": rank " +
                  std::to_string(short_rank) + " issued " +
                  std::to_string(min_len) + " collective(s) but rank " +
                  std::to_string(long_rank) + " issued " +
                  std::to_string(max_len);
      sink.emit(std::move(d));
    }
  }
}

void ConsistencyChecker::analyze_p2p(DiagnosticSink& sink,
                                     bool aborted) const {
  // (context, src, dst) -> ordered events from both endpoints.
  struct Pair {
    std::vector<const P2PEvent*> sends;
    std::vector<const P2PEvent*> recvs;
  };
  std::map<std::tuple<int, int, int>, Pair> pairs;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    for (const auto& ev : ranks_[r].p2p) {
      if (ev.send) {
        pairs[{ev.context, static_cast<int>(r), ev.peer_world}].sends.push_back(
            &ev);
      } else if (ev.peer_world >= 0) {
        pairs[{ev.context, ev.peer_world, static_cast<int>(r)}]
            .recvs.push_back(&ev);
      }
    }
  }

  for (const auto& [key, pair] : pairs) {
    const auto [context, src, dst] = key;
    if (src < 0 || dst < 0 || src >= static_cast<int>(ranks_.size()) ||
        dst >= static_cast<int>(ranks_.size())) {
      continue;
    }
    // Skip pairs whose endpoints we cannot pair deterministically.
    if (ranks_[static_cast<std::size_t>(src)].tainted_contexts.count(context) >
            0 ||
        ranks_[static_cast<std::size_t>(dst)].tainted_contexts.count(context) >
            0) {
      continue;
    }

    if (!aborted && pair.sends.size() != pair.recvs.size()) {
      Diagnostic d;
      d.category = Category::P2PMismatch;
      d.severity = Severity::Error;
      d.rank = pair.sends.size() > pair.recvs.size() ? src : dst;
      d.comm_context = context;
      d.site = "MPI_Send/MPI_Recv";
      d.message = "context " + std::to_string(context) + ": rank " +
                  std::to_string(src) + " sent " +
                  std::to_string(pair.sends.size()) +
                  " message(s) to rank " + std::to_string(dst) +
                  " which posted " + std::to_string(pair.recvs.size()) +
                  " receive(s)";
      sink.emit(std::move(d));
    }

    const std::size_t n = std::min(pair.sends.size(), pair.recvs.size());
    for (std::size_t i = 0; i < n; ++i) {
      const P2PEvent* s = pair.sends[i];
      const P2PEvent* rv = pair.recvs[i];
      // Differing tags mean matching is by tag, not order — stop pairing
      // this stream rather than guess.
      if (s->tag != rv->tag) break;
      if (s->bytes > rv->bytes) {
        Diagnostic d;
        d.category = Category::P2PMismatch;
        d.severity = Severity::Error;
        d.rank = dst;
        d.comm_context = context;
        d.t_virtual = rv->t_virtual;
        d.site = "MPI_Recv";
        d.message = "message #" + std::to_string(i) + " from rank " +
                    std::to_string(src) + " to rank " + std::to_string(dst) +
                    " (tag " + std::to_string(s->tag) + ") sends " +
                    std::to_string(s->bytes) + " bytes into a " +
                    std::to_string(rv->bytes) + "-byte receive buffer";
        sink.emit(std::move(d));
      } else if (s->bytes < rv->bytes) {
        Diagnostic d;
        d.category = Category::P2PMismatch;
        d.severity = Severity::Warning;
        d.rank = dst;
        d.comm_context = context;
        d.t_virtual = rv->t_virtual;
        d.site = "MPI_Recv";
        d.message = "message #" + std::to_string(i) + " from rank " +
                    std::to_string(src) + " to rank " + std::to_string(dst) +
                    " (tag " + std::to_string(s->tag) + ") sends " +
                    std::to_string(s->bytes) + " bytes but the receive posts " +
                    std::to_string(rv->bytes) +
                    " — datatype counts disagree";
        sink.emit(std::move(d));
      }
    }
  }
}

}  // namespace mpisect::checker
