#include "checker/comm_registry.hpp"

namespace mpisect::checker {

void CommRegistry::on_create(const mpisim::CommLifecycle& info,
                             double t_virtual) {
  const std::lock_guard lock(mu_);
  Record& rec = comms_[info.context];
  if (rec.context < 0) {
    rec.context = info.context;
    rec.parent_context = info.parent_context;
    if (info.world_ranks != nullptr) rec.world_ranks = *info.world_ranks;
    rec.created.assign(static_cast<std::size_t>(info.size), 0);
    rec.freed.assign(static_cast<std::size_t>(info.size), 0);
    rec.t_create = t_virtual;
  }
  if (info.rank >= 0 && info.rank < static_cast<int>(rec.created.size())) {
    rec.created[static_cast<std::size_t>(info.rank)] = 1;
  }
}

void CommRegistry::on_free(int world_rank, int context) {
  const std::lock_guard lock(mu_);
  const auto it = comms_.find(context);
  if (it == comms_.end()) return;
  Record& rec = it->second;
  for (std::size_t i = 0; i < rec.world_ranks.size(); ++i) {
    if (rec.world_ranks[i] == world_rank && i < rec.freed.size()) {
      rec.freed[i] = 1;
      return;
    }
  }
}

int CommRegistry::world_rank_of(int context, int comm_rank) const {
  const std::lock_guard lock(mu_);
  const auto it = comms_.find(context);
  if (it == comms_.end()) return -1;
  const auto& wr = it->second.world_ranks;
  if (comm_rank < 0 || comm_rank >= static_cast<int>(wr.size())) return -1;
  return wr[static_cast<std::size_t>(comm_rank)];
}

std::vector<int> CommRegistry::members(int context) const {
  const std::lock_guard lock(mu_);
  const auto it = comms_.find(context);
  return it == comms_.end() ? std::vector<int>{} : it->second.world_ranks;
}

std::vector<CommRegistry::Record> CommRegistry::records() const {
  const std::lock_guard lock(mu_);
  std::vector<Record> out;
  out.reserve(comms_.size());
  for (const auto& [ctx, rec] : comms_) {
    (void)ctx;
    out.push_back(rec);
  }
  return out;
}

}  // namespace mpisect::checker
