#include "checker/checker.hpp"

#include <string>
#include <utility>

#include "checker/report.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/faults/engine.hpp"

namespace mpisect::checker {

using mpisim::CallInfo;
using mpisim::MpiCall;

std::shared_ptr<MpiChecker> MpiChecker::install(mpisim::World& world,
                                                CheckerOptions options) {
  if (auto existing = world.find_extension<MpiChecker>()) return existing;
  auto self = std::make_shared<MpiChecker>(world, options);
  world.attach_extension(self);
  return self;
}

MpiChecker::MpiChecker(mpisim::World& world, CheckerOptions options)
    : world_(&world),
      options_(options),
      waitgraph_(world.size()),
      resources_(world.size()),
      consistency_(world.size()),
      lint_(world.size()) {
  world_->tool_stack().attach(this, mpisim::hooks::kOrderChecker);
  attached_ = true;
  if (options_.deadlock_detection) {
    world_->set_deadlock_handler([this] { on_quiescence(); });
    handler_installed_ = true;
  }
}

MpiChecker::~MpiChecker() { detach(); }

void MpiChecker::detach() {
  if (handler_installed_) {
    world_->set_deadlock_handler(nullptr);
    handler_installed_ = false;
  }
  if (attached_) {
    world_->tool_stack().detach(this);
    attached_ = false;
  }
}

void MpiChecker::on_call_begin(mpisim::Ctx& ctx, const CallInfo& info) {
  handle_begin(ctx, info);
}

void MpiChecker::on_call_end(mpisim::Ctx& ctx, const CallInfo& info) {
  handle_end(ctx, info);
}

void MpiChecker::on_section_enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                  const char* label, char* data) {
  (void)data;
  lint_.on_event(ctx.rank(), comm.context_id(), /*enter=*/true, label,
                 ctx.now());
}

void MpiChecker::on_section_leave(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                  const char* label, char* data) {
  (void)data;
  lint_.on_event(ctx.rank(), comm.context_id(), /*enter=*/false, label,
                 ctx.now());
}

void MpiChecker::on_section_error(mpisim::Ctx& ctx, mpisim::Comm& comm,
                                  const char* label, int code) {
  (void)comm;
  lint_.on_error(ctx.rank(), label, code, ctx.now(), sink_);
}

void MpiChecker::on_comm_create(mpisim::Ctx& ctx,
                                const mpisim::CommLifecycle& info) {
  comms_.on_create(info, ctx.now());
}

void MpiChecker::on_comm_free(mpisim::Ctx& ctx, int context) {
  comms_.on_free(ctx.rank(), context);
}

int MpiChecker::peer_world(int context, int comm_rank) const {
  if (comm_rank < 0) return -1;
  return comms_.world_rank_of(context, comm_rank);
}

void MpiChecker::handle_begin(mpisim::Ctx& ctx, const CallInfo& info) {
  const int wr = ctx.rank();
  switch (info.call) {
    case MpiCall::Isend:
      resources_.on_request_start(wr, info);
      consistency_.on_send(wr, peer_world(info.comm_context, info.peer), info);
      break;
    case MpiCall::Irecv:
      resources_.on_request_start(wr, info);
      consistency_.on_recv(wr, peer_world(info.comm_context, info.peer), info);
      break;
    case MpiCall::Send:
      consistency_.on_send(wr, peer_world(info.comm_context, info.peer), info);
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Recv:
      consistency_.on_recv(wr, peer_world(info.comm_context, info.peer), info);
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Probe:
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Sendrecv:
      // Matching becomes ambiguous for the observer — taint the pairs.
      consistency_.on_sendrecv(wr, info.comm_context);
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Wait: {
      // Give the wait a direction from the request it completes.
      CallInfo start;
      int pw = -1;
      if (resources_.lookup_open(wr, info.request, &start)) {
        pw = peer_world(start.comm_context, start.peer);
      }
      waitgraph_.block(wr, info.call, info.comm_context, pw, info.t_virtual);
      break;
    }
    case MpiCall::Test: {
      // A test poll can park (spin budget exhausted) between its begin and
      // end hooks, so it participates in the wait graph exactly like Wait;
      // a completed or yielding poll unblocks immediately at end.
      CallInfo start;
      int pw = -1;
      if (resources_.lookup_open(wr, info.request, &start)) {
        pw = peer_world(start.comm_context, start.peer);
      }
      waitgraph_.block(wr, info.call, info.comm_context, pw, info.t_virtual);
      break;
    }
    case MpiCall::Iallreduce:
    case MpiCall::Ibarrier:
      // Nonblocking collectives: the post opens a request (completed by
      // Wait) and must line up across members like any collective.
      resources_.on_request_start(wr, info);
      consistency_.on_collective(wr, info);
      break;
    default:
      if (mpisim::is_collective(info.call)) {
        consistency_.on_collective(wr, info);
        if (mpisim::is_blocking(info.call)) {
          waitgraph_.block(wr, info.call, info.comm_context, -1,
                           info.t_virtual);
        }
      }
      break;
  }
}

void MpiChecker::handle_end(mpisim::Ctx& ctx, const CallInfo& info) {
  const int wr = ctx.rank();
  switch (info.call) {
    case MpiCall::Wait:
      resources_.on_request_complete(wr, info.request);
      waitgraph_.unblock(wr, info.call, info.comm_context);
      break;
    case MpiCall::Finalize:
      waitgraph_.set_finished(wr);
      break;
    case MpiCall::Test:
      waitgraph_.unblock(wr, info.call, info.comm_context);
      break;
    case MpiCall::Isend:
    case MpiCall::Irecv:
    case MpiCall::Iallreduce:
    case MpiCall::Ibarrier:
      break;  // nonblocking: tracked at begin, completed by Wait
    default:
      if (mpisim::is_blocking(info.call)) {
        waitgraph_.unblock(wr, info.call, info.comm_context);
      }
      break;
  }
}

void MpiChecker::on_rank_init(mpisim::Ctx& ctx) {
  waitgraph_.set_running(ctx.rank());
}

void MpiChecker::on_rank_finalize(mpisim::Ctx& ctx) { (void)ctx; }

void MpiChecker::on_quiescence() {
  // Runs on whichever rank task (or scheduler worker) proved quiescence.
  // The scheduler fires at most once per run, but an abort already in
  // flight can race the proof — don't double-report.
  if (deadlock_reported_.load() || world_->aborted()) return;

  // A hang under an active fault plan whose kills or message losses fired
  // is the plan working as injected, not a native deadlock — classify it
  // as such, naming the faulting ranks, and skip the cycle analysis.
  if (auto* fe = world_->fault_engine();
      fe != nullptr && (fe->any_kill_fired() || fe->any_loss())) {
    const auto states = waitgraph_.snapshot();
    double t_max = 0.0;
    std::string blocked;
    for (std::size_t r = 0; r < states.size(); ++r) {
      const auto& st = states[r];
      if (st.phase != RankWaitState::Phase::Blocked) continue;
      if (!blocked.empty()) blocked += "; ";
      blocked += "rank " + std::to_string(r) + " blocked in " +
                 mpisim::mpi_call_name(st.call);
      t_max = st.t_virtual > t_max ? st.t_virtual : t_max;
    }
    for (const int r : fe->killed_ranks()) {
      Diagnostic d;
      d.category = Category::InjectedFault;
      d.severity = Severity::Error;
      d.rank = r;
      d.t_virtual = fe->counters(r).kill_time;
      d.site = "fault plan";
      d.message = "rank " + std::to_string(r) +
                  " was killed by the fault plan at t=" +
                  std::to_string(fe->counters(r).kill_time) +
                  "; surviving ranks blocked waiting on it" +
                  (blocked.empty() ? std::string() : " (" + blocked + ")");
      sink_.emit(std::move(d));
    }
    if (fe->killed_ranks().empty()) {
      Diagnostic d;
      d.category = Category::InjectedFault;
      d.severity = Severity::Error;
      d.t_virtual = t_max;
      d.site = "fault plan";
      d.message =
          "world quiescent after injected message loss (retransmit budget "
          "exhausted): " +
          fe->summary() +
          (blocked.empty() ? std::string() : " (" + blocked + ")");
      sink_.emit(std::move(d));
    }
    deadlock_reported_.store(true);
    world_->abort();  // wake the blocked ranks with Err::Aborted
    return;
  }

  report_deadlock(waitgraph_.snapshot());
}

void MpiChecker::report_deadlock(const std::vector<RankWaitState>& states) {
  const WaitGraph::Analysis analysis = WaitGraph::analyze(states, comms_);
  if (analysis.cycles.empty() && analysis.orphans.empty()) {
    // Quiescence is exact — the world IS deadlocked even when the wait
    // graph can't name a cycle (e.g. a rank blocked below the hook layer).
    // Report what is known instead of staying silent.
    Diagnostic d;
    d.category = Category::Deadlock;
    d.severity = Severity::Error;
    double t_max = 0.0;
    std::string detail;
    bool test_loop = false;
    for (std::size_t r = 0; r < states.size(); ++r) {
      const auto& st = states[r];
      if (st.phase != RankWaitState::Phase::Blocked) continue;
      if (st.call == MpiCall::Test) test_loop = true;
      if (d.rank < 0) {
        d.rank = static_cast<int>(r);
        d.comm_context = st.comm_context;
        d.site = mpisim::mpi_call_name(st.call);
      }
      if (!detail.empty()) detail += "; ";
      detail += "rank " + std::to_string(r) + " blocked in " +
                mpisim::mpi_call_name(st.call);
      t_max = st.t_virtual > t_max ? st.t_virtual : t_max;
    }
    d.t_virtual = t_max;
    // A rank parked inside MPI_Test distinguishes the classic test-loop
    // livelock (polling a request whose completion never arrives) from an
    // opaque deadlock below the hook layer.
    d.message =
        (test_loop
             ? std::string("test-loop livelock: rank(s) polling MPI_Test on "
                           "a request whose completion can never arrive")
             : std::string("world quiescent: no rank can make progress, but "
                           "no wait-for cycle is provable from the observed "
                           "calls")) +
        (detail.empty() ? std::string() : " (" + detail + ")");
    sink_.emit(std::move(d));
    deadlock_reported_.store(true);
    world_->abort();  // wake the blocked ranks with Err::Aborted
    return;
  }

  for (const auto& cycle : analysis.cycles) {
    Diagnostic d;
    d.category = Category::Deadlock;
    d.severity = Severity::Error;
    d.rank = cycle.ranks.front();
    std::string chain;
    std::string detail;
    double t_max = 0.0;
    for (const int r : cycle.ranks) {
      const auto& st = states[static_cast<std::size_t>(r)];
      if (!chain.empty()) chain += "->";
      chain += std::to_string(r);
      if (!detail.empty()) detail += "; ";
      detail += "rank " + std::to_string(r) + " blocked in " +
                mpisim::mpi_call_name(st.call) + " on context " +
                std::to_string(st.comm_context);
      if (!st.collective) {
        detail += st.peer_world >= 0
                      ? " (peer " + std::to_string(st.peer_world) + ")"
                      : " (any source)";
      }
      t_max = st.t_virtual > t_max ? st.t_virtual : t_max;
    }
    chain += "->" + std::to_string(cycle.ranks.front());
    const auto& first = states[static_cast<std::size_t>(cycle.ranks.front())];
    d.comm_context = first.comm_context;
    d.t_virtual = t_max;
    d.site = mpisim::mpi_call_name(first.call);
    d.message = "wait-for cycle " + chain + ": " + detail;
    sink_.emit(std::move(d));
  }

  for (const auto& [waiter, peer] : analysis.orphans) {
    const auto& st = states[static_cast<std::size_t>(waiter)];
    Diagnostic d;
    d.category = Category::Deadlock;
    d.severity = Severity::Error;
    d.rank = waiter;
    d.comm_context = st.comm_context;
    d.t_virtual = st.t_virtual;
    d.site = mpisim::mpi_call_name(st.call);
    d.message = "rank " + std::to_string(waiter) + " blocked in " +
                mpisim::mpi_call_name(st.call) + " waiting on rank " +
                std::to_string(peer) + ", which already reached MPI_Finalize";
    sink_.emit(std::move(d));
  }

  deadlock_reported_.store(true);
  world_->abort();  // wake the blocked ranks with Err::Aborted
}

void MpiChecker::analyze() {
  if (analyzed_.exchange(true)) return;
  // An aborted run (deadlock, error unwind) truncates every rank's log at
  // an arbitrary point — the passes keep their prefix comparisons but drop
  // the "never happened" classes, which would all fire spuriously. A rank
  // killed by the fault plan truncates its own log the same way even when
  // the world finished gracefully.
  const auto* fe = world_->fault_engine();
  const bool aborted =
      world_->aborted() || (fe != nullptr && fe->any_kill_fired());
  resources_.analyze(comms_, sink_, aborted);
  consistency_.analyze(comms_, sink_, aborted);
  lint_.analyze(comms_, sink_, aborted);
}

}  // namespace mpisect::checker
