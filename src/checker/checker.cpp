#include "checker/checker.hpp"

#include <string>
#include <utility>

#include "checker/report.hpp"
#include "mpisim/comm.hpp"

namespace mpisect::checker {

using mpisim::CallInfo;
using mpisim::MpiCall;

std::shared_ptr<MpiChecker> MpiChecker::install(mpisim::World& world,
                                                CheckerOptions options) {
  if (auto existing = world.find_extension<MpiChecker>()) return existing;
  auto self = std::make_shared<MpiChecker>(world, options);
  world.attach_extension(self);
  return self;
}

MpiChecker::MpiChecker(mpisim::World& world, CheckerOptions options)
    : world_(&world),
      options_(options),
      waitgraph_(world.size()),
      resources_(world.size()),
      consistency_(world.size()),
      lint_(world.size()) {
  install_hooks();
  if (options_.deadlock_detection) {
    world_->set_deadlock_handler([this] { on_quiescence(); });
    handler_installed_ = true;
  }
}

MpiChecker::~MpiChecker() { detach(); }

void MpiChecker::install_hooks() {
  prev_ = world_->hooks();
  mpisim::HookTable table;
  const bool chain = options_.chain_hooks;

  table.on_call_begin = [this, chain](mpisim::Ctx& ctx, const CallInfo& info) {
    if (chain && prev_.on_call_begin) prev_.on_call_begin(ctx, info);
    handle_begin(ctx, info);
  };
  table.on_call_end = [this, chain](mpisim::Ctx& ctx, const CallInfo& info) {
    handle_end(ctx, info);
    if (chain && prev_.on_call_end) prev_.on_call_end(ctx, info);
  };
  table.section_enter_cb = [this, chain](mpisim::Ctx& ctx, mpisim::Comm& comm,
                                         const char* label, char* data) {
    lint_.on_event(ctx.rank(), comm.context_id(), /*enter=*/true, label,
                   ctx.now());
    if (chain && prev_.section_enter_cb) {
      prev_.section_enter_cb(ctx, comm, label, data);
    }
  };
  table.section_leave_cb = [this, chain](mpisim::Ctx& ctx, mpisim::Comm& comm,
                                         const char* label, char* data) {
    lint_.on_event(ctx.rank(), comm.context_id(), /*enter=*/false, label,
                   ctx.now());
    if (chain && prev_.section_leave_cb) {
      prev_.section_leave_cb(ctx, comm, label, data);
    }
  };
  table.section_error_cb = [this, chain](mpisim::Ctx& ctx, mpisim::Comm& comm,
                                         const char* label, int code) {
    lint_.on_error(ctx.rank(), label, code, ctx.now(), sink_);
    if (chain && prev_.section_error_cb) {
      prev_.section_error_cb(ctx, comm, label, code);
    }
  };
  table.on_comm_create = [this, chain](mpisim::Ctx& ctx,
                                       const mpisim::CommLifecycle& info) {
    comms_.on_create(info, ctx.now());
    if (chain && prev_.on_comm_create) prev_.on_comm_create(ctx, info);
  };
  table.on_comm_free = [this, chain](mpisim::Ctx& ctx, int context) {
    comms_.on_free(ctx.rank(), context);
    if (chain && prev_.on_comm_free) prev_.on_comm_free(ctx, context);
  };
  table.on_pcontrol = [this, chain](mpisim::Ctx& ctx, int level,
                                    const char* label) {
    if (chain && prev_.on_pcontrol) prev_.on_pcontrol(ctx, level, label);
  };

  world_->hooks() = std::move(table);
  hooks_installed_ = true;
}

void MpiChecker::detach() {
  if (handler_installed_) {
    world_->set_deadlock_handler(nullptr);
    handler_installed_ = false;
  }
  if (hooks_installed_) {
    world_->hooks() = prev_;
    hooks_installed_ = false;
  }
}

int MpiChecker::peer_world(int context, int comm_rank) const {
  if (comm_rank < 0) return -1;
  return comms_.world_rank_of(context, comm_rank);
}

void MpiChecker::handle_begin(mpisim::Ctx& ctx, const CallInfo& info) {
  const int wr = ctx.rank();
  switch (info.call) {
    case MpiCall::Isend:
      resources_.on_request_start(wr, info);
      consistency_.on_send(wr, peer_world(info.comm_context, info.peer), info);
      break;
    case MpiCall::Irecv:
      resources_.on_request_start(wr, info);
      consistency_.on_recv(wr, peer_world(info.comm_context, info.peer), info);
      break;
    case MpiCall::Send:
      consistency_.on_send(wr, peer_world(info.comm_context, info.peer), info);
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Recv:
      consistency_.on_recv(wr, peer_world(info.comm_context, info.peer), info);
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Probe:
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Sendrecv:
      // Matching becomes ambiguous for the observer — taint the pairs.
      consistency_.on_sendrecv(wr, info.comm_context);
      waitgraph_.block(wr, info.call, info.comm_context,
                       peer_world(info.comm_context, info.peer),
                       info.t_virtual);
      break;
    case MpiCall::Wait: {
      // Give the wait a direction from the request it completes.
      CallInfo start;
      int pw = -1;
      if (resources_.lookup_open(wr, info.request, &start)) {
        pw = peer_world(start.comm_context, start.peer);
      }
      waitgraph_.block(wr, info.call, info.comm_context, pw, info.t_virtual);
      break;
    }
    default:
      if (mpisim::is_collective(info.call)) {
        consistency_.on_collective(wr, info);
        if (mpisim::is_blocking(info.call)) {
          waitgraph_.block(wr, info.call, info.comm_context, -1,
                           info.t_virtual);
        }
      }
      break;
  }
}

void MpiChecker::handle_end(mpisim::Ctx& ctx, const CallInfo& info) {
  const int wr = ctx.rank();
  switch (info.call) {
    case MpiCall::Wait:
      resources_.on_request_complete(wr, info.request);
      waitgraph_.unblock(wr, info.call, info.comm_context);
      break;
    case MpiCall::Finalize:
      waitgraph_.set_finished(wr);
      break;
    case MpiCall::Isend:
    case MpiCall::Irecv:
      break;  // nonblocking: tracked at begin, completed by Wait
    default:
      if (mpisim::is_blocking(info.call)) {
        waitgraph_.unblock(wr, info.call, info.comm_context);
      }
      break;
  }
}

void MpiChecker::on_rank_init(mpisim::Ctx& ctx) {
  waitgraph_.set_running(ctx.rank());
}

void MpiChecker::on_rank_finalize(mpisim::Ctx& ctx) { (void)ctx; }

void MpiChecker::on_quiescence() {
  // Runs on whichever rank task (or scheduler worker) proved quiescence.
  // The scheduler fires at most once per run, but an abort already in
  // flight can race the proof — don't double-report.
  if (deadlock_reported_.load() || world_->aborted()) return;
  report_deadlock(waitgraph_.snapshot());
}

void MpiChecker::report_deadlock(const std::vector<RankWaitState>& states) {
  const WaitGraph::Analysis analysis = WaitGraph::analyze(states, comms_);
  if (analysis.cycles.empty() && analysis.orphans.empty()) {
    // Quiescence is exact — the world IS deadlocked even when the wait
    // graph can't name a cycle (e.g. a rank blocked below the hook layer).
    // Report what is known instead of staying silent.
    Diagnostic d;
    d.category = Category::Deadlock;
    d.severity = Severity::Error;
    double t_max = 0.0;
    std::string detail;
    for (std::size_t r = 0; r < states.size(); ++r) {
      const auto& st = states[r];
      if (st.phase != RankWaitState::Phase::Blocked) continue;
      if (d.rank < 0) {
        d.rank = static_cast<int>(r);
        d.comm_context = st.comm_context;
        d.site = mpisim::mpi_call_name(st.call);
      }
      if (!detail.empty()) detail += "; ";
      detail += "rank " + std::to_string(r) + " blocked in " +
                mpisim::mpi_call_name(st.call);
      t_max = st.t_virtual > t_max ? st.t_virtual : t_max;
    }
    d.t_virtual = t_max;
    d.message =
        "world quiescent: no rank can make progress, but no wait-for cycle "
        "is provable from the observed calls" +
        (detail.empty() ? std::string() : " (" + detail + ")");
    sink_.emit(std::move(d));
    deadlock_reported_.store(true);
    world_->abort();  // wake the blocked ranks with Err::Aborted
    return;
  }

  for (const auto& cycle : analysis.cycles) {
    Diagnostic d;
    d.category = Category::Deadlock;
    d.severity = Severity::Error;
    d.rank = cycle.ranks.front();
    std::string chain;
    std::string detail;
    double t_max = 0.0;
    for (const int r : cycle.ranks) {
      const auto& st = states[static_cast<std::size_t>(r)];
      if (!chain.empty()) chain += "->";
      chain += std::to_string(r);
      if (!detail.empty()) detail += "; ";
      detail += "rank " + std::to_string(r) + " blocked in " +
                mpisim::mpi_call_name(st.call) + " on context " +
                std::to_string(st.comm_context);
      if (!st.collective) {
        detail += st.peer_world >= 0
                      ? " (peer " + std::to_string(st.peer_world) + ")"
                      : " (any source)";
      }
      t_max = st.t_virtual > t_max ? st.t_virtual : t_max;
    }
    chain += "->" + std::to_string(cycle.ranks.front());
    const auto& first = states[static_cast<std::size_t>(cycle.ranks.front())];
    d.comm_context = first.comm_context;
    d.t_virtual = t_max;
    d.site = mpisim::mpi_call_name(first.call);
    d.message = "wait-for cycle " + chain + ": " + detail;
    sink_.emit(std::move(d));
  }

  for (const auto& [waiter, peer] : analysis.orphans) {
    const auto& st = states[static_cast<std::size_t>(waiter)];
    Diagnostic d;
    d.category = Category::Deadlock;
    d.severity = Severity::Error;
    d.rank = waiter;
    d.comm_context = st.comm_context;
    d.t_virtual = st.t_virtual;
    d.site = mpisim::mpi_call_name(st.call);
    d.message = "rank " + std::to_string(waiter) + " blocked in " +
                mpisim::mpi_call_name(st.call) + " waiting on rank " +
                std::to_string(peer) + ", which already reached MPI_Finalize";
    sink_.emit(std::move(d));
  }

  deadlock_reported_.store(true);
  world_->abort();  // wake the blocked ranks with Err::Aborted
}

void MpiChecker::analyze() {
  if (analyzed_.exchange(true)) return;
  // An aborted run (deadlock, error unwind) truncates every rank's log at
  // an arbitrary point — the passes keep their prefix comparisons but drop
  // the "never happened" classes, which would all fire spuriously.
  const bool aborted = world_->aborted();
  resources_.analyze(comms_, sink_, aborted);
  consistency_.analyze(comms_, sink_, aborted);
  lint_.analyze(comms_, sink_, aborted);
}

}  // namespace mpisect::checker
