// Communicator bookkeeping built from CommLifecycle hook events.
//
// mpicheck learns about every communicator the application creates through
// HookTable::on_comm_create — world creation, split, dup — with zero app
// cooperation. The registry answers the two questions the analyses need:
//   * group resolution: which world rank is comm rank k of context c?
//     (the wait-for graph runs on world ranks; CallInfo peers are comm
//     ranks), and
//   * lifecycle accounting: which members created a handle and never freed
//     it (MPI_Comm_free hygiene, reported by the leak pass).
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "mpisim/hooks.hpp"

namespace mpisect::checker {

class CommRegistry {
 public:
  struct Record {
    int context = -1;
    int parent_context = -1;
    std::vector<int> world_ranks;  ///< indexed by comm rank
    std::vector<char> created;     ///< per member: handle observed
    std::vector<char> freed;       ///< per member: handle freed
    double t_create = 0.0;
  };

  /// Record that `info.rank` became a member of `info.context`.
  void on_create(const mpisim::CommLifecycle& info, double t_virtual);
  /// Record that world rank `world_rank` freed its handle to `context`.
  void on_free(int world_rank, int context);

  /// World rank of comm rank `comm_rank` in `context`; -1 if unknown.
  [[nodiscard]] int world_rank_of(int context, int comm_rank) const;
  /// Member world ranks of `context` (empty if unknown).
  [[nodiscard]] std::vector<int> members(int context) const;
  /// Snapshot of every registered communicator, by context id.
  [[nodiscard]] std::vector<Record> records() const;

 private:
  mutable std::mutex mu_;
  std::map<int, Record> comms_;
};

}  // namespace mpisect::checker
