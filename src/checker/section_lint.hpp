// Lint for MPIX_Section usage.
//
// Two sources feed this pass:
//
//   * the runtime's section_error_cb, which fires on every rejected
//     operation (bad label, exit with empty stack, exit label not matching
//     the stack top, cross-rank validation mismatch, section still open at
//     MPI_Finalize) — mapped immediately to SectionMisuse diagnostics with
//     the offending rank and virtual time;
//   * the successful enter/leave stream, recorded per rank per context into
//     shadow sequences and compared across ranks post-run: sections are
//     collective on their communicator, so every member must perform the
//     same (label, enter/exit) sequence. This catches label divergence and
//     missing enters even when the runtime's validation mode is off.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "checker/comm_registry.hpp"
#include "checker/diagnostics.hpp"

namespace mpisect::checker {

class SectionLint {
 public:
  explicit SectionLint(int nranks);

  /// Rank thread: successful section enter/leave on `context`.
  void on_event(int world_rank, int context, bool enter, const char* label,
                double t_virtual);
  /// Rank thread (or finalize path): the sections layer rejected an
  /// operation with `code` (a sections::SectionResult value).
  void on_error(int world_rank, const char* label, int code, double t_virtual,
                DiagnosticSink& sink);

  /// Post-run: cross-rank comparison of the per-context event sequences.
  /// `aborted` suppresses the length comparison (an unwound run truncates
  /// logs mid-section); label divergence on the common prefix still counts.
  void analyze(const CommRegistry& comms, DiagnosticSink& sink,
               bool aborted) const;

  /// Number of runtime-rejected operations seen (for tests).
  [[nodiscard]] std::size_t error_events() const noexcept {
    return error_events_;
  }

 private:
  struct Event {
    int context;
    bool enter;
    std::string label;
    double t_virtual;
  };
  struct PerRank {
    std::vector<Event> events;
  };
  std::vector<PerRank> ranks_;
  std::size_t error_events_ = 0;
  std::mutex err_mu_;  ///< on_error may fire from any rank thread
};

}  // namespace mpisect::checker
