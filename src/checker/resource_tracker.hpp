// Request and communicator lifecycle accounting (the MUST "resource leak"
// class).
//
// Nonblocking operations are tracked by the request id the runtime stamps
// into CallInfo (Isend/Irecv assign it, the completing Wait repeats it).
// Anything still open when the world finishes is a leak: a pending
// nonblocking operation (never waited) at MPI_Finalize. Communicator
// lifecycle is read from the CommRegistry: every member that obtained a
// handle via split/dup must free it before finalize.
//
// Storage is per-rank and owner-thread-only during the run; the analysis
// runs after World::run() has joined every rank thread.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "checker/comm_registry.hpp"
#include "checker/diagnostics.hpp"
#include "mpisim/hooks.hpp"

namespace mpisect::checker {

class ResourceTracker {
 public:
  explicit ResourceTracker(int nranks);

  /// Rank thread: Isend/Irecv observed (CallInfo carries the request id).
  void on_request_start(int world_rank, const mpisim::CallInfo& info);
  /// Rank thread: Wait completed the request.
  void on_request_complete(int world_rank, std::uint64_t request);
  /// Kind of an open request on `world_rank` (Isend/Irecv), or nullopt-ish:
  /// returns false if unknown/completed. Used by the deadlock pass to give
  /// MPI_Wait a direction.
  [[nodiscard]] bool lookup_open(int world_rank, std::uint64_t request,
                                 mpisim::CallInfo* out) const;

  /// Post-run: report never-completed requests and never-freed
  /// communicators into the sink. `aborted` suppresses everything — an
  /// unwound run leaves resources open through no fault of the app.
  void analyze(const CommRegistry& comms, DiagnosticSink& sink,
               bool aborted) const;

 private:
  struct PerRank {
    std::map<std::uint64_t, mpisim::CallInfo> open;  ///< id -> start info
  };
  std::vector<PerRank> ranks_;
};

}  // namespace mpisect::checker
