// Cross-rank wait-for graph for deadlock detection.
//
// Every rank task publishes what it is currently blocked on (receive,
// wait, probe, rendezvous send, collective) on entry to a blocking call and
// clears the slot on exit. When the scheduler proves quiescence — every
// live rank parked with no wake pending (checker.cpp's deadlock handler) —
// the snapshot is analyzed:
//
//   * p2p edges: a blocked receive/wait/probe/send points at the world rank
//     it needs; an any-source receive conservatively points at every other
//     member of its communicator;
//   * collective edges: a rank blocked in the Nth collective on a context
//     points at every member that has neither completed that ordinal nor
//     arrived at it (per-rank completed-collective counters disambiguate
//     rounds, so a root legitimately running ahead creates no edge);
//   * a cycle is a deadlock; an edge to a finalized rank is an orphaned
//     wait (also a deadlock — the peer can never satisfy it).
//
// All mutation is mutex-protected: rank tasks write their own slot, the
// quiescence handler reads all of them.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "checker/comm_registry.hpp"
#include "mpisim/hooks.hpp"

namespace mpisect::checker {

/// What one world rank is doing right now, as seen through the hooks.
struct RankWaitState {
  enum class Phase { Running, Blocked, Finished };
  Phase phase = Phase::Running;

  // Valid while phase == Blocked:
  mpisim::MpiCall call = mpisim::MpiCall::Init;
  bool collective = false;
  int comm_context = -1;
  int peer_world = -1;  ///< awaited world rank; -1 = any source / unknown
  double t_virtual = 0.0;
  std::uint64_t coll_ordinal = 0;  ///< which collective round (if collective)

  /// Completed collectives per context (ordinal disambiguation).
  std::map<int, std::uint64_t> coll_done;
};

class WaitGraph {
 public:
  explicit WaitGraph(int nranks);

  /// Rank thread: entering a blocking call. For collectives the ordinal is
  /// assigned from the rank's completed-count for that context.
  void block(int rank, mpisim::MpiCall call, int comm_context, int peer_world,
             double t_virtual);
  /// Rank thread: the blocking call returned.
  void unblock(int rank, mpisim::MpiCall call, int comm_context);
  void set_running(int rank);
  void set_finished(int rank);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(nranks_);
  }
  /// Monotonic counter bumped on every state transition (diagnostic; the
  /// old sampling watchdog used it, quiescence is now proven exactly).
  [[nodiscard]] std::uint64_t progress() const;
  [[nodiscard]] int blocked_count() const;
  [[nodiscard]] std::vector<RankWaitState> snapshot() const;

  struct Cycle {
    std::vector<int> ranks;  ///< in wait-for order, first = smallest member
  };
  struct Analysis {
    std::vector<Cycle> cycles;
    /// (waiter, finished peer) pairs: waits that can never be satisfied.
    std::vector<std::pair<int, int>> orphans;
  };
  /// Analyze a quiescent snapshot. Pure function of the snapshot + registry.
  [[nodiscard]] static Analysis analyze(
      const std::vector<RankWaitState>& states, const CommRegistry& comms);

 private:
  std::size_t nranks_;
  mutable std::mutex mu_;
  std::vector<RankWaitState> states_;
  std::uint64_t progress_ = 0;
};

}  // namespace mpisect::checker
