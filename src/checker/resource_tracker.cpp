#include "checker/resource_tracker.hpp"

#include <string>

namespace mpisect::checker {

ResourceTracker::ResourceTracker(int nranks)
    : ranks_(static_cast<std::size_t>(nranks)) {}

void ResourceTracker::on_request_start(int world_rank,
                                       const mpisim::CallInfo& info) {
  if (info.request == 0) return;
  ranks_[static_cast<std::size_t>(world_rank)].open[info.request] = info;
}

void ResourceTracker::on_request_complete(int world_rank,
                                          std::uint64_t request) {
  if (request == 0) return;
  ranks_[static_cast<std::size_t>(world_rank)].open.erase(request);
}

bool ResourceTracker::lookup_open(int world_rank, std::uint64_t request,
                                  mpisim::CallInfo* out) const {
  const auto& open = ranks_[static_cast<std::size_t>(world_rank)].open;
  const auto it = open.find(request);
  if (it == open.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void ResourceTracker::analyze(const CommRegistry& comms, DiagnosticSink& sink,
                              bool aborted) const {
  if (aborted) return;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    for (const auto& [id, info] : ranks_[r].open) {
      Diagnostic d;
      d.category = Category::ResourceLeak;
      d.severity = Severity::Error;
      d.rank = static_cast<int>(r);
      d.comm_context = info.comm_context;
      d.t_virtual = info.t_virtual;
      d.site = mpisim::mpi_call_name(info.call);
      d.message = std::string(mpisim::mpi_call_name(info.call)) +
                  " request #" + std::to_string(id) + " (peer " +
                  std::to_string(info.peer) + ", " +
                  std::to_string(info.bytes) +
                  " bytes) never completed before MPI_Finalize";
      sink.emit(std::move(d));
    }
  }

  for (const auto& rec : comms.records()) {
    if (rec.parent_context < 0) continue;  // the world communicator
    std::string leakers;
    int first_leaker = -1;
    int nleaked = 0;
    for (std::size_t i = 0; i < rec.created.size(); ++i) {
      if (rec.created[i] == 0 || (i < rec.freed.size() && rec.freed[i] != 0)) {
        continue;
      }
      const int wr = i < rec.world_ranks.size()
                         ? rec.world_ranks[i]
                         : static_cast<int>(i);
      if (first_leaker < 0) first_leaker = wr;
      if (!leakers.empty()) leakers += ",";
      leakers += std::to_string(wr);
      ++nleaked;
    }
    if (nleaked == 0) continue;
    Diagnostic d;
    d.category = Category::ResourceLeak;
    d.severity = Severity::Error;
    d.rank = first_leaker;
    d.comm_context = rec.context;
    d.t_virtual = rec.t_create;
    d.site = "MPI_Comm_free";
    d.message = "communicator context " + std::to_string(rec.context) +
                " (derived from context " +
                std::to_string(rec.parent_context) + ") never freed by " +
                std::to_string(nleaked) + " rank(s): " + leakers;
    sink.emit(std::move(d));
  }
}

}  // namespace mpisect::checker
