#include "checker/waitgraph.hpp"

#include <algorithm>

namespace mpisect::checker {

WaitGraph::WaitGraph(int nranks)
    : nranks_(static_cast<std::size_t>(nranks)),
      states_(static_cast<std::size_t>(nranks)) {}

void WaitGraph::block(int rank, mpisim::MpiCall call, int comm_context,
                      int peer_world, double t_virtual) {
  const std::lock_guard lock(mu_);
  auto& st = states_[static_cast<std::size_t>(rank)];
  st.phase = RankWaitState::Phase::Blocked;
  st.call = call;
  st.collective = mpisim::is_collective(call);
  st.comm_context = comm_context;
  st.peer_world = peer_world;
  st.t_virtual = t_virtual;
  if (st.collective) st.coll_ordinal = st.coll_done[comm_context];
  ++progress_;
}

void WaitGraph::unblock(int rank, mpisim::MpiCall call, int comm_context) {
  const std::lock_guard lock(mu_);
  auto& st = states_[static_cast<std::size_t>(rank)];
  st.phase = RankWaitState::Phase::Running;
  if (mpisim::is_collective(call)) ++st.coll_done[comm_context];
  ++progress_;
}

void WaitGraph::set_running(int rank) {
  const std::lock_guard lock(mu_);
  auto& st = states_[static_cast<std::size_t>(rank)];
  st = RankWaitState{};  // fresh run: clear Finished and collective counters
  ++progress_;
}

void WaitGraph::set_finished(int rank) {
  const std::lock_guard lock(mu_);
  states_[static_cast<std::size_t>(rank)].phase =
      RankWaitState::Phase::Finished;
  ++progress_;
}

std::uint64_t WaitGraph::progress() const {
  const std::lock_guard lock(mu_);
  return progress_;
}

int WaitGraph::blocked_count() const {
  const std::lock_guard lock(mu_);
  int n = 0;
  for (const auto& st : states_) {
    if (st.phase == RankWaitState::Phase::Blocked) ++n;
  }
  return n;
}

std::vector<RankWaitState> WaitGraph::snapshot() const {
  const std::lock_guard lock(mu_);
  return states_;
}

namespace {

/// True if member `m` cannot be the reason rank `r` is stuck in collective
/// round (context, ordinal): it already completed that round, or it is
/// blocked in the same round right now.
bool collective_arrived(const RankWaitState& m, int context,
                        std::uint64_t ordinal) {
  const auto it = m.coll_done.find(context);
  const std::uint64_t done = it == m.coll_done.end() ? 0 : it->second;
  if (done > ordinal) return true;
  return m.phase == RankWaitState::Phase::Blocked && m.collective &&
         m.comm_context == context && m.coll_ordinal == ordinal;
}

std::vector<std::vector<int>> build_edges(
    const std::vector<RankWaitState>& states, const CommRegistry& comms) {
  const int n = static_cast<int>(states.size());
  std::vector<std::vector<int>> edges(states.size());
  for (int r = 0; r < n; ++r) {
    const auto& st = states[static_cast<std::size_t>(r)];
    if (st.phase != RankWaitState::Phase::Blocked) continue;
    auto& out = edges[static_cast<std::size_t>(r)];
    if (st.collective) {
      for (const int m : comms.members(st.comm_context)) {
        if (m == r || m < 0 || m >= n) continue;
        if (!collective_arrived(states[static_cast<std::size_t>(m)],
                                st.comm_context, st.coll_ordinal)) {
          out.push_back(m);
        }
      }
    } else if (st.peer_world >= 0 && st.peer_world < n) {
      out.push_back(st.peer_world);
    } else if (st.peer_world < 0) {
      // Any-source wait: conservatively depends on every other member.
      for (const int m : comms.members(st.comm_context)) {
        if (m != r && m >= 0 && m < n) out.push_back(m);
      }
    }
  }
  return edges;
}

/// DFS cycle search; returns each distinct cycle once (deduped by its
/// sorted member set), rotated so the smallest rank leads.
std::vector<WaitGraph::Cycle> find_cycles(
    const std::vector<std::vector<int>>& edges) {
  const int n = static_cast<int>(edges.size());
  std::vector<WaitGraph::Cycle> cycles;
  std::vector<std::vector<int>> seen_sets;
  std::vector<int> color(edges.size(), 0);  // 0=white 1=on-stack 2=done
  std::vector<int> stack;

  // Iterative DFS with explicit edge indices.
  for (int root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    std::vector<std::pair<int, std::size_t>> frames{{root, 0}};
    color[static_cast<std::size_t>(root)] = 1;
    stack.push_back(root);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const auto& out = edges[static_cast<std::size_t>(node)];
      if (next < out.size()) {
        const int to = out[next++];
        if (color[static_cast<std::size_t>(to)] == 1) {
          // Back edge: the cycle is the stack suffix starting at `to`.
          const auto it = std::find(stack.begin(), stack.end(), to);
          std::vector<int> members(it, stack.end());
          std::vector<int> key = members;
          std::sort(key.begin(), key.end());
          if (std::find(seen_sets.begin(), seen_sets.end(), key) ==
              seen_sets.end()) {
            seen_sets.push_back(key);
            const auto min_it =
                std::min_element(members.begin(), members.end());
            std::rotate(members.begin(), min_it, members.end());
            cycles.push_back({std::move(members)});
          }
        } else if (color[static_cast<std::size_t>(to)] == 0) {
          color[static_cast<std::size_t>(to)] = 1;
          stack.push_back(to);
          frames.emplace_back(to, 0);
        }
      } else {
        color[static_cast<std::size_t>(node)] = 2;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  return cycles;
}

}  // namespace

WaitGraph::Analysis WaitGraph::analyze(
    const std::vector<RankWaitState>& states, const CommRegistry& comms) {
  Analysis result;
  const auto edges = build_edges(states, comms);
  result.cycles = find_cycles(edges);
  for (std::size_t r = 0; r < states.size(); ++r) {
    if (states[r].phase != RankWaitState::Phase::Blocked) continue;
    for (const int to : edges[r]) {
      if (states[static_cast<std::size_t>(to)].phase ==
          RankWaitState::Phase::Finished) {
        result.orphans.emplace_back(static_cast<int>(r), to);
        break;
      }
    }
  }
  return result;
}

}  // namespace mpisect::checker
