// Structured findings for mpicheck.
//
// Every analysis pass (deadlock, resource leak, collective consistency,
// section lint) reports through one DiagnosticSink so a run produces a
// single ordered list of findings that the reporters (checker/report.hpp)
// can render as text, CSV or JSON. Diagnostics carry the offending world
// rank, the virtual time at which the condition was observed, the call or
// section label, and a severity — the fields MUST-style tools print.
//
// The sink is mutex-protected: runtime passes emit from rank threads and
// from the deadlock watchdog concurrently.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace mpisect::checker {

enum class Severity { Info, Warning, Error };

enum class Category {
  Deadlock,            ///< cross-rank wait-for cycle or orphaned wait
  ResourceLeak,        ///< unfreed request/communicator, pending op
  CollectiveMismatch,  ///< call/root/count disagreement across ranks
  P2PMismatch,         ///< send/recv size (datatype-count) mismatch
  SectionMisuse,       ///< unbalanced/misnested/mismatched MPIX_Section use
  InjectedFault,       ///< hang/kill traced to the run's fault plan
  MessageRace,         ///< wildcard receive with >1 concurrent eligible send
  LatentDeadlock,      ///< alternate matching of a completed run deadlocks
};

inline constexpr int kCategoryCount = static_cast<int>(Category::LatentDeadlock) + 1;

[[nodiscard]] const char* severity_name(Severity s) noexcept;
/// Upper-case report tag ("DEADLOCK", "RESOURCE_LEAK", ...).
[[nodiscard]] const char* category_name(Category c) noexcept;

/// One finding.
struct Diagnostic {
  Category category = Category::Deadlock;
  Severity severity = Severity::Error;
  int rank = -1;          ///< primary offending world rank; -1 = global
  int comm_context = -1;  ///< communicator involved; -1 = n/a
  double t_virtual = 0.0; ///< virtual time of the observation
  std::string site;       ///< call site label (MPI call or section label)
  std::string message;    ///< human-readable description
};

/// Thread-safe collector of findings.
class DiagnosticSink {
 public:
  void emit(Diagnostic d);

  /// Snapshot of all findings in emission order.
  [[nodiscard]] std::vector<Diagnostic> diagnostics() const;
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t count(Category c) const;
  [[nodiscard]] std::size_t error_count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> diags_;
};

}  // namespace mpisect::checker
