#include "checker/report.hpp"

#include <array>
#include <cstdio>
#include <string>

#include "support/csv.hpp"
#include "support/provenance.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::checker {

namespace {

std::string format_time(double t) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.6f", t);
  return buf.data();
}

/// The CSV writer does not quote cells, so keep separators out of them.
std::string csv_safe(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n') c = ';';
  }
  return s;
}

}  // namespace

std::string render_text(const std::vector<Diagnostic>& diags) {
  support::TextTable table;
  table.set_header(
      {"category", "severity", "rank", "comm", "t_virtual", "site", "message"});
  table.set_align({support::TextTable::Align::Left,
                   support::TextTable::Align::Left,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Right,
                   support::TextTable::Align::Left,
                   support::TextTable::Align::Left});
  for (const auto& d : diags) {
    table.add_row({category_name(d.category), severity_name(d.severity),
                   std::to_string(d.rank), std::to_string(d.comm_context),
                   format_time(d.t_virtual), d.site, d.message});
  }
  return table.render();
}

std::string render_csv(const std::vector<Diagnostic>& diags) {
  support::CsvWriter csv(
      {"category", "severity", "rank", "comm", "t_virtual", "site", "message"});
  for (const auto& d : diags) {
    csv.add_row(std::vector<std::string>{
        category_name(d.category), severity_name(d.severity),
        std::to_string(d.rank), std::to_string(d.comm_context),
        format_time(d.t_virtual), csv_safe(d.site), csv_safe(d.message)});
  }
  return support::provenance_csv_comment() + csv.str();
}

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    out += "  {\"category\": \"";
    out += category_name(d.category);
    out += "\", \"severity\": \"";
    out += severity_name(d.severity);
    out += "\", \"rank\": " + std::to_string(d.rank);
    out += ", \"comm\": " + std::to_string(d.comm_context);
    out += ", \"t_virtual\": " + format_time(d.t_virtual);
    out += ", \"site\": \"" + support::json_escape(d.site);
    out += "\", \"message\": \"" + support::json_escape(d.message) + "\"}";
    out += i + 1 < diags.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

std::string render_summary(const std::vector<Diagnostic>& diags) {
  return render_summary(diags, "mpicheck");
}

std::string render_summary(const std::vector<Diagnostic>& diags,
                           const std::string& tool) {
  if (diags.empty()) return tool + ": no findings";
  std::array<std::size_t, kCategoryCount> per_cat{};
  for (const auto& d : diags) {
    ++per_cat[static_cast<std::size_t>(d.category)];
  }
  std::string out = tool + ": " + std::to_string(diags.size()) + " finding(s):";
  for (int c = 0; c < kCategoryCount; ++c) {
    if (per_cat[static_cast<std::size_t>(c)] == 0) continue;
    out += " ";
    out += category_name(static_cast<Category>(c));
    out += "=" + std::to_string(per_cat[static_cast<std::size_t>(c)]);
  }
  return out;
}

}  // namespace mpisect::checker
