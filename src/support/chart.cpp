#include "support/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/strings.hpp"

namespace mpisect::support {
namespace {

constexpr const char kGlyphs[] = "*o+x#@%&";

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log2(std::max(v, 1e-300));
}

}  // namespace

std::string line_chart(const std::vector<Series>& series,
                       const ChartOptions& opts) {
  const int w = std::max(opts.width, 10);
  const int h = std::max(opts.height, 4);

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < std::min(s.x.size(), s.y.size()); ++i) {
      const double tx = transform(s.x[i], opts.log_x);
      const double ty = transform(s.y[i], opts.log_y);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
    }
  }
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) return "(empty chart)\n";
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof kGlyphs - 1)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < std::min(s.x.size(), s.y.size()); ++i) {
      const double tx = transform(s.x[i], opts.log_x);
      const double ty = transform(s.y[i], opts.log_y);
      int col = static_cast<int>(std::lround((tx - xmin) / (xmax - xmin) *
                                             (w - 1)));
      int row = static_cast<int>(std::lround((ty - ymin) / (ymax - ymin) *
                                             (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      // Row 0 is the top of the plot.
      grid[static_cast<std::size_t>(h - 1 - row)]
          [static_cast<std::size_t>(col)] = glyph;
    }
  }

  std::string out;
  if (!opts.title.empty()) out += "  " + opts.title + "\n";
  const std::string ylab_hi =
      fmt_auto(opts.log_y ? std::exp2(ymax) : ymax);
  const std::string ylab_lo =
      fmt_auto(opts.log_y ? std::exp2(ymin) : ymin);
  const std::size_t margin = std::max(ylab_hi.size(), ylab_lo.size());
  for (int r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = pad_left(ylab_hi, margin);
    if (r == h - 1) label = pad_left(ylab_lo, margin);
    out += label + " |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += std::string(margin, ' ') + " +" + std::string(static_cast<std::size_t>(w), '-') + "\n";
  const std::string xlab_lo = fmt_auto(opts.log_x ? std::exp2(xmin) : xmin);
  const std::string xlab_hi = fmt_auto(opts.log_x ? std::exp2(xmax) : xmax);
  std::string xaxis = std::string(margin, ' ') + "  " + xlab_lo;
  const std::size_t room = margin + 2 + static_cast<std::size_t>(w);
  if (xaxis.size() + xlab_hi.size() < room) {
    xaxis += std::string(room - xaxis.size() - xlab_hi.size(), ' ');
  }
  xaxis += xlab_hi;
  out += xaxis + "\n";
  if (!opts.x_label.empty()) {
    out += std::string(margin, ' ') + "  x: " + opts.x_label +
           (opts.log_x ? " (log2)" : "") + "\n";
  }
  if (!opts.y_label.empty()) {
    out += std::string(margin, ' ') + "  y: " + opts.y_label +
           (opts.log_y ? " (log2)" : "") + "\n";
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += std::string(margin, ' ') + "  " +
           kGlyphs[si % (sizeof kGlyphs - 1)] + " = " + series[si].name + "\n";
  }
  return out;
}

std::string bar_chart(const std::vector<std::string>& labels,
                      const std::vector<double>& values, int width,
                      const std::string& title) {
  std::string out;
  if (!title.empty()) out += "  " + title + "\n";
  const std::size_t n = std::min(labels.size(), values.size());
  double vmax = 0.0;
  std::size_t lw = 0;
  for (std::size_t i = 0; i < n; ++i) {
    vmax = std::max(vmax, values[i]);
    lw = std::max(lw, labels[i].size());
  }
  if (vmax <= 0.0) vmax = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int bar = static_cast<int>(
        std::lround(values[i] / vmax * std::max(width, 1)));
    out += "  " + pad_right(labels[i], lw) + " |" +
           std::string(static_cast<std::size_t>(std::max(bar, 0)), '#') + " " +
           fmt_auto(values[i]) + "\n";
  }
  return out;
}

}  // namespace mpisect::support
