// Build/run provenance shared by every CLI and exporter.
//
// The satellite requirement: a result file you find on disk six months
// later must say what produced it. provenance() collects the configure-time
// build identity (git describe, build type, sanitizer) plus optional
// per-run fields (machine model preset, seed); the helpers render it as a
// one-line CLI banner, a `# `-prefixed CSV comment header, or a JSON
// object fragment. Deliberately no wall-clock timestamp: exported files
// must stay byte-identical across same-seed runs (determinism tests
// compare them).
#pragma once

#include <string>

namespace mpisect::support {

struct Provenance {
  std::string version;    ///< project version (CMake PROJECT_VERSION)
  std::string git;        ///< git describe --always --dirty at configure
  std::string build_type; ///< CMAKE_BUILD_TYPE
  std::string sanitizer;  ///< "none" | "address" | "thread"
  std::string machine;    ///< machine model preset (when a run is attached)
  std::string seed;       ///< run seed, decimal (when a run is attached)
};

/// Build identity of this binary (machine/seed empty).
[[nodiscard]] Provenance build_provenance();

/// One-line banner: "mpisect <version> (<git>, <build_type>, sanitizer=..)".
/// `program` prefixes the line when non-empty.
[[nodiscard]] std::string provenance_banner(const std::string& program = {});

/// `# `-prefixed comment line(s) for CSV headers, newline-terminated.
/// Parsers in this repo skip lines starting with '#'.
[[nodiscard]] std::string provenance_csv_comment(const Provenance& p);
[[nodiscard]] std::string provenance_csv_comment();

/// JSON object (no trailing comma): {"version":...,"git":...,...}. Empty
/// machine/seed fields are omitted.
[[nodiscard]] std::string provenance_json(const Provenance& p);
[[nodiscard]] std::string provenance_json();

}  // namespace mpisect::support
