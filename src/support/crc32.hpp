// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Used by the .mpstz codec as a per-chunk integrity check: the CRC of the
// *decompressed* chunk payload is stored in the chunk index, so corruption
// anywhere in the compression pipeline (index, Huffman tables, bitstream)
// surfaces as a deterministic mismatch instead of garbage events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mpisect::support {

/// One-shot CRC-32 of `data`. `seed` chains incremental updates:
/// crc32(b, crc32(a)) == crc32(a + b).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace mpisect::support
