#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/strings.hpp"

namespace mpisect::support {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (bins < 1 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins >= 1 and hi > lo");
  }
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

Histogram Histogram::from_samples(const std::vector<double>& xs, int bins) {
  double lo = 0.0;
  double hi = 1.0;
  if (!xs.empty()) {
    lo = *std::min_element(xs.begin(), xs.end());
    hi = *std::max_element(xs.begin(), xs.end());
  }
  if (!(hi > lo)) hi = lo + 1.0;
  const double pad = (hi - lo) * 0.05;
  Histogram h(lo - pad, hi + pad, bins);
  for (const double x : xs) h.add(x);
  return h;
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  int bin = static_cast<int>(t * bins());
  bin = std::clamp(bin, 0, bins() - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

long Histogram::bin_count(int bin) const {
  return counts_.at(static_cast<std::size_t>(bin));
}

double Histogram::bin_lo(int bin) const {
  return lo_ + (hi_ - lo_) * bin / bins();
}

double Histogram::bin_hi(int bin) const {
  return lo_ + (hi_ - lo_) * (bin + 1) / bins();
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (int b = 0; b < bins(); ++b) {
    const double next = cum + static_cast<double>(bin_count(b));
    if (next >= target) {
      // Linear interpolation inside the bin.
      const double frac =
          bin_count(b) > 0
              ? (target - cum) / static_cast<double>(bin_count(b))
              : 0.0;
      return bin_lo(b) + (bin_hi(b) - bin_lo(b)) * frac;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(int width) const {
  long max_count = 1;
  for (const long c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (int b = 0; b < bins(); ++b) {
    const auto bar = static_cast<std::size_t>(
        std::lround(static_cast<double>(bin_count(b)) /
                    static_cast<double>(max_count) * std::max(width, 1)));
    out += "  [" + pad_left(fmt_auto(bin_lo(b)), 10) + ", " +
           pad_left(fmt_auto(bin_hi(b)), 10) + ") |" +
           std::string(bar, '#') + " " + std::to_string(bin_count(b)) + "\n";
  }
  return out;
}

}  // namespace mpisect::support
