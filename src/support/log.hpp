// Leveled, thread-safe logging. The simulator logs rank-tagged diagnostics
// through this sink; tests can capture or silence it.
#pragma once

#include <cstdarg>
#include <optional>
#include <string>
#include <string_view>

namespace mpisect::support {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Global minimum level; messages below it are dropped cheaply. The
/// `MPISECT_LOG` environment variable (trace|debug|info|warn|error|off)
/// sets the initial level before the first read; explicit set_log_level()
/// calls override it.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parse a level name as accepted by MPISECT_LOG (case-insensitive;
/// "warning" and "none" are aliases). nullopt on unknown input.
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view name) noexcept;

/// Redirect log output to an accumulating string buffer (for tests). Pass
/// nullptr to restore stderr output.
void set_log_capture(std::string* sink) noexcept;

/// printf-style logging; prepends "[level] ".
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define MPISECT_LOG_DEBUG(...) \
  ::mpisect::support::logf(::mpisect::support::LogLevel::Debug, __VA_ARGS__)
#define MPISECT_LOG_INFO(...) \
  ::mpisect::support::logf(::mpisect::support::LogLevel::Info, __VA_ARGS__)
#define MPISECT_LOG_WARN(...) \
  ::mpisect::support::logf(::mpisect::support::LogLevel::Warn, __VA_ARGS__)
#define MPISECT_LOG_ERROR(...) \
  ::mpisect::support::logf(::mpisect::support::LogLevel::Error, __VA_ARGS__)

}  // namespace mpisect::support
