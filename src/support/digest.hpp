// Stable content digests for trace identity.
//
// The serve cache keys results on the digest of the trace a query ran
// against, and `mpisect-replay info --digest` prints the same value so
// users can verify cache identity across machines. The digest is computed
// over the canonical `.mpst` v3 encoding (explicitly little-endian), so a
// trace hashes identically whether it was loaded from `.mpst` or `.mpstz`
// and regardless of host byte order.
//
// FNV-1a is not cryptographic; it identifies content, it does not
// authenticate it. 64 bits keeps accidental collisions out of reach for
// any realistic trace population on one serve instance.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace mpisect::support {

/// FNV-1a 64-bit over `data`. `seed` chains incremental updates; the
/// default is the standard FNV offset basis.
[[nodiscard]] std::uint64_t fnv1a64(
    std::span<const std::uint8_t> data,
    std::uint64_t seed = 0xCBF29CE484222325ull) noexcept;

/// Render a digest the way every tool prints it: "mpst1-" + 16 hex digits.
/// The prefix versions the digest scheme, not the trace format.
[[nodiscard]] std::string format_digest(std::uint64_t digest);

}  // namespace mpisect::support
