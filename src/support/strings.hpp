// Small string helpers shared by table/CSV/CLI code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpisect::support {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s,
                             std::string_view suffix) noexcept;

/// printf-like float formatting with fixed precision.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
/// Humanized formatting: picks precision by magnitude (1234.5 -> "1234.50",
/// 0.000123 -> "1.23e-04").
[[nodiscard]] std::string fmt_auto(double v);
/// Byte counts: "1.5 KiB", "3.2 MiB", ...
[[nodiscard]] std::string fmt_bytes(double bytes);
/// Seconds: "312 ns", "4.5 ms", "12.3 s".
[[nodiscard]] std::string fmt_seconds(double s);

/// Left/right pad to a width (no truncation).
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Join strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Escape a string for embedding inside a JSON string literal (no quotes
/// added): ", \, and control characters become \", \\, \n/\t/... or \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace mpisect::support
