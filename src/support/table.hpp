// Aligned text tables for bench/report output.
//
// Every figure/table harness in bench/ renders through TextTable so the
// regenerated paper artifacts share one consistent, diffable format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpisect::support {

class TextTable {
 public:
  enum class Align { Left, Right };

  /// Define the header row. Column count is fixed afterwards.
  void set_header(std::vector<std::string> header);
  /// Per-column alignment (defaults to Right for all columns).
  void set_align(std::vector<Align> align);
  /// Append a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);
  /// Convenience: format doubles with a fixed precision.
  void add_row_numeric(std::string_view label,
                       const std::vector<double>& values, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Render with box-drawing separators.
  [[nodiscard]] std::string render() const;
  /// Render as CSV (no padding).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpisect::support
