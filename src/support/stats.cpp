#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpisect::support {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double ci95_halfwidth(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double med = percentile(xs, 0.5);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return percentile(dev, 0.5);
}

LinearFit fit_line(std::span<const double> x,
                   std::span<const double> y) noexcept {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  const double mx = mean(x.first(n));
  const double my = mean(y.first(n));
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return f;
}

}  // namespace mpisect::support
