// Deterministic counter-based random numbers.
//
// All stochastic behaviour in the simulator (network jitter, compute noise)
// is drawn through CounterRng, a stateless SplitMix64-based generator keyed
// on (seed, stream, counter). Two properties matter for reproduction work:
//
//  1. Bit-for-bit reproducibility: a run is a pure function of its seed, so
//     every figure the bench harness prints can be regenerated exactly.
//  2. Order-independence: the value drawn for, say, the 512th message on the
//     edge (3 -> 4) does not depend on how rank threads interleave in real
//     time, because it is keyed by logical identifiers, not by call order.
#pragma once

#include <cstdint>

namespace mpisect::support {

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Stateless counter-based RNG. Each (seed, stream, counter) triple maps to
/// an independent uniform 64-bit value; callers advance their own counters.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Raw 64-bit draw for (stream, counter).
  [[nodiscard]] std::uint64_t bits(std::uint64_t stream,
                                   std::uint64_t counter) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform(std::uint64_t stream,
                               std::uint64_t counter) const noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(std::uint64_t stream, std::uint64_t counter,
                               double lo, double hi) const noexcept;

  /// Standard normal via Box-Muller (uses counter and counter+2^32 as the
  /// two uniforms so adjacent counters stay independent).
  [[nodiscard]] double gaussian(std::uint64_t stream,
                                std::uint64_t counter) const noexcept;

  /// Lognormal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(std::uint64_t stream, std::uint64_t counter,
                                 double mu, double sigma) const noexcept;

  /// Exponential with the given mean.
  [[nodiscard]] double exponential(std::uint64_t stream, std::uint64_t counter,
                                   double mean) const noexcept;

  /// Integer in [0, n) (n > 0).
  [[nodiscard]] std::uint64_t below(std::uint64_t stream,
                                    std::uint64_t counter,
                                    std::uint64_t n) const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Convenience: derive a stream id from small component identifiers, e.g.
/// stream_id(src, dst) for a network edge.
[[nodiscard]] constexpr std::uint64_t stream_id(std::uint64_t a,
                                                std::uint64_t b = 0,
                                                std::uint64_t c = 0) noexcept {
  return splitmix64(a ^ splitmix64(b ^ splitmix64(c)));
}

/// Stateful sequential PRNG for workload generation (procedural images,
/// mesh perturbations). Thin wrapper around SplitMix64 iteration.
class SequentialRng {
 public:
  explicit SequentialRng(std::uint64_t seed) noexcept : state_(seed) {}
  [[nodiscard]] std::uint64_t next() noexcept;
  [[nodiscard]] double uniform() noexcept;
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  [[nodiscard]] double gaussian() noexcept;

 private:
  std::uint64_t state_;
};

}  // namespace mpisect::support
