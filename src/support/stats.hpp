// Streaming and batch descriptive statistics.
//
// RunningStats implements Welford's online algorithm so that per-rank timing
// accumulators never need to retain samples. Batch helpers (percentile,
// confidence intervals) operate on explicit sample vectors and are used by
// the benchmark harnesses when averaging repeated runs, mirroring the
// paper's "runs were done twenty times and averaged" protocol.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace mpisect::support {

/// Online mean/variance/min/max accumulator (Welford). O(1) per sample.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator into this one (parallel-friendly reduction).
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Coefficient of variation (stddev/mean); 0 when the mean is 0.
  [[nodiscard]] double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a sample set; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;
/// Unbiased sample variance; 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
/// Linear-interpolated percentile, q in [0,1]. Copies + sorts internally.
[[nodiscard]] double percentile(std::span<const double> xs, double q);
/// Half-width of the ~95% normal-approximation confidence interval.
[[nodiscard]] double ci95_halfwidth(std::span<const double> xs) noexcept;
/// Median absolute deviation (robust spread estimate).
[[nodiscard]] double mad(std::span<const double> xs);

/// Simple ordinary-least-squares line fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};
[[nodiscard]] LinearFit fit_line(std::span<const double> x,
                                 std::span<const double> y) noexcept;

}  // namespace mpisect::support
