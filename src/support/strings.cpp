#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mpisect::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_auto(double v) {
  char buf[64];
  const double a = std::fabs(v);
  if (v == 0.0) return "0";
  if (a >= 1e6 || a < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2e", v);
  } else if (a >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string fmt_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", bytes, kUnits[u]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", bytes, kUnits[u]);
  }
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[64];
  const double a = std::fabs(s);
  if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", s * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", s * 1e9);
  }
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace mpisect::support
