#include "support/digest.hpp"

namespace mpisect::support {

std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                      std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string format_digest(std::uint64_t digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "mpst1-";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(digest >> shift) & 0xF];
  }
  return out;
}

}  // namespace mpisect::support
