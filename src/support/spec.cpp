#include "support/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mpisect::support {

SpecParts parse_spec(const std::string& text) {
  SpecParts parts;
  const std::size_t colon = text.find(':');
  parts.preset = text.substr(0, colon);
  if (colon == std::string::npos) return parts;
  std::string rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      throw std::invalid_argument("spec option is not key=value: " + text);
    }
    parts.options.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return parts;
}

double spec_number(const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || value.empty() || v < 0.0) {
    throw std::invalid_argument("spec value is not a non-negative number: " +
                                value);
  }
  return v;
}

int spec_int(const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty() || v < 0 ||
      v > 0x7fffffff) {
    throw std::invalid_argument("spec value is not a non-negative integer: " +
                                value);
  }
  return static_cast<int>(v);
}

std::string spec_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace mpisect::support
