// Tiny declarative command-line parser for examples and bench harnesses.
//
//   ArgParser args("bench_fig5", "Reproduce Fig. 5");
//   args.add_int("procs", 64, "number of MPI ranks");
//   args.add_flag("csv", "emit CSV instead of tables");
//   if (!args.parse(argc, argv)) return 1;   // prints usage on --help/-h
//   int p = args.get_int("procs");
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mpisect::support {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, long long def,
               const std::string& help);
  void add_double(const std::string& name, double def,
                  const std::string& help);
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parse `--name value`, `--name=value` and `--flag` forms. Returns false
  /// (after printing usage) on `--help` or on a malformed/unknown argument,
  /// and (after printing the provenance banner) on `--version`.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed on get
    bool flag_set = false;
  };

  bool set_value(const std::string& name, const std::string& value);
  const Option& require(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace mpisect::support
