// Tiny declarative command-line parser for examples and bench harnesses.
//
//   ArgParser args("bench_fig5", "Reproduce Fig. 5");
//   args.add_int("procs", 64, "number of MPI ranks");
//   args.add_flag("csv", "emit CSV instead of tables");
//   args.add_alias("nprocs", "procs");   // deprecated spelling, warns
//   if (!args.parse(argc, argv)) return 1;   // prints usage on --help/-h
//   int p = args.get_int("procs");
//
// All mpisect-* tools share one flag vocabulary (add_unified_flags):
//   --model <preset>   machine model   (deprecated alias: --machine)
//   --export <fmt>     output format   (deprecated alias: --format)
//   --json             shorthand for --export json
//   --seed <n>         world seed
//   --version          provenance banner
// Deprecated aliases keep parsing but print a one-line stderr warning, so
// existing scripts migrate at their own pace.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mpisect::support {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, long long def,
               const std::string& help);
  void add_double(const std::string& name, double def,
                  const std::string& help);
  void add_string(const std::string& name, std::string def,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);
  /// Accept `--deprecated` as a spelling of the already-declared
  /// `--canonical`, printing a one-line stderr warning when used.
  void add_alias(const std::string& deprecated, const std::string& canonical);
  /// Declare a required positional argument (filled left to right).
  /// Read back with get_string(name).
  void add_positional(const std::string& name, const std::string& help);

  /// Parse `--name value`, `--name=value` and `--flag` forms. Returns false
  /// (after printing usage) on `--help` or on a malformed/unknown argument,
  /// and (after printing the provenance banner) on `--version`.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed on get
    bool flag_set = false;
  };

  bool set_value(const std::string& name, const std::string& value);
  const Option& require(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  std::map<std::string, std::string> aliases_;  ///< deprecated -> canonical
  std::vector<std::string> positionals_;        ///< declaration order
};

/// The one-line stderr warning parse() prints when a deprecated alias is
/// used. Exposed so tests can assert the exact suggestion text: the
/// message must name the precise replacement flag, not just say the old
/// spelling is deprecated.
[[nodiscard]] std::string deprecation_message(const std::string& program,
                                              const std::string& deprecated,
                                              const std::string& canonical);

/// Register the flag vocabulary every mpisect-* tool shares: `--model`
/// (+ deprecated `--machine`), `--export` (+ deprecated `--format`),
/// `--json`, `--seed` and `--self-trace` (tools pass its value to
/// obs::enable_self_trace; MPISECT_SELF_TRACE is the env equivalent).
/// `--version` is built into parse().
void add_unified_flags(ArgParser& args, const std::string& model_default,
                       const std::string& export_default,
                       long long seed_default);

/// Resolve the unified output format: `--json` wins over `--export`.
[[nodiscard]] std::string unified_export(const ArgParser& args);

/// Register the flags shared by every tool/bench that constructs a
/// simulated world, in the common `preset[:key=value,...]` vocabulary:
///   --exec  cooperative[:workers=N,stack=KB] | threads
///   --match hashed[:buckets=N] | legacy
/// Feed the values to WorldBuilder::exec_spec()/match_spec(), which parse
/// and validate them (support is below mpisim, so parsing lives there).
void add_world_flags(ArgParser& args);

}  // namespace mpisect::support
