#include "support/rng.hpp"

#include <cmath>
#include <numbers>

namespace mpisect::support {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Map 64 random bits to a double in [0, 1) with 53 bits of precision.
constexpr double bits_to_unit(std::uint64_t b) noexcept {
  return static_cast<double>(b >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint64_t CounterRng::bits(std::uint64_t stream,
                               std::uint64_t counter) const noexcept {
  return splitmix64(seed_ ^ splitmix64(stream ^ splitmix64(counter)));
}

double CounterRng::uniform(std::uint64_t stream,
                           std::uint64_t counter) const noexcept {
  return bits_to_unit(bits(stream, counter));
}

double CounterRng::uniform(std::uint64_t stream, std::uint64_t counter,
                           double lo, double hi) const noexcept {
  return lo + (hi - lo) * uniform(stream, counter);
}

double CounterRng::gaussian(std::uint64_t stream,
                            std::uint64_t counter) const noexcept {
  // Two independent uniforms from well-separated counters.
  double u1 = uniform(stream, counter);
  const double u2 = uniform(stream, counter + (1ULL << 32));
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double CounterRng::lognormal(std::uint64_t stream, std::uint64_t counter,
                             double mu, double sigma) const noexcept {
  return std::exp(mu + sigma * gaussian(stream, counter));
}

double CounterRng::exponential(std::uint64_t stream, std::uint64_t counter,
                               double mean_) const noexcept {
  double u = uniform(stream, counter);
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean_ * std::log(u);
}

std::uint64_t CounterRng::below(std::uint64_t stream, std::uint64_t counter,
                                std::uint64_t n) const noexcept {
  // Multiplicative range reduction; bias is negligible for n << 2^64.
  const auto b = bits(stream, counter);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(b) * n) >> 64);
}

std::uint64_t SequentialRng::next() noexcept {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t x = state_;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double SequentialRng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double SequentialRng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double SequentialRng::gaussian() noexcept {
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace mpisect::support
