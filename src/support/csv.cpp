#include "support/csv.hpp"

#include <fstream>
#include <stdexcept>

#include "support/strings.hpp"

namespace mpisect::support {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()), body_(join(header, ",") + "\n") {}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter row arity mismatch");
  }
  body_ += join(cells, ",") + "\n";
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt_auto(v));
  add_row(cells);
}

std::string CsvWriter::str() const { return body_; }

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << body_;
  return static_cast<bool>(out);
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& line : split(text, '\n')) {
    if (trim(line).empty()) continue;
    rows.push_back(split(line, ','));
  }
  return rows;
}

}  // namespace mpisect::support
