// Fixed-bin histogram with ASCII rendering — used by the bench harnesses to
// show run-to-run spread (e.g. the per-seed wobble of Fig. 6's HALO totals)
// without external plotting.
#pragma once

#include <string>
#include <vector>

namespace mpisect::support {

class Histogram {
 public:
  /// `bins` equal-width bins spanning [lo, hi]; samples outside clamp to
  /// the edge bins. Requires bins >= 1 and hi > lo.
  Histogram(double lo, double hi, int bins);

  /// Build with automatic range from the samples (padded 5% each side).
  static Histogram from_samples(const std::vector<double>& xs, int bins = 10);

  void add(double x) noexcept;
  [[nodiscard]] long count() const noexcept { return total_; }
  [[nodiscard]] long bin_count(int bin) const;
  [[nodiscard]] double bin_lo(int bin) const;
  [[nodiscard]] double bin_hi(int bin) const;
  [[nodiscard]] int bins() const noexcept {
    return static_cast<int>(counts_.size());
  }

  /// Approximate quantile from the binned data (q in [0,1]).
  [[nodiscard]] double quantile(double q) const;

  /// Horizontal ASCII rendering, one row per bin.
  [[nodiscard]] std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<long> counts_;
  long total_ = 0;
};

}  // namespace mpisect::support
