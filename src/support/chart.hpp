// ASCII charts so bench binaries can render figure-shaped output directly
// in a terminal (the paper's figures are line/stacked-bar charts; we print
// the series plus a sketch so "who wins / where the crossover is" is visible
// without plotting tools).
#pragma once

#include <string>
#include <vector>

namespace mpisect::support {

/// A named series of (x, y) points. x values may differ between series.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  int width = 72;        ///< plot area columns
  int height = 20;       ///< plot area rows
  bool log_x = false;    ///< logarithmic x axis (base 2, for core counts)
  bool log_y = false;    ///< logarithmic y axis
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Render one or more series as an ASCII line chart. Each series is drawn
/// with a distinct glyph and listed in a legend below the chart.
[[nodiscard]] std::string line_chart(const std::vector<Series>& series,
                                     const ChartOptions& opts);

/// Horizontal bar chart for a single categorical series (e.g. percentage of
/// execution time per section).
[[nodiscard]] std::string bar_chart(const std::vector<std::string>& labels,
                                    const std::vector<double>& values,
                                    int width = 50,
                                    const std::string& title = {});

}  // namespace mpisect::support
