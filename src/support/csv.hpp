// Minimal CSV writer/reader used to persist bench series for EXPERIMENTS.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpisect::support {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);
  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& values);
  /// Serialize to a string (header + rows).
  [[nodiscard]] std::string str() const;
  /// Write to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  std::size_t columns_;
  std::string body_;
};

/// Parse a CSV string into rows of cells (no quoting support; the writer
/// never emits commas inside cells).
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::string_view text);

}  // namespace mpisect::support
