#pragma once

// The shared `preset[:key=value,...]` flag vocabulary. One grammar serves
// every model-selection flag — `--progress`, `--exec`, `--match` — so a
// spec printed by one tool's describe()/spec() round-trips through any
// other tool's parser. Keeping the splitter here (and the validation in
// each model) lets models keep their own error types and option names.

#include <string>
#include <utility>
#include <vector>

namespace mpisect::support {

/// A decomposed `preset[:key=value,...]` string. Options keep flag order;
/// values stay raw strings so each model applies its own conversion rules.
struct SpecParts {
  std::string preset;
  std::vector<std::pair<std::string, std::string>> options;
};

/// Split `text` into preset + options. Throws std::invalid_argument when an
/// option item is not of the form key=value (empty key or value included).
[[nodiscard]] SpecParts parse_spec(const std::string& text);

/// Parse a spec option value as a non-negative double. Throws
/// std::invalid_argument when the value does not fully parse or is negative.
[[nodiscard]] double spec_number(const std::string& value);

/// Parse a spec option value as a non-negative integer (int range). Throws
/// std::invalid_argument on garbage, fractions, or negatives.
[[nodiscard]] int spec_int(const std::string& value);

/// %g keeps canonical specs short (5e-08, 0.05) and round-trippable
/// through strtod for every value a user can express on the flag.
[[nodiscard]] std::string spec_value(double v);

}  // namespace mpisect::support
