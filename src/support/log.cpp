#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/strings.hpp"

namespace mpisect::support {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;
std::string* g_capture = nullptr;

/// One-shot MPISECT_LOG environment override, applied before the first
/// level read so `MPISECT_LOG=debug ./anything` governs every subsystem
/// that logs through this sink. Explicit set_log_level() calls later
/// (tests) still win.
std::once_flag g_env_once;

void apply_env_level() {
  const char* env = std::getenv("MPISECT_LOG");
  if (env == nullptr) return;
  if (const auto parsed = parse_log_level(env)) g_level.store(*parsed);
}

void ensure_env_applied() { std::call_once(g_env_once, apply_env_level); }

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  ensure_env_applied();  // consume the env override so it cannot clobber us
  g_level.store(level);
}

LogLevel log_level() noexcept {
  ensure_env_applied();
  return g_level.load();
}

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  const std::string s = to_lower(trim(name));
  if (s == "trace") return LogLevel::Trace;
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn" || s == "warning") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off" || s == "none") return LogLevel::Off;
  return std::nullopt;
}

void set_log_capture(std::string* sink) noexcept {
  const std::lock_guard lock(g_mutex);
  g_capture = sink;
}

void logf(LogLevel level, const char* fmt, ...) {
  // Apply MPISECT_LOG before the first filter decision: logf can be the
  // first entry into the sink (e.g. a CLI parse warning), and the env
  // contract is "governs every subsystem", not "governs after someone
  // happened to read the level".
  ensure_env_applied();
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);

  const std::lock_guard lock(g_mutex);
  if (g_capture != nullptr) {
    *g_capture += "[";
    *g_capture += level_name(level);
    *g_capture += "] ";
    *g_capture += buf;
    *g_capture += "\n";
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
  }
}

}  // namespace mpisect::support
