#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mpisect::support {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;
std::string* g_capture = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_capture(std::string* sink) noexcept {
  const std::lock_guard lock(g_mutex);
  g_capture = sink;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);

  const std::lock_guard lock(g_mutex);
  if (g_capture != nullptr) {
    *g_capture += "[";
    *g_capture += level_name(level);
    *g_capture += "] ";
    *g_capture += buf;
    *g_capture += "\n";
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
  }
}

}  // namespace mpisect::support
