#include "support/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace mpisect::support {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u digit");
            }
          }
          // Encode the basic-plane code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).document();
}

}  // namespace mpisect::support
