#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/log.hpp"
#include "support/provenance.hpp"
#include "support/strings.hpp"

namespace mpisect::support {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_int(const std::string& name, long long def,
                        const std::string& help) {
  options_[name] = Option{Kind::Int, help, std::to_string(def)};
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double def,
                           const std::string& help) {
  options_[name] = Option{Kind::Double, help, std::to_string(def)};
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name, std::string def,
                           const std::string& help) {
  options_[name] = Option{Kind::String, help, std::move(def)};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::Flag, help, "0"};
  order_.push_back(name);
}

void ArgParser::add_alias(const std::string& deprecated,
                          const std::string& canonical) {
  if (options_.find(canonical) == options_.end()) {
    throw std::logic_error("ArgParser: alias '" + deprecated +
                           "' targets undeclared option '" + canonical + "'");
  }
  aliases_[deprecated] = canonical;
}

void ArgParser::add_positional(const std::string& name,
                               const std::string& help) {
  options_[name] = Option{Kind::String, help, ""};
  positionals_.push_back(name);
}

bool ArgParser::set_value(const std::string& name, const std::string& value) {
  auto it = options_.find(name);
  if (it == options_.end()) return false;
  it->second.value = value;
  it->second.flag_set = true;
  return true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg == "--version") {
      std::fprintf(stdout, "%s\n", provenance_banner(program_).c_str());
      return false;
    }
    if (!starts_with(arg, "--")) {
      if (next_positional < positionals_.size()) {
        set_value(positionals_[next_positional++], arg);
        continue;
      }
      // Diagnostics go through the shared log sink (one format, honors
      // MPISECT_LOG); the multi-line usage text stays raw on stderr.
      MPISECT_LOG_ERROR("%s: unexpected argument '%s'", program_.c_str(),
                        arg.c_str());
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    if (const auto al = aliases_.find(arg); al != aliases_.end()) {
      MPISECT_LOG_WARN("%s",
                       deprecation_message(program_, arg, al->second).c_str());
      arg = al->second;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      MPISECT_LOG_ERROR("%s: unknown option '--%s'", program_.c_str(),
                        arg.c_str());
      std::fputs(usage().c_str(), stderr);
      return false;
    }
    if (it->second.kind == Kind::Flag) {
      it->second.value = has_value ? value : "1";
      it->second.flag_set = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        MPISECT_LOG_ERROR("%s: option '--%s' requires a value",
                          program_.c_str(), arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    set_value(arg, value);
  }
  if (next_positional < positionals_.size()) {
    MPISECT_LOG_ERROR("%s: missing required argument <%s>", program_.c_str(),
                      positionals_[next_positional].c_str());
    std::fputs(usage().c_str(), stderr);
    return false;
  }
  return true;
}

const ArgParser::Option& ArgParser::require(const std::string& name,
                                            Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::logic_error("ArgParser: undeclared option '" + name + "'");
  }
  return it->second;
}

long long ArgParser::get_int(const std::string& name) const {
  return std::strtoll(require(name, Kind::Int).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(require(name, Kind::Double).value.c_str(), nullptr);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return require(name, Kind::String).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return require(name, Kind::Flag).value != "0";
}

std::string ArgParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n";
  if (!positionals_.empty()) {
    out += "\nusage: " + program_;
    for (const auto& name : positionals_) out += " <" + name + ">";
    out += " [options]\n\narguments:\n";
    for (const auto& name : positionals_) {
      out += pad_right("  <" + name + ">", 28) + options_.at(name).help + "\n";
    }
  }
  out += "\noptions:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    std::string left = "  --" + name;
    switch (opt.kind) {
      case Kind::Int: left += " <int>"; break;
      case Kind::Double: left += " <float>"; break;
      case Kind::String: left += " <str>"; break;
      case Kind::Flag: break;
    }
    out += pad_right(left, 28) + opt.help;
    if (opt.kind != Kind::Flag) out += " (default: " + opt.value + ")";
    out += "\n";
  }
  for (const auto& [dep, canon] : aliases_) {
    out += pad_right("  --" + dep, 28) + "deprecated alias of --" + canon +
           "\n";
  }
  return out;
}

std::string deprecation_message(const std::string& program,
                                const std::string& deprecated,
                                const std::string& canonical) {
  return program + ": warning: '--" + deprecated + "' is deprecated, use '--" +
         canonical + "' instead";
}

void add_unified_flags(ArgParser& args, const std::string& model_default,
                       const std::string& export_default,
                       long long seed_default) {
  args.add_string("model", model_default, "machine model preset");
  args.add_alias("machine", "model");
  args.add_string("export", export_default, "output format");
  args.add_alias("format", "export");
  args.add_flag("json", "shorthand for --export json");
  args.add_int("seed", seed_default, "world seed");
  args.add_string("self-trace", "",
                  "wall-clock self-trace of the simulator itself "
                  "(.json = chrome://tracing, else CSV)");
}

std::string unified_export(const ArgParser& args) {
  if (args.get_flag("json")) return "json";
  return args.get_string("export");
}

void add_world_flags(ArgParser& args) {
  args.add_string("exec", "cooperative",
                  "rank execution backend: "
                  "cooperative[:workers=N,stack=KB] | threads");
  args.add_string("match", "hashed",
                  "message-matching engine: hashed[:buckets=N] | legacy");
}

}  // namespace mpisect::support
