// Minimal recursive-descent JSON reader for test assertions and
// tool-output round-trips (mpisect emits JSON in several places — checker
// findings, analyzer reports, telemetry timelines — and the schema tests
// parse those documents back rather than regex-matching them).
//
// Deliberately small: full JSON value model (object/array/string/number/
// bool/null), UTF-8 passthrough (no surrogate handling beyond \uXXXX
// basic-plane escapes), doubles only. Not a streaming parser; documents
// here are kilobytes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpisect::support {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order is not preserved; schema tests key by name.
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }

  /// Object member access; returns nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse one JSON document (must consume all non-whitespace input).
/// Throws std::runtime_error with position info on malformed input.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace mpisect::support
