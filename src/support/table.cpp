#include "support/table.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/strings.hpp"

namespace mpisect::support {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  if (align_.size() != header_.size()) {
    align_.assign(header_.size(), Align::Right);
  }
}

void TextTable::set_align(std::vector<Align> align) {
  align_ = std::move(align);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void TextTable::add_row_numeric(std::string_view label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.emplace_back(label);
  for (double v : values) row.push_back(fmt_double(v, precision));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto& cell = row[c];
      const bool left = c < align_.size() && align_[c] == Align::Left;
      s += " " + (left ? pad_right(cell, width[c]) : pad_left(cell, width[c])) +
           " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string TextTable::render_csv() const {
  std::string out = join(header_, ",") + "\n";
  for (const auto& row : rows_) out += join(row, ",") + "\n";
  return out;
}

}  // namespace mpisect::support
