#include "support/provenance.hpp"

#include "support/strings.hpp"

// Baked in by src/support/CMakeLists.txt; fall back so non-CMake builds
// (clangd, quick compiles) still link.
#ifndef MPISECT_VERSION_STRING
#define MPISECT_VERSION_STRING "0.0.0"
#endif
#ifndef MPISECT_GIT_DESCRIBE
#define MPISECT_GIT_DESCRIBE "unknown"
#endif
#ifndef MPISECT_BUILD_TYPE
#define MPISECT_BUILD_TYPE "unknown"
#endif
#ifndef MPISECT_SANITIZE_NAME
#define MPISECT_SANITIZE_NAME "none"
#endif

namespace mpisect::support {

Provenance build_provenance() {
  Provenance p;
  p.version = MPISECT_VERSION_STRING;
  p.git = MPISECT_GIT_DESCRIBE;
  p.build_type = MPISECT_BUILD_TYPE;
  p.sanitizer = MPISECT_SANITIZE_NAME;
  return p;
}

std::string provenance_banner(const std::string& program) {
  const Provenance p = build_provenance();
  std::string out;
  if (!program.empty()) out += program + " — ";
  out += "mpisect " + p.version + " (" + p.git + ", " + p.build_type +
         ", sanitizer=" + p.sanitizer + ")";
  return out;
}

std::string provenance_csv_comment(const Provenance& p) {
  std::string out = "# mpisect " + p.version + " git=" + p.git +
                    " build=" + p.build_type + " sanitizer=" + p.sanitizer;
  if (!p.machine.empty()) out += " machine=" + p.machine;
  if (!p.seed.empty()) out += " seed=" + p.seed;
  out += "\n";
  return out;
}

std::string provenance_csv_comment() {
  return provenance_csv_comment(build_provenance());
}

std::string provenance_json(const Provenance& p) {
  std::string out = "{\"version\":\"" + json_escape(p.version) +
                    "\",\"git\":\"" + json_escape(p.git) +
                    "\",\"build_type\":\"" + json_escape(p.build_type) +
                    "\",\"sanitizer\":\"" + json_escape(p.sanitizer) + "\"";
  if (!p.machine.empty()) {
    out += ",\"machine\":\"" + json_escape(p.machine) + "\"";
  }
  if (!p.seed.empty()) out += ",\"seed\":" + p.seed;
  out += "}";
  return out;
}

std::string provenance_json() { return provenance_json(build_provenance()); }

}  // namespace mpisect::support
