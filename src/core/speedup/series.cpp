#include "core/speedup/series.hpp"

#include <algorithm>

namespace mpisect::speedup {

void ScalingSeries::add(int p, double time) {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), p,
      [](const ScalingPoint& pt, int key) { return pt.p < key; });
  if (it != points_.end() && it->p == p) {
    it->time = time;  // resample overwrites
    return;
  }
  points_.insert(it, ScalingPoint{p, time});
}

std::optional<double> ScalingSeries::at(int p) const noexcept {
  for (const auto& pt : points_) {
    if (pt.p == p) return pt.time;
  }
  return std::nullopt;
}

std::optional<ScalingPoint> ScalingSeries::best() const noexcept {
  if (points_.empty()) return std::nullopt;
  return *std::min_element(points_.begin(), points_.end(),
                           [](const ScalingPoint& a, const ScalingPoint& b) {
                             return a.time < b.time;
                           });
}

ScalingSeries ScalingSeries::to_speedup(double t_ref) const {
  ScalingSeries out(name_ + " speedup");
  double ref = t_ref;
  if (ref <= 0.0) {
    const auto seq = sequential();
    if (!seq) return out;
    ref = *seq;
  }
  for (const auto& pt : points_) {
    if (pt.time > 0.0) out.add(pt.p, ref / pt.time);
  }
  return out;
}

ScalingSeries ScalingSeries::to_efficiency(double t_ref) const {
  ScalingSeries out(name_ + " efficiency");
  const ScalingSeries s = to_speedup(t_ref);
  for (const auto& pt : s.points()) {
    out.add(pt.p, pt.p > 0 ? pt.time / pt.p : 0.0);
  }
  return out;
}

std::vector<double> ScalingSeries::xs() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& pt : points_) v.push_back(static_cast<double>(pt.p));
  return v;
}

std::vector<double> ScalingSeries::ys() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& pt : points_) v.push_back(pt.time);
  return v;
}

}  // namespace mpisect::speedup
