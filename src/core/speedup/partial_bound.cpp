#include "core/speedup/partial_bound.hpp"

#include <algorithm>
#include <limits>

namespace mpisect::speedup {

double partial_bound(double total_sequential_time,
                     double section_time_per_process) noexcept {
  if (section_time_per_process <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return total_sequential_time / section_time_per_process;
}

void BoundAnalysis::add_section(SectionScaling section) {
  sections_.push_back(std::move(section));
}

ScalingSeries BoundAnalysis::bound_series(const std::string& label) const {
  ScalingSeries out("B(" + label + ")");
  for (const auto& s : sections_) {
    if (s.label != label) continue;
    for (const auto& pt : s.per_process.points()) {
      out.add(pt.p, partial_bound(t_seq_, pt.time));
    }
  }
  return out;
}

std::vector<BoundRow> BoundAnalysis::rows() const {
  std::vector<BoundRow> out;
  for (const auto& s : sections_) {
    for (const auto& pt : s.per_process.points()) {
      BoundRow row;
      row.label = s.label;
      row.p = pt.p;
      row.per_process_time = pt.time;
      row.total_time = s.total.at(pt.p).value_or(
          pt.time * static_cast<double>(pt.p));
      row.bound = partial_bound(t_seq_, pt.time);
      out.push_back(row);
    }
  }
  return out;
}

std::vector<BoundAnalysis::BindingBound> BoundAnalysis::binding_bounds()
    const {
  std::vector<BindingBound> out;
  // Collect the set of sampled p values from the first section (all
  // sections of one run share the sweep).
  if (sections_.empty()) return out;
  for (const auto& pt : sections_.front().per_process.points()) {
    BindingBound bb;
    bb.p = pt.p;
    bb.bound = std::numeric_limits<double>::infinity();
    for (const auto& s : sections_) {
      const auto t = s.per_process.at(pt.p);
      if (!t) continue;
      const double b = partial_bound(t_seq_, *t);
      if (b < bb.bound) {
        bb.bound = b;
        bb.label = s.label;
      }
    }
    out.push_back(bb);
  }
  return out;
}

BoundAnalysis::Transposition BoundAnalysis::transpose_bound(
    const std::string& label, int p_low, const ScalingSeries& measured,
    double slack) const {
  Transposition t;
  t.p_low = p_low;
  const ScalingSeries bounds = bound_series(label);
  const auto b = bounds.at(p_low);
  if (!b) {
    t.holds = false;
    return t;
  }
  t.bound = *b;
  for (const auto& pt : measured.points()) {
    if (pt.p < p_low) continue;
    if (pt.time > t.bound * slack) {
      t.holds = false;
      t.first_violation_p = pt.p;
      return t;
    }
  }
  return t;
}

}  // namespace mpisect::speedup
