#include "core/speedup/adaptive.hpp"

#include <algorithm>
#include <set>

namespace mpisect::speedup {

void AdaptiveAdvisor::add_section(ScalingSeries series) {
  sections_.push_back(std::move(series));
}

std::optional<double> AdaptiveAdvisor::predicted_uniform(int threads) const {
  if (sections_.empty()) return std::nullopt;
  double total = 0.0;
  for (const auto& s : sections_) {
    const auto t = s.at(threads);
    if (!t) return std::nullopt;
    total += *t;
  }
  return total;
}

std::optional<int> AdaptiveAdvisor::best_uniform() const {
  std::set<int> candidates;
  for (const auto& s : sections_) {
    for (const auto& pt : s.points()) candidates.insert(pt.p);
  }
  std::optional<int> best;
  double best_time = 0.0;
  for (const int t : candidates) {
    const auto predicted = predicted_uniform(t);
    if (!predicted) continue;
    if (!best || *predicted < best_time) {
      best = t;
      best_time = *predicted;
    }
  }
  return best;
}

std::vector<SectionRecommendation> AdaptiveAdvisor::recommend() const {
  std::vector<SectionRecommendation> out;
  const auto uniform = best_uniform();
  for (const auto& s : sections_) {
    SectionRecommendation rec;
    rec.label = s.name();
    if (const auto best = s.best()) {
      rec.threads = best->p;
      rec.time = best->time;
      rec.restrained = uniform.has_value() && best->p < *uniform;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

double AdaptiveAdvisor::predicted_adaptive() const {
  double total = 0.0;
  for (const auto& rec : recommend()) total += rec.time;
  return total;
}

double AdaptiveAdvisor::improvement() const {
  const auto uniform = best_uniform();
  if (!uniform) return 1.0;
  const auto uniform_time = predicted_uniform(*uniform);
  const double adaptive_time = predicted_adaptive();
  if (!uniform_time || adaptive_time <= 0.0) return 1.0;
  return *uniform_time / adaptive_time;
}

}  // namespace mpisect::speedup
