// Classical scaling laws (paper Section 2 background).
//
// All of these derive from the canonical Speedup equation
//   S(n, p) = seq(n) / par(n, p)
// and are provided both for analysis and as reference baselines against
// which the paper's *partial speedup bounding* is compared.
#pragma once

namespace mpisect::speedup {

/// S = T_seq / T_par. Returns 0 when T_par <= 0.
[[nodiscard]] double speedup(double t_seq, double t_par) noexcept;

/// E = S / p.
[[nodiscard]] double efficiency(double t_seq, double t_par, int p) noexcept;

/// Amdahl's law: S(p) <= 1 / (fs + fp/p) with fs + fp = 1.
/// serial_fraction in [0,1].
[[nodiscard]] double amdahl_bound(double serial_fraction, int p) noexcept;

/// Amdahl's asymptotic limit: S <= 1/fs (infinity for fs = 0).
[[nodiscard]] double amdahl_limit(double serial_fraction) noexcept;

/// Gustafson-Barsis scaled speedup: S(p) = p - fs*(p - 1).
[[nodiscard]] double gustafson_scaled(double serial_fraction, int p) noexcept;

/// Karp-Flatt experimentally determined serial fraction:
///   e = (1/S - 1/p) / (1 - 1/p)
/// Undefined (returns 0) for p <= 1 or S <= 0.
[[nodiscard]] double karp_flatt(double measured_speedup, int p) noexcept;

/// Invert Amdahl: serial fraction implied by a measured speedup at p.
/// Identical to karp_flatt; provided under the law's own name for clarity.
[[nodiscard]] double implied_serial_fraction(double measured_speedup,
                                             int p) noexcept;

}  // namespace mpisect::speedup
