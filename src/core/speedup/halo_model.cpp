#include "core/speedup/halo_model.hpp"

#include <cmath>

namespace mpisect::speedup {

HaloStats halo_stats(std::int64_t n, int total_dims, int decomp_dims,
                     int halo) {
  HaloStats st;
  if (n <= 0 || total_dims <= 0 || decomp_dims < 0 ||
      decomp_dims > total_dims || halo < 0) {
    return st;
  }
  const auto nd = static_cast<double>(n);
  const auto h = static_cast<double>(halo);
  // Interior: n^total_dims. Padded block: (n + 2h) along decomposed axes,
  // n along the others (interior ranks; boundary ranks have fewer halos,
  // so this is the worst case the memory budget must absorb).
  st.interior_cells = std::pow(nd, total_dims);
  const double padded = std::pow(nd + 2.0 * h, decomp_dims) *
                        std::pow(nd, total_dims - decomp_dims);
  st.halo_cells = padded - st.interior_cells;
  st.ratio = st.interior_cells > 0.0 ? st.halo_cells / st.interior_cells : 0.0;
  // Sent per step: one halo-wide layer per face, two faces per decomposed
  // axis: 2 * decomp_dims * h * n^(total_dims - 1).
  st.surface_cells =
      2.0 * decomp_dims * h * std::pow(nd, total_dims - 1);
  return st;
}

double local_edge(double global_cells, int total_dims, int decomp_dims,
                  int ranks) {
  if (global_cells <= 0.0 || total_dims <= 0 || decomp_dims <= 0 ||
      decomp_dims > total_dims || ranks <= 0) {
    return -1.0;
  }
  // Ranks arranged in a decomp_dims-cube: require an integral root.
  const double root =
      std::round(std::pow(static_cast<double>(ranks), 1.0 / decomp_dims));
  double check = 1.0;
  for (int i = 0; i < decomp_dims; ++i) check *= root;
  if (std::llround(check) != ranks) return -1.0;
  const double global_edge =
      std::pow(global_cells, 1.0 / total_dims);
  return global_edge / root;
}

std::int64_t min_edge_for_budget(int total_dims, int decomp_dims,
                                 double budget, int halo) {
  if (budget <= 0.0) return -1;
  for (std::int64_t n = 1; n <= (1LL << 30); n *= 2) {
    if (halo_stats(n, total_dims, decomp_dims, halo).ratio <= budget) {
      // Binary refine between n/2 and n.
      std::int64_t lo = n / 2 + 1;
      std::int64_t hi = n;
      while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (halo_stats(mid, total_dims, decomp_dims, halo).ratio <= budget) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      return hi;
    }
  }
  return -1;
}

}  // namespace mpisect::speedup
