// Rendering helpers turning speedup analyses into the paper's table and
// figure formats (used by the bench harnesses and examples).
#pragma once

#include <string>
#include <vector>

#include "core/speedup/partial_bound.hpp"
#include "core/speedup/series.hpp"

namespace mpisect::speedup {

/// Fig. 6-style table: "#Processes | Tot. <label> Time | Speedup Bound (B)".
[[nodiscard]] std::string render_bound_table(const BoundAnalysis& analysis,
                                             const std::string& label,
                                             const std::vector<int>& ps);

/// Per-p binding-bound table: which section caps the speedup at each scale.
[[nodiscard]] std::string render_binding_table(const BoundAnalysis& analysis);

/// Multi-series CSV (columns: p, one column per series). Series may sample
/// different p sets; missing cells are empty.
[[nodiscard]] std::string series_csv(const std::vector<ScalingSeries>& series);

/// A classic speedup summary line: measured vs Amdahl-implied fraction.
[[nodiscard]] std::string summarize_speedup(const ScalingSeries& times);

}  // namespace mpisect::speedup
