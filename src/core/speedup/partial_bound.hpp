// Partial speedup bounding — the paper's Equation 6 and Section 2.
//
// Model the application as a sum of per-section times,
//   T(n, p) = sum_i f_i(n, p).
// In strong scaling (fixed n0) the Speedup obeys, for EVERY section i,
//
//   S(n0, p) <= sum_j f_j(n0, 1) / f_i(n0, p)            (Eq. 6)
//
// i.e. any section that stops accelerating immediately caps the whole
// application's speedup — at finite p, unlike Amdahl's asymptotic bound.
// The denominator uses the section's *mean time per process* at scale p
// (the paper's Fig. 6 divides the summed-over-ranks HALO time by p).
//
// This header provides:
//   * partial_bound()        — one bound B_i(p) from one section sample
//   * SectionScaling         — a section's full p-sweep + its bound series
//   * BoundAnalysis          — the per-section bound table for a run,
//                              the binding (minimum) bound at each p, and
//                              transposition of low-scale bounds to high
//                              scales (the paper's Fig. 5(d) experiment).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/speedup/series.hpp"

namespace mpisect::speedup {

/// B(p) = T_seq_total / t_section_per_process(p). Returns +inf when the
/// section time is 0 (a section with no cost bounds nothing).
[[nodiscard]] double partial_bound(double total_sequential_time,
                                   double section_time_per_process) noexcept;

/// One section's contribution across the p-sweep.
struct SectionScaling {
  std::string label;
  /// Mean per-process time in the section at each p.
  ScalingSeries per_process;
  /// Sum over processes (the paper's "Tot. HALO Time" column).
  ScalingSeries total;
};

/// A single row of the paper's Fig. 6 table.
struct BoundRow {
  std::string label;
  int p = 0;
  double total_time = 0.0;        ///< summed over ranks
  double per_process_time = 0.0;  ///< total_time / p
  double bound = 0.0;             ///< B(p) per Eq. 6
};

class BoundAnalysis {
 public:
  /// total_sequential_time: sum of all section times at p = 1 (the
  /// "parallel budget" numerator of Eq. 6).
  explicit BoundAnalysis(double total_sequential_time) noexcept
      : t_seq_(total_sequential_time) {}

  void add_section(SectionScaling section);

  [[nodiscard]] double total_sequential_time() const noexcept {
    return t_seq_;
  }
  [[nodiscard]] const std::vector<SectionScaling>& sections() const noexcept {
    return sections_;
  }

  /// Bound series B_i(p) for one section.
  [[nodiscard]] ScalingSeries bound_series(const std::string& label) const;

  /// All (section, p) bound rows, Fig. 6 style.
  [[nodiscard]] std::vector<BoundRow> rows() const;

  /// The binding bound at each p: min over sections of B_i(p), with the
  /// section that imposes it.
  struct BindingBound {
    int p = 0;
    double bound = 0.0;
    std::string label;
  };
  [[nodiscard]] std::vector<BindingBound> binding_bounds() const;

  /// The paper's transposition check: does the bound inferred from section
  /// data at `p_low` still hold (within `slack`, e.g. 1.1 = 10%) for the
  /// measured speedup at every p >= p_low? Measured speedups taken from
  /// `measured` (a speedup series, not a time series).
  struct Transposition {
    int p_low = 0;
    double bound = 0.0;
    bool holds = true;
    int first_violation_p = -1;
  };
  [[nodiscard]] Transposition transpose_bound(const std::string& label,
                                              int p_low,
                                              const ScalingSeries& measured,
                                              double slack = 1.05) const;

 private:
  double t_seq_;
  std::vector<SectionScaling> sections_;
};

}  // namespace mpisect::speedup
