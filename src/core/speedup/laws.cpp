#include "core/speedup/laws.hpp"

#include <algorithm>
#include <limits>

namespace mpisect::speedup {

double speedup(double t_seq, double t_par) noexcept {
  if (t_par <= 0.0) return 0.0;
  return t_seq / t_par;
}

double efficiency(double t_seq, double t_par, int p) noexcept {
  if (p <= 0) return 0.0;
  return speedup(t_seq, t_par) / static_cast<double>(p);
}

double amdahl_bound(double serial_fraction, int p) noexcept {
  if (p <= 0) return 0.0;
  const double fs = std::clamp(serial_fraction, 0.0, 1.0);
  const double fp = 1.0 - fs;
  const double denom = fs + fp / static_cast<double>(p);
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / denom;
}

double amdahl_limit(double serial_fraction) noexcept {
  const double fs = std::clamp(serial_fraction, 0.0, 1.0);
  if (fs <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / fs;
}

double gustafson_scaled(double serial_fraction, int p) noexcept {
  if (p <= 0) return 0.0;
  const double fs = std::clamp(serial_fraction, 0.0, 1.0);
  return static_cast<double>(p) - fs * (static_cast<double>(p) - 1.0);
}

double karp_flatt(double measured_speedup, int p) noexcept {
  if (p <= 1 || measured_speedup <= 0.0) return 0.0;
  const double inv_s = 1.0 / measured_speedup;
  const double inv_p = 1.0 / static_cast<double>(p);
  return (inv_s - inv_p) / (1.0 - inv_p);
}

double implied_serial_fraction(double measured_speedup, int p) noexcept {
  return karp_flatt(measured_speedup, p);
}

}  // namespace mpisect::speedup
