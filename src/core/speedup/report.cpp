#include "core/speedup/report.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/speedup/laws.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace mpisect::speedup {

std::string render_bound_table(const BoundAnalysis& analysis,
                               const std::string& label,
                               const std::vector<int>& ps) {
  support::TextTable table;
  table.set_header({"#Processes", "Tot. " + label + " Time",
                    "Speedup Bound (B)"});
  const ScalingSeries bounds = analysis.bound_series(label);
  for (const auto& s : analysis.sections()) {
    if (s.label != label) continue;
    for (const int p : ps) {
      const auto total = s.total.at(p);
      const auto bound = bounds.at(p);
      if (!total || !bound) continue;
      table.add_row({std::to_string(p), support::fmt_double(*total, 2),
                     support::fmt_double(*bound, 2)});
    }
  }
  return table.render();
}

std::string render_binding_table(const BoundAnalysis& analysis) {
  support::TextTable table;
  table.set_header({"#Processes", "Binding section", "Bound B(p)"});
  for (const auto& bb : analysis.binding_bounds()) {
    table.add_row({std::to_string(bb.p), bb.label,
                   std::isfinite(bb.bound)
                       ? support::fmt_double(bb.bound, 2)
                       : std::string("inf")});
  }
  return table.render();
}

std::string series_csv(const std::vector<ScalingSeries>& series) {
  std::set<int> ps;
  for (const auto& s : series) {
    for (const auto& pt : s.points()) ps.insert(pt.p);
  }
  std::string out = "p";
  for (const auto& s : series) out += "," + s.name();
  out += "\n";
  for (const int p : ps) {
    out += std::to_string(p);
    for (const auto& s : series) {
      const auto t = s.at(p);
      out += ",";
      if (t) out += support::fmt_auto(*t);
    }
    out += "\n";
  }
  return out;
}

std::string summarize_speedup(const ScalingSeries& times) {
  const auto seq = times.sequential();
  if (!seq || times.size() < 2) return "(insufficient data)\n";
  const ScalingSeries s = times.to_speedup();
  const auto& last = s.points().back();
  const double kf = karp_flatt(last.time, last.p);
  std::string out;
  out += "speedup at p=" + std::to_string(last.p) + ": " +
         support::fmt_double(last.time, 2) + "x";
  out += "  (efficiency " +
         support::fmt_double(last.time / last.p * 100.0, 1) + "%,";
  out += " Karp-Flatt serial fraction " + support::fmt_double(kf, 4) + ",";
  out += " Amdahl limit " + support::fmt_double(amdahl_limit(kf), 1) + "x)\n";
  return out;
}

}  // namespace mpisect::speedup
