// Halo-cell ratio model — the quantitative core of the paper's Section 3
// ("Distributed-Memory Constraints").
//
// For stencil codes, the communicated/stored data ratio per rank is the
// surface-to-volume ratio of its subdomain. The paper's argument:
//   * "the halo-cells ratio directly linked with communication size is
//     smaller for large memory areas";
//   * "higher dimension domain decompositions require larger local domains
//     to minimize this memory overhead";
//   * therefore shrinking memory per rank on many-core machines forces
//     MPI+X: fewer, fatter ranks with threads inside.
//
// This header computes those ratios exactly for d-dimensional block
// decompositions of cubic domains with a 1-cell halo, and the derived
// quantities the Sec. 3 discussion turns on (memory overhead per rank,
// the rank count at which overhead crosses a budget).
#pragma once

#include <cstdint>

namespace mpisect::speedup {

/// A rank's local block: `cells_per_dim` interior cells per decomposed
/// dimension (the block is cubic in the decomposed dimensions).
struct HaloStats {
  double interior_cells = 0.0;  ///< owned cells
  double halo_cells = 0.0;      ///< ghost copies stored for neighbours
  /// halo / interior — the memory *and* communication overhead ratio.
  double ratio = 0.0;
  /// Cells sent per step (boundary layer of the interior).
  double surface_cells = 0.0;
};

/// Halo statistics for a cubic local block of `n` cells per edge (edge
/// length in every one of the `total_dims` dimensions), decomposed across
/// `decomp_dims` of them with halo width `halo`. Example: the paper's
/// convolution uses total_dims = 2, decomp_dims = 1.
[[nodiscard]] HaloStats halo_stats(std::int64_t n, int total_dims,
                                   int decomp_dims, int halo = 1);

/// Per-rank interior edge length when a cubic global domain of
/// `global_cells` total cells is split evenly over `ranks` ranks in
/// `decomp_dims` dimensions (requires ranks to have an integral
/// decomp_dims-th root; returns -1 otherwise).
[[nodiscard]] double local_edge(double global_cells, int total_dims,
                                int decomp_dims, int ranks);

/// The smallest local edge n such that the halo ratio stays below
/// `budget` (e.g. 0.1 = at most 10% memory overhead). This is the paper's
/// "higher dimension decompositions require larger local domains" made
/// concrete.
[[nodiscard]] std::int64_t min_edge_for_budget(int total_dims,
                                               int decomp_dims, double budget,
                                               int halo = 1);

}  // namespace mpisect::speedup
