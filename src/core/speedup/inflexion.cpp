#include "core/speedup/inflexion.hpp"

#include <algorithm>

namespace mpisect::speedup {

std::optional<InflexionPoint> find_inflexion(const ScalingSeries& series,
                                             double tolerance) {
  const auto& pts = series.points();
  if (pts.size() < 3) return std::nullopt;

  std::size_t min_idx = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].time < pts[min_idx].time) min_idx = i;
  }
  if (min_idx + 1 >= pts.size()) return std::nullopt;  // still decreasing

  // Require a significant rise after the minimum, not just noise.
  double max_after = 0.0;
  for (std::size_t i = min_idx + 1; i < pts.size(); ++i) {
    max_after = std::max(max_after, pts[i].time);
  }
  const double floor = pts[min_idx].time;
  if (floor <= 0.0) return std::nullopt;
  const double rise = max_after / floor - 1.0;
  if (rise <= tolerance) return std::nullopt;

  InflexionPoint ip;
  ip.p = pts[min_idx].p;
  ip.time = floor;
  ip.rise = rise;
  ip.index = min_idx;
  return ip;
}

std::optional<double> inflexion_bound(const ScalingSeries& series,
                                      double total_sequential_time,
                                      double tolerance) {
  const auto ip = find_inflexion(series, tolerance);
  if (!ip || ip->time <= 0.0) return std::nullopt;
  return total_sequential_time / ip->time;
}

std::optional<int> max_useful_scale(const ScalingSeries& series,
                                    double tolerance) {
  if (const auto ip = find_inflexion(series, tolerance)) return ip->p;
  if (const auto best = series.best()) return best->p;
  return std::nullopt;
}

}  // namespace mpisect::speedup
