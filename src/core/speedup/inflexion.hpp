// Inflexion-point detection (paper Section 5.2, Fig. 10).
//
// "Any section which duration stops decreasing with the number of threads
// immediately defines an upper bound on the speedup." The inflexion point
// of a section's scaling series is the scale at which its time reaches its
// minimum before rising again — the point where the section's "parallelism
// budget" is exhausted. Beyond it, adding processing units is counter-
// productive, and the partial bound computed there transposes to every
// larger scale.
#pragma once

#include <optional>
#include <string>

#include "core/speedup/series.hpp"

namespace mpisect::speedup {

struct InflexionPoint {
  int p = 0;             ///< scale at which the minimum time is reached
  double time = 0.0;     ///< the section time at that scale
  double rise = 0.0;     ///< relative rise observed after the minimum
  std::size_t index = 0; ///< index into the series
};

/// Detect the inflexion point of a (time vs p) series: the global-minimum
/// sample, provided a later sample exceeds it by more than `tolerance`
/// (relative, e.g. 0.02 = 2%). Returns nullopt for monotonically
/// non-increasing series (still scaling) or series shorter than 3 points.
[[nodiscard]] std::optional<InflexionPoint> find_inflexion(
    const ScalingSeries& series, double tolerance = 0.02);

/// The speedup bound a section imposes at its inflexion point:
/// B = total_sequential_time / time_at_inflexion (Eq. 6 evaluated there).
/// Returns nullopt if the series has no inflexion.
[[nodiscard]] std::optional<double> inflexion_bound(
    const ScalingSeries& series, double total_sequential_time,
    double tolerance = 0.02);

/// Recommendation derived from the paper's discussion: the largest scale
/// worth running, i.e. the inflexion p if one exists, else the best p
/// sampled ("a configuration beyond its inflexion point should never be
/// ran").
[[nodiscard]] std::optional<int> max_useful_scale(const ScalingSeries& series,
                                                  double tolerance = 0.02);

}  // namespace mpisect::speedup
