// Scaling series: a named mapping p -> time, the unit of data every
// speedup analysis in this project consumes (p may be MPI processes or
// OpenMP threads — the math is identical).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mpisect::speedup {

struct ScalingPoint {
  int p = 1;          ///< processing units
  double time = 0.0;  ///< seconds at this scale
};

class ScalingSeries {
 public:
  ScalingSeries() = default;
  explicit ScalingSeries(std::string name) : name_(std::move(name)) {}

  void add(int p, double time);
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<ScalingPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] const ScalingPoint& operator[](std::size_t i) const {
    return points_[i];
  }

  /// Time at exactly p, if sampled.
  [[nodiscard]] std::optional<double> at(int p) const noexcept;
  /// Time of the p == 1 sample (the sequential reference), if present.
  [[nodiscard]] std::optional<double> sequential() const noexcept {
    return at(1);
  }
  /// Smallest time in the series and the p achieving it.
  [[nodiscard]] std::optional<ScalingPoint> best() const noexcept;

  /// Derived speedup series S(p) = t_ref / t(p). Uses the p==1 sample as
  /// reference unless `t_ref` is supplied.
  [[nodiscard]] ScalingSeries to_speedup(double t_ref = 0.0) const;
  /// Derived efficiency series E(p) = S(p)/p.
  [[nodiscard]] ScalingSeries to_efficiency(double t_ref = 0.0) const;

  /// x/y vectors for charting.
  [[nodiscard]] std::vector<double> xs() const;
  [[nodiscard]] std::vector<double> ys() const;

 private:
  std::string name_;
  std::vector<ScalingPoint> points_;  ///< kept sorted by p
};

}  // namespace mpisect::speedup
