// Adaptive parallelism restraint — the paper's Section 8 future work:
// "If we now consider a large application with multiple sections featuring
// various inter-dependent algorithms, we would like to explore the
// possibility of dynamically restraining parallelism for non-scalable
// sections — investigating potential improvements for the overall
// computation."
//
// Given per-section scaling series over thread counts (exactly what the
// SectionProfiler produces from a sweep), AdaptiveAdvisor picks, per
// section, the thread count at that section's own optimum instead of one
// global team size. Because the sections execute sequentially within a
// timestep, the predicted walltime is the sum of per-section times — so
// per-section restraint is never worse than the best uniform team in the
// model, and strictly better when sections peak at different scales.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/speedup/series.hpp"

namespace mpisect::speedup {

struct SectionRecommendation {
  std::string label;
  int threads = 1;        ///< per-section recommended team size
  double time = 0.0;      ///< the section's time at that team size
  bool restrained = false;  ///< true if below the globally best team size
};

class AdaptiveAdvisor {
 public:
  /// Register one section's (threads -> time) series. Every series should
  /// sample the same thread counts.
  void add_section(ScalingSeries series);

  [[nodiscard]] const std::vector<ScalingSeries>& sections() const noexcept {
    return sections_;
  }

  /// Predicted walltime with one uniform team of `threads` (sum of section
  /// times at that size). Empty optional if a section lacks the sample.
  [[nodiscard]] std::optional<double> predicted_uniform(int threads) const;

  /// The best uniform team size among the sampled counts.
  [[nodiscard]] std::optional<int> best_uniform() const;

  /// Per-section restraint: each section at its own argmin.
  [[nodiscard]] std::vector<SectionRecommendation> recommend() const;

  /// Predicted walltime under the per-section recommendation.
  [[nodiscard]] double predicted_adaptive() const;

  /// Improvement factor of adaptive over the best uniform team
  /// (>= 1.0 by construction within the model). 1.0 when no data.
  [[nodiscard]] double improvement() const;

 private:
  std::vector<ScalingSeries> sections_;
};

}  // namespace mpisect::speedup
