// The MPI_Section runtime — the paper's primary contribution (Section 4).
//
// A *section* is "a temporal outline of a distributed code region entered by
// all the MPI processes belonging to a given communicator". Entering and
// leaving are non-blocking collective calls: each rank records only local
// state (a per-communicator stack) and the runtime notifies tools through
// the PMPI-interceptable callbacks of hooks.hpp, passing 32 bytes of tool
// payload preserved from enter to leave.
//
// Invariants enforced (paper: "sections are always perfectly nested,
// entered in the same order and exited in the opposite order"):
//   * exit label must equal the top of the per-communicator stack;
//   * an implicit MPI_MAIN section brackets MPI_Init..MPI_Finalize on the
//     world communicator;
//   * optional *validation mode* cross-checks label and depth across all
//     ranks of the communicator with a non-intrusive rendezvous that costs
//     no virtual time ("non-intrusive synchronization primitives which
//     could be selectively enabled").
//
// The runtime attaches to a World as an Extension:
//   auto sect = sections::SectionRuntime::install(world);
//   world.run([](Ctx& ctx) {
//     Comm comm = ctx.world_comm();
//     MPIX_Section_enter(comm, "HALO");
//     ...
//     MPIX_Section_exit(comm, "HALO");
//   });
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sections/labels.hpp"
#include "mpisim/hooks.hpp"
#include "mpisim/runtime.hpp"

namespace mpisect::sections {

/// Result codes for the MPIX_Section calls (0 = success, matching MPI).
enum SectionResult : int {
  kSectionOk = 0,
  kSectionErrNoRuntime = 1,   ///< SectionRuntime not installed on the world
  kSectionErrBadLabel = 2,    ///< null/empty label
  kSectionErrNotNested = 3,   ///< exit label does not match the stack top
  kSectionErrEmptyStack = 4,  ///< exit with no open section
  kSectionErrMismatch = 5,    ///< validation: ranks disagree on label/depth
  kSectionErrComm = 6,        ///< invalid communicator
  kSectionErrLeaked = 7,      ///< section still open at MPI_Finalize
};

[[nodiscard]] const char* section_result_name(int code) noexcept;

/// The implicit outermost section (entered in MPI_Init, left in
/// MPI_Finalize — paper Sec. 4).
inline constexpr const char* kMainSectionLabel = "MPI_MAIN";

/// One open section on a rank's stack.
struct ActiveSection {
  LabelId label = kInvalidLabel;
  std::uint64_t instance = 0;  ///< occurrence number of (comm,label)
  double t_in = 0.0;           ///< virtual entry time on this rank
  int depth = 0;               ///< 0 = MPI_MAIN
  std::array<char, mpisim::kSectionDataBytes> data{};  ///< tool payload
};

/// Counters exposed for overhead benches and tests.
struct SectionCounters {
  std::uint64_t enters = 0;
  std::uint64_t exits = 0;
  std::uint64_t validation_rounds = 0;
  std::uint64_t errors = 0;
};

class SectionRuntime final : public mpisim::Extension {
 public:
  /// Create and attach a SectionRuntime to the world (before run()).
  /// Returns the existing instance if one is already attached.
  static std::shared_ptr<SectionRuntime> install(mpisim::World& world);
  /// The world's SectionRuntime, or nullptr.
  static std::shared_ptr<SectionRuntime> find(mpisim::World& world);

  /// Non-blocking collective section entry (MPIX_Section_enter).
  int enter(mpisim::Ctx& ctx, mpisim::Comm& comm, const char* label);
  /// Non-blocking collective section exit (MPIX_Section_exit).
  int exit(mpisim::Ctx& ctx, mpisim::Comm& comm, const char* label);

  /// Enable/disable the cross-rank consistency check (defaults to the
  /// world option validate_sections).
  void set_validation(bool enabled) noexcept { validate_.store(enabled); }
  [[nodiscard]] bool validation() const noexcept { return validate_.load(); }

  [[nodiscard]] LabelRegistry& labels() noexcept { return labels_; }

  /// Snapshot of the calling rank's open-section stack on `comm` —
  /// innermost last. This is the "debugger would tell you the bug is in
  /// the communication section" use case (paper Sec. 5.3).
  [[nodiscard]] std::vector<ActiveSection> stack_snapshot(
      const mpisim::Ctx& ctx, const mpisim::Comm& comm) const;
  /// Nesting depth of the calling rank's open-section stack on `comm`
  /// (counts the implicit MPI_MAIN on the world communicator). Exposed so
  /// correctness tools can lint section usage without a shadow stack.
  [[nodiscard]] int open_depth(const mpisim::Ctx& ctx,
                               const mpisim::Comm& comm) const;
  /// Human-readable " / "-joined stack labels for the calling rank.
  [[nodiscard]] std::string stack_string(const mpisim::Ctx& ctx,
                                         const mpisim::Comm& comm) const;

  /// Aggregate counters over all ranks (sample after run()).
  [[nodiscard]] SectionCounters counters() const;

  // Extension interface: MPI_MAIN bracketing.
  void on_rank_init(mpisim::Ctx& ctx) override;
  void on_rank_finalize(mpisim::Ctx& ctx) override;

  explicit SectionRuntime(int world_size);

 private:
  struct RankState {
    /// context id -> open-section stack.
    std::map<int, std::vector<ActiveSection>> stacks;
    /// (context id, label) -> occurrence counter.
    std::map<std::pair<int, LabelId>, std::uint64_t> occurrences;
    SectionCounters counters;
  };
  RankState& state_of(const mpisim::Ctx& ctx);
  const RankState& state_of(const mpisim::Ctx& ctx) const;
  int validate(mpisim::Ctx& ctx, mpisim::Comm& comm, LabelId label, int depth,
               bool entering);

  LabelRegistry labels_;
  std::vector<RankState> ranks_;  ///< indexed by world rank, owner-only access
  std::atomic<bool> validate_{false};
};

}  // namespace mpisect::sections
