#include "core/sections/metrics.hpp"

#include <algorithm>
#include <limits>

namespace mpisect::sections {

InstanceMetrics compute_metrics(std::span<const RankSpan> spans) {
  InstanceMetrics m;
  if (spans.empty()) return m;
  m.nranks = static_cast<int>(spans.size());

  m.t_min = std::numeric_limits<double>::infinity();
  m.t_max = -std::numeric_limits<double>::infinity();
  for (const auto& s : spans) {
    m.t_min = std::min(m.t_min, s.t_in);
    m.t_max = std::max(m.t_max, s.t_out);
  }

  m.section_min = std::numeric_limits<double>::infinity();
  m.section_max = -std::numeric_limits<double>::infinity();
  double section_sum = 0.0;
  double imb_sum = 0.0;
  double imb_sq = 0.0;
  for (const auto& s : spans) {
    const double tsection = s.t_out - m.t_min;
    section_sum += tsection;
    m.section_min = std::min(m.section_min, tsection);
    m.section_max = std::max(m.section_max, tsection);
    const double imb_in = s.t_in - m.t_min;
    imb_sum += imb_in;
    imb_sq += imb_in * imb_in;
    m.entry_imb_max = std::max(m.entry_imb_max, imb_in);
  }
  const auto n = static_cast<double>(m.nranks);
  m.section_mean = section_sum / n;
  m.entry_imb_mean = imb_sum / n;
  m.entry_imb_var =
      std::max(0.0, imb_sq / n - m.entry_imb_mean * m.entry_imb_mean);
  m.imbalance = (m.t_max - m.t_min) - m.section_mean;
  return m;
}

void AggregatedMetrics::add(const InstanceMetrics& m) noexcept {
  const double prev = static_cast<double>(instances);
  ++instances;
  total_span += m.span();
  total_section_mean += m.section_mean;
  total_imbalance += m.imbalance;
  max_entry_imb = std::max(max_entry_imb, m.entry_imb_max);
  mean_entry_imb =
      (mean_entry_imb * prev + m.entry_imb_mean) / static_cast<double>(instances);
}

}  // namespace mpisect::sections
