// Label interning for MPI sections.
//
// Section labels are user strings ("HALO", "LagrangeNodal", ...). Tools
// compare and aggregate them constantly, so the runtime interns each label
// once and hands out dense 32-bit ids. Interning is mutex-protected (it
// happens at most once per distinct label); lookups by id are lock-free
// reads of an append-only table snapshot guarded by the same mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mpisect::sections {

using LabelId = std::uint32_t;
inline constexpr LabelId kInvalidLabel = ~LabelId{0};

class LabelRegistry {
 public:
  /// Intern a label, returning its dense id (stable for the registry's
  /// lifetime). Thread-safe.
  LabelId intern(std::string_view label);

  /// Name of an interned id ("?" for unknown ids). Thread-safe.
  [[nodiscard]] std::string name(LabelId id) const;

  /// Id of an already-interned label, or kInvalidLabel.
  [[nodiscard]] LabelId lookup(std::string_view label) const;

  [[nodiscard]] std::size_t size() const;

  /// Snapshot of all interned names, indexed by id.
  [[nodiscard]] std::vector<std::string> all() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

/// 64-bit stable hash of a label string — used by the validation pass to
/// compare labels across ranks without shipping strings.
[[nodiscard]] std::uint64_t label_hash(std::string_view label) noexcept;

}  // namespace mpisect::sections
