#include "core/sections/api.hpp"

namespace mpisect::sections {

int MPIX_Section_enter(mpisim::Comm& comm, const char* label) {
  if (!comm.valid()) return kSectionErrComm;
  const auto rt = SectionRuntime::find(comm.ctx().world());
  if (!rt) return kSectionErrNoRuntime;
  return rt->enter(comm.ctx(), comm, label);
}

int MPIX_Section_exit(mpisim::Comm& comm, const char* label) {
  if (!comm.valid()) return kSectionErrComm;
  const auto rt = SectionRuntime::find(comm.ctx().world());
  if (!rt) return kSectionErrNoRuntime;
  return rt->exit(comm.ctx(), comm, label);
}

void reset_section_callbacks(mpisim::World& world) {
  world.hooks().section_enter_cb = nullptr;
  world.hooks().section_leave_cb = nullptr;
}

}  // namespace mpisect::sections
