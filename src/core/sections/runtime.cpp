#include "core/sections/runtime.hpp"

#include "support/log.hpp"

namespace mpisect::sections {

const char* section_result_name(int code) noexcept {
  switch (code) {
    case kSectionOk: return "MPI_SUCCESS";
    case kSectionErrNoRuntime: return "MPIX_ERR_SECTION_NO_RUNTIME";
    case kSectionErrBadLabel: return "MPIX_ERR_SECTION_BAD_LABEL";
    case kSectionErrNotNested: return "MPIX_ERR_SECTION_NOT_NESTED";
    case kSectionErrEmptyStack: return "MPIX_ERR_SECTION_EMPTY_STACK";
    case kSectionErrMismatch: return "MPIX_ERR_SECTION_MISMATCH";
    case kSectionErrComm: return "MPIX_ERR_SECTION_COMM";
    case kSectionErrLeaked: return "MPIX_ERR_SECTION_LEAKED";
  }
  return "MPIX_ERR_SECTION_UNKNOWN";
}

namespace {

/// Notify tools of a rejected/invalid section operation (PMPI-style:
/// correctness tools hook this to turn runtime rejections into findings).
int fire_section_error(mpisim::Ctx& ctx, mpisim::Comm& comm,
                       const char* label, int code) {
  auto& cb = ctx.world().hooks().section_error_cb;
  if (cb) cb(ctx, comm, label, code);
  return code;
}

}  // namespace

SectionRuntime::SectionRuntime(int world_size)
    : ranks_(static_cast<std::size_t>(world_size)) {}

std::shared_ptr<SectionRuntime> SectionRuntime::install(mpisim::World& world) {
  if (auto existing = find(world)) return existing;
  auto rt = std::make_shared<SectionRuntime>(world.size());
  rt->validate_.store(world.options().validate_sections);
  world.attach_extension(rt);
  return rt;
}

std::shared_ptr<SectionRuntime> SectionRuntime::find(mpisim::World& world) {
  return world.find_extension<SectionRuntime>();
}

SectionRuntime::RankState& SectionRuntime::state_of(const mpisim::Ctx& ctx) {
  return ranks_[static_cast<std::size_t>(ctx.rank())];
}

const SectionRuntime::RankState& SectionRuntime::state_of(
    const mpisim::Ctx& ctx) const {
  return ranks_[static_cast<std::size_t>(ctx.rank())];
}

int SectionRuntime::validate(mpisim::Ctx& ctx, mpisim::Comm& comm,
                             LabelId label, int depth, bool entering) {
  // Cross-check that every rank of the communicator is entering/leaving the
  // same label at the same depth. The rendezvous synchronizes the real
  // threads but charges no virtual time — it is a checking device, not a
  // modelled MPI operation ("non-intrusive").
  auto& st = state_of(ctx);
  ++st.counters.validation_rounds;
  const std::uint64_t token =
      label_hash(labels_.name(label)) ^
      (static_cast<std::uint64_t>(depth) << 1) ^
      (entering ? 1ULL : 0ULL);
  auto [tokens, t_max] = comm.collsync_u64(token);
  (void)t_max;
  for (const auto t : tokens) {
    if (t != token) {
      ++st.counters.errors;
      MPISECT_LOG_WARN(
          "section validation mismatch on comm %d (rank %d, label '%s')",
          comm.context_id(), comm.rank(), labels_.name(label).c_str());
      return kSectionErrMismatch;
    }
  }
  return kSectionOk;
}

int SectionRuntime::enter(mpisim::Ctx& ctx, mpisim::Comm& comm,
                          const char* label) {
  if (!comm.valid()) {
    return fire_section_error(ctx, comm, label, kSectionErrComm);
  }
  if (label == nullptr || *label == '\0') {
    return fire_section_error(ctx, comm, label, kSectionErrBadLabel);
  }

  auto& st = state_of(ctx);
  ++st.counters.enters;
  const LabelId id = labels_.intern(label);
  auto& stack = st.stacks[comm.context_id()];

  ActiveSection section;
  section.label = id;
  section.instance = st.occurrences[{comm.context_id(), id}]++;
  section.t_in = ctx.now();
  section.depth = static_cast<int>(stack.size());
  stack.push_back(section);

  if (validate_.load(std::memory_order_relaxed)) {
    const int rc = validate(ctx, comm, id, section.depth, /*entering=*/true);
    if (rc != kSectionOk) return fire_section_error(ctx, comm, label, rc);
  }

  // Tool notification (MPIX_Section_enter_cb, paper Fig. 2). The data
  // pointer aliases the stack slot so the payload survives to the exit.
  auto& cb = ctx.world().hooks().section_enter_cb;
  if (cb) cb(ctx, comm, label, stack.back().data.data());
  return kSectionOk;
}

int SectionRuntime::exit(mpisim::Ctx& ctx, mpisim::Comm& comm,
                         const char* label) {
  if (!comm.valid()) {
    return fire_section_error(ctx, comm, label, kSectionErrComm);
  }
  if (label == nullptr || *label == '\0') {
    return fire_section_error(ctx, comm, label, kSectionErrBadLabel);
  }

  auto& st = state_of(ctx);
  ++st.counters.exits;
  const auto it = st.stacks.find(comm.context_id());
  if (it == st.stacks.end() || it->second.empty()) {
    ++st.counters.errors;
    return fire_section_error(ctx, comm, label, kSectionErrEmptyStack);
  }
  auto& stack = it->second;
  const LabelId id = labels_.intern(label);
  if (stack.back().label != id) {
    ++st.counters.errors;
    MPISECT_LOG_WARN("section exit '%s' does not match open section '%s'",
                     label, labels_.name(stack.back().label).c_str());
    return fire_section_error(ctx, comm, label, kSectionErrNotNested);
  }

  if (validate_.load(std::memory_order_relaxed)) {
    const int rc = validate(ctx, comm, id, stack.back().depth,
                            /*entering=*/false);
    if (rc != kSectionOk) {
      stack.pop_back();
      return fire_section_error(ctx, comm, label, rc);
    }
  }

  auto& cb = ctx.world().hooks().section_leave_cb;
  if (cb) cb(ctx, comm, label, stack.back().data.data());
  stack.pop_back();
  return kSectionOk;
}

std::vector<ActiveSection> SectionRuntime::stack_snapshot(
    const mpisim::Ctx& ctx, const mpisim::Comm& comm) const {
  const auto& st = state_of(ctx);
  const auto it = st.stacks.find(comm.context_id());
  if (it == st.stacks.end()) return {};
  return it->second;
}

int SectionRuntime::open_depth(const mpisim::Ctx& ctx,
                               const mpisim::Comm& comm) const {
  const auto& st = state_of(ctx);
  const auto it = st.stacks.find(comm.context_id());
  return it == st.stacks.end() ? 0 : static_cast<int>(it->second.size());
}

std::string SectionRuntime::stack_string(const mpisim::Ctx& ctx,
                                         const mpisim::Comm& comm) const {
  std::string out;
  for (const auto& s : stack_snapshot(ctx, comm)) {
    if (!out.empty()) out += " / ";
    out += labels_.name(s.label);
  }
  return out;
}

SectionCounters SectionRuntime::counters() const {
  SectionCounters total;
  for (const auto& rs : ranks_) {
    total.enters += rs.counters.enters;
    total.exits += rs.counters.exits;
    total.validation_rounds += rs.counters.validation_rounds;
    total.errors += rs.counters.errors;
  }
  return total;
}

void SectionRuntime::on_rank_init(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  enter(ctx, world, kMainSectionLabel);
}

void SectionRuntime::on_rank_finalize(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  // Force-unwind any sections the application leaked (with a warning), so
  // MPI_MAIN always closes and tools see balanced events.
  auto& st = state_of(ctx);
  auto it = st.stacks.find(world.context_id());
  if (it != st.stacks.end()) {
    while (it->second.size() > 1) {
      const std::string leaked = labels_.name(it->second.back().label);
      MPISECT_LOG_WARN("rank %d leaked open section '%s' at finalize",
                       ctx.rank(), leaked.c_str());
      fire_section_error(ctx, world, leaked.c_str(), kSectionErrLeaked);
      exit(ctx, world, leaked.c_str());
      it = st.stacks.find(world.context_id());
      if (it == st.stacks.end()) return;
    }
  }
  exit(ctx, world, kMainSectionLabel);
}

}  // namespace mpisect::sections
