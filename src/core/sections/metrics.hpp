// Derived section metrics (paper Figure 3).
//
// Given each rank's entry/exit timestamps for one section instance:
//   Tmin       time the *first* process enters the section
//   Tin        per-rank entry timestamp
//   Tout       per-rank exit timestamp
//   Tsection   per-rank time in the section, defined as Tout - Tmin
//   Tmax       time the *last* process leaves
//   imb_in     per-rank entry imbalance, Tin - Tmin
//   imb        section imbalance, (Tmax - Tmin) - mean(Tsection)
//
// The paper's argument: these capture *distributed* phase behaviour —
// variability and imbalance — that per-function exclusive-time profiles
// cannot express, because a section is a parallel time slice rather than a
// local duration.
#pragma once

#include <span>
#include <vector>

namespace mpisect::sections {

/// One rank's view of one section instance.
struct RankSpan {
  int rank = 0;
  double t_in = 0.0;
  double t_out = 0.0;
};

struct InstanceMetrics {
  int nranks = 0;
  double t_min = 0.0;  ///< first entry across ranks
  double t_max = 0.0;  ///< last exit across ranks
  /// Tsection statistics (Tsection_r = t_out_r - t_min).
  double section_mean = 0.0;
  double section_min = 0.0;
  double section_max = 0.0;
  /// Entry imbalance statistics (imb_in_r = t_in_r - t_min).
  double entry_imb_mean = 0.0;
  double entry_imb_var = 0.0;
  double entry_imb_max = 0.0;
  /// Section imbalance: (t_max - t_min) - section_mean.
  double imbalance = 0.0;

  [[nodiscard]] double span() const noexcept { return t_max - t_min; }
};

/// Compute Fig. 3 metrics from per-rank spans. Returns a default-initialized
/// result for an empty input.
[[nodiscard]] InstanceMetrics compute_metrics(std::span<const RankSpan> spans);

/// Merge instance metrics over repeated instances of the same section
/// (e.g. 1000 HALO exchanges): sums spans and section times, averages
/// imbalance statistics, keeps global extrema.
struct AggregatedMetrics {
  long instances = 0;
  double total_span = 0.0;          ///< sum over instances of (t_max - t_min)
  double total_section_mean = 0.0;  ///< sum over instances of section_mean
  double total_imbalance = 0.0;
  double max_entry_imb = 0.0;
  double mean_entry_imb = 0.0;  ///< averaged over instances

  void add(const InstanceMetrics& m) noexcept;
};

}  // namespace mpisect::sections
