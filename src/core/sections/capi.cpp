// C ABI of the section interface: the extern "C" functions declared in
// include/mpix_section.h, implemented as thin shims over the C++ overloads
// in api.hpp. MPIX_Comm is a reinterpret_cast'ed mpisim::Comm*.
#include "mpix_section.h"

#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/hooks.hpp"
#include "mpisim/runtime.hpp"

namespace {

namespace sec = mpisect::sections;
namespace sim = mpisect::mpisim;

// The macros are the public ABI; the enum is the implementation. Keep
// them bound together at compile time.
static_assert(MPIX_SECTION_OK == sec::kSectionOk);
static_assert(MPIX_SECTION_ERR_NO_RUNTIME == sec::kSectionErrNoRuntime);
static_assert(MPIX_SECTION_ERR_BAD_LABEL == sec::kSectionErrBadLabel);
static_assert(MPIX_SECTION_ERR_NOT_NESTED == sec::kSectionErrNotNested);
static_assert(MPIX_SECTION_ERR_EMPTY_STACK == sec::kSectionErrEmptyStack);
static_assert(MPIX_SECTION_ERR_MISMATCH == sec::kSectionErrMismatch);
static_assert(MPIX_SECTION_ERR_COMM == sec::kSectionErrComm);
static_assert(MPIX_SECTION_ERR_LEAKED == sec::kSectionErrLeaked);
static_assert(MPIX_SECTION_DATA_BYTES == sim::kSectionDataBytes);

sim::Comm* unwrap(MPIX_Comm comm) {
  return reinterpret_cast<sim::Comm*>(comm);
}

}  // namespace

extern "C" int MPIX_Section_enter(MPIX_Comm comm, const char* label) {
  if (comm == nullptr) return MPIX_SECTION_ERR_COMM;
  return sec::MPIX_Section_enter(*unwrap(comm), label);
}

extern "C" int MPIX_Section_exit(MPIX_Comm comm, const char* label) {
  if (comm == nullptr) return MPIX_SECTION_ERR_COMM;
  return sec::MPIX_Section_exit(*unwrap(comm), label);
}

// Writes the raw HookTable slots, so it follows the same rule as any raw
// hook user: register before tools attach to the world's ToolStack — the
// stack captures raw hooks as its innermost base layer at creation.
extern "C" int MPIX_Section_set_callbacks(MPIX_Comm comm,
                                          MPIX_Section_enter_cb on_enter,
                                          MPIX_Section_exit_cb on_exit) {
  if (comm == nullptr || !unwrap(comm)->valid()) return MPIX_SECTION_ERR_COMM;
  sim::HookTable& hooks = unwrap(comm)->ctx().world().hooks();
  if (on_enter == nullptr) {
    hooks.section_enter_cb = nullptr;
  } else {
    hooks.section_enter_cb = [on_enter](sim::Ctx&, sim::Comm& c,
                                        const char* label, char* data) {
      on_enter(mpisect::sections::mpix_handle(c), label, data);
    };
  }
  if (on_exit == nullptr) {
    hooks.section_leave_cb = nullptr;
  } else {
    hooks.section_leave_cb = [on_exit](sim::Ctx&, sim::Comm& c,
                                       const char* label, char* data) {
      on_exit(mpisect::sections::mpix_handle(c), label, data);
    };
  }
  return MPIX_SECTION_OK;
}
