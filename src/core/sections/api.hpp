// Paper-faithful MPI_Section interface (Figures 1 and 2 of the paper).
//
//   /* Enter an MPI Section */
//   int MPIX_Section_enter(MPI_Comm comm, const char *label);
//   /* Leave an MPI Section */
//   int MPIX_Section_exit(MPI_Comm comm, const char *label);
//
// plus the tool-side callbacks
//
//   int MPIX_Section_enter_cb(MPI_Comm comm, const char *label, char data[32]);
//   int MPIX_Section_leave_cb(MPI_Comm comm, const char *label, char data[32]);
//
// which tools override through the world's HookTable (the PMPI analogue in
// this runtime). A ScopedSection RAII helper is provided for C++ call
// sites; the paper's point that "application programmers are only required
// to manipulate two function calls" is preserved — the free functions are
// the canonical interface.
//
// The stable public ABI lives in include/mpix_section.h (plain C); the
// overloads here are the typed C++ view of the same functions, and
// mpix_handle() converts a Comm into the opaque MPIX_Comm the C entry
// points take.
#pragma once

#include "core/sections/runtime.hpp"
#include "mpisim/comm.hpp"
#include "mpix_section.h"

namespace mpisect::sections {

/// Enter an MPI Section — non-blocking collective on `comm`.
/// Returns kSectionOk (0) or a SectionResult error code.
int MPIX_Section_enter(mpisim::Comm& comm, const char* label);

/// Leave an MPI Section — non-blocking collective on `comm`.
int MPIX_Section_exit(mpisim::Comm& comm, const char* label);

/// Install the default (empty) PMPI-level callbacks. A tool "redefines"
/// the callbacks by assigning world.hooks().section_enter_cb/leave_cb;
/// this helper resets them to the runtime's empty PMPI versions
/// ("their PMPI version being possibly empty if the runtime ignores such
/// events" — paper Sec. 4).
void reset_section_callbacks(mpisim::World& world);

/// The opaque C handle for `comm`, as taken by the extern "C" entry points
/// of include/mpix_section.h. Valid for the lifetime of `comm`.
[[nodiscard]] inline ::MPIX_Comm mpix_handle(mpisim::Comm& comm) noexcept {
  return reinterpret_cast<::MPIX_Comm>(&comm);
}

/// RAII wrapper: enters on construction, exits on destruction.
class ScopedSection {
 public:
  ScopedSection(mpisim::Comm& comm, const char* label)
      : comm_(&comm), label_(label) {
    rc_ = MPIX_Section_enter(comm, label);
  }
  ~ScopedSection() {
    if (rc_ == kSectionOk) MPIX_Section_exit(*comm_, label_);
  }
  ScopedSection(const ScopedSection&) = delete;
  ScopedSection& operator=(const ScopedSection&) = delete;

  [[nodiscard]] int enter_result() const noexcept { return rc_; }

 private:
  mpisim::Comm* comm_;
  const char* label_;
  int rc_;
};

}  // namespace mpisect::sections
