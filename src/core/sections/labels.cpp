#include "core/sections/labels.hpp"

#include "support/rng.hpp"

namespace mpisect::sections {

LabelId LabelRegistry::intern(std::string_view label) {
  const std::lock_guard lock(mu_);
  const std::string key(label);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<LabelId>(names_.size());
  names_.push_back(key);
  ids_.emplace(key, id);
  return id;
}

std::string LabelRegistry::name(LabelId id) const {
  const std::lock_guard lock(mu_);
  if (id >= names_.size()) return "?";
  return names_[id];
}

LabelId LabelRegistry::lookup(std::string_view label) const {
  const std::lock_guard lock(mu_);
  const auto it = ids_.find(std::string(label));
  return it == ids_.end() ? kInvalidLabel : it->second;
}

std::size_t LabelRegistry::size() const {
  const std::lock_guard lock(mu_);
  return names_.size();
}

std::vector<std::string> LabelRegistry::all() const {
  const std::lock_guard lock(mu_);
  return names_;
}

std::uint64_t label_hash(std::string_view label) noexcept {
  // FNV-1a, then a SplitMix finalizer for avalanche.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return support::splitmix64(h);
}

}  // namespace mpisect::sections
