#include "core/compat/mpi_compat.hpp"

#include <algorithm>

#include "mpisim/error.hpp"

namespace mpisect::mpix {
namespace {

using mpisim::Err;
using mpisim::MpiError;

/// MPI_ERRORS_RETURN at the facade boundary: translate exceptions to codes.
template <typename Fn>
int guarded(Fn&& fn) {
  try {
    fn();
    return MPI_SUCCESS;
  } catch (const MpiError& e) {
    return static_cast<int>(e.code());
  } catch (...) {
    return static_cast<int>(Err::Internal);
  }
}

std::size_t bytes_of(int count, MPI_Datatype datatype) {
  return static_cast<std::size_t>(std::max(count, 0)) *
         mpisim::datatype_size(datatype);
}

void fill_status(MPI_Status* status, const mpisim::Status& st) {
  if (status == MPI_STATUS_IGNORE) return;
  status->MPI_SOURCE = st.source;
  status->MPI_TAG = st.tag;
  status->MPI_ERROR = MPI_SUCCESS;
  status->bytes = st.bytes;
}

}  // namespace

int MPI_Comm_rank(MPI_Comm comm, int* rank) {
  return guarded([&] {
    mpisim::require(rank != nullptr, Err::Arg, "null rank pointer");
    *rank = comm.rank();
  });
}

int MPI_Comm_size(MPI_Comm comm, int* size) {
  return guarded([&] {
    mpisim::require(size != nullptr, Err::Arg, "null size pointer");
    *size = comm.size();
  });
}

double MPI_Wtime(MPI_Comm comm) { return comm.wtime(); }

int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype,
                  int* count) {
  return guarded([&] {
    mpisim::require(status != nullptr && count != nullptr, Err::Arg,
                    "null status/count");
    const std::size_t elem = mpisim::datatype_size(datatype);
    mpisim::require(elem > 0 && status->bytes % elem == 0, Err::Type,
                    "byte count not a multiple of the datatype size");
    *count = static_cast<int>(status->bytes / elem);
  });
}

int MPI_Pcontrol(MPI_Comm comm, int level, const char* label) {
  return guarded([&] { comm.ctx().pcontrol(level, label); });
}

int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm) {
  if (dest == MPI_PROC_NULL) return MPI_SUCCESS;
  return guarded(
      [&] { comm.send(buf, bytes_of(count, datatype), dest, tag); });
}

int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag,
             MPI_Comm comm, MPI_Status* status) {
  if (source == MPI_PROC_NULL) {
    fill_status(status, mpisim::Status{MPI_PROC_NULL, tag, 0, 0.0});
    return MPI_SUCCESS;
  }
  return guarded([&] {
    fill_status(status,
                comm.recv(buf, bytes_of(count, datatype), source, tag));
  });
}

int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status) {
  return guarded([&] {
    fill_status(status, comm.sendrecv(sendbuf, bytes_of(sendcount, sendtype),
                                      dest, sendtag, recvbuf,
                                      bytes_of(recvcount, recvtype), source,
                                      recvtag));
  });
}

int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest,
              int tag, MPI_Comm comm, MPI_Request* request) {
  return guarded([&] {
    mpisim::require(request != nullptr, Err::Arg, "null request");
    *request = comm.isend(buf, bytes_of(count, datatype), dest, tag);
  });
}

int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source,
              int tag, MPI_Comm comm, MPI_Request* request) {
  return guarded([&] {
    mpisim::require(request != nullptr, Err::Arg, "null request");
    *request = comm.irecv(buf, bytes_of(count, datatype), source, tag);
  });
}

int MPI_Wait(MPI_Request* request, MPI_Status* status) {
  return guarded([&] {
    mpisim::require(request != nullptr, Err::Arg, "null request");
    fill_status(status, request->wait());
  });
}

int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses) {
  return guarded([&] {
    mpisim::require(count >= 0 && (count == 0 || requests != nullptr),
                    Err::Arg, "bad request array");
    for (int i = 0; i < count; ++i) {
      const mpisim::Status st = requests[i].wait();
      if (statuses != nullptr) fill_status(&statuses[i], st);
    }
  });
}

int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status) {
  return guarded([&] { fill_status(status, comm.probe(source, tag)); });
}

int MPI_Barrier(MPI_Comm comm) {
  return guarded([&] { comm.barrier(); });
}

int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root,
              MPI_Comm comm) {
  return guarded([&] { comm.bcast(buffer, bytes_of(count, datatype), root); });
}

int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype datatype, MPI_Op op, int root, MPI_Comm comm) {
  return guarded(
      [&] { comm.reduce(sendbuf, recvbuf, count, datatype, op, root); });
}

int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype datatype, MPI_Op op, MPI_Comm comm) {
  return guarded(
      [&] { comm.allreduce(sendbuf, recvbuf, count, datatype, op); });
}

int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
                MPI_Comm comm) {
  return guarded([&] {
    mpisim::require(bytes_of(sendcount, sendtype) ==
                        bytes_of(recvcount, recvtype),
                    Err::Count, "scatter: send/recv extents differ");
    comm.scatter(sendbuf, bytes_of(sendcount, sendtype), recvbuf, root);
  });
}

int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm) {
  return guarded([&] {
    mpisim::require(bytes_of(sendcount, sendtype) ==
                        bytes_of(recvcount, recvtype),
                    Err::Count, "gather: send/recv extents differ");
    comm.gather(sendbuf, bytes_of(sendcount, sendtype), recvbuf, root);
  });
}

int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm) {
  return guarded([&] {
    mpisim::require(bytes_of(sendcount, sendtype) ==
                        bytes_of(recvcount, recvtype),
                    Err::Count, "allgather: send/recv extents differ");
    comm.allgather(sendbuf, bytes_of(sendcount, sendtype), recvbuf);
  });
}

int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm) {
  return guarded([&] {
    mpisim::require(bytes_of(sendcount, sendtype) ==
                        bytes_of(recvcount, recvtype),
                    Err::Count, "alltoall: send/recv extents differ");
    comm.alltoall(sendbuf, bytes_of(sendcount, sendtype), recvbuf);
  });
}

int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm) {
  return guarded([&] {
    mpisim::require(newcomm != nullptr, Err::Arg, "null newcomm");
    *newcomm = comm.split(color, key);
  });
}

int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm) {
  return guarded([&] {
    mpisim::require(newcomm != nullptr, Err::Arg, "null newcomm");
    *newcomm = comm.dup();
  });
}

int MPIX_Section_enter(MPI_Comm comm, const char* label) {
  return sections::MPIX_Section_enter(comm, label);
}

int MPIX_Section_exit(MPI_Comm comm, const char* label) {
  return sections::MPIX_Section_exit(comm, label);
}

}  // namespace mpisect::mpix
