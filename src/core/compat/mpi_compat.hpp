// C-style MPI compatibility facade.
//
// MiniMPI's native interface is C++ (methods on Comm, exceptions, spans).
// This header exposes the same operations with textbook MPI signatures and
// integer return codes, so that application code — and the paper's own
// Figure 1/2 listings — can be transcribed almost verbatim:
//
//   using namespace mpisect::mpix;
//   MPI_Comm comm = ctx.world_comm();
//   int rank;
//   MPI_Comm_rank(comm, &rank);
//   MPI_Send(buf, n, MPI_DOUBLE, dst, tag, comm);
//   MPIX_Section_enter(comm, "HALO");
//
// Counts are element counts against an MPI_Datatype, statuses are written
// through MPI_Status*, and every call returns MPI_SUCCESS or the error
// class an MPI implementation would raise (errors are caught at this
// boundary — MPI_ERRORS_RETURN semantics).
#pragma once

#include "core/sections/api.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/runtime.hpp"

namespace mpisect::mpix {

using MPI_Comm = mpisim::Comm;
using MPI_Datatype = mpisim::Datatype;
using MPI_Op = mpisim::ReduceOp;
using MPI_Request = mpisim::Comm::Request;

inline constexpr MPI_Datatype MPI_BYTE = mpisim::Datatype::Byte;
inline constexpr MPI_Datatype MPI_CHAR = mpisim::Datatype::Char;
inline constexpr MPI_Datatype MPI_INT = mpisim::Datatype::Int;
inline constexpr MPI_Datatype MPI_LONG = mpisim::Datatype::Long;
inline constexpr MPI_Datatype MPI_UNSIGNED_LONG =
    mpisim::Datatype::UnsignedLong;
inline constexpr MPI_Datatype MPI_FLOAT = mpisim::Datatype::Float;
inline constexpr MPI_Datatype MPI_DOUBLE = mpisim::Datatype::Double;
inline constexpr MPI_Datatype MPI_DOUBLE_INT = mpisim::Datatype::DoubleInt;

inline constexpr MPI_Op MPI_SUM = mpisim::ReduceOp::Sum;
inline constexpr MPI_Op MPI_PROD = mpisim::ReduceOp::Prod;
inline constexpr MPI_Op MPI_MAX = mpisim::ReduceOp::Max;
inline constexpr MPI_Op MPI_MIN = mpisim::ReduceOp::Min;
inline constexpr MPI_Op MPI_LAND = mpisim::ReduceOp::LAnd;
inline constexpr MPI_Op MPI_LOR = mpisim::ReduceOp::LOr;
inline constexpr MPI_Op MPI_BAND = mpisim::ReduceOp::BAnd;
inline constexpr MPI_Op MPI_BOR = mpisim::ReduceOp::BOr;
inline constexpr MPI_Op MPI_MAXLOC = mpisim::ReduceOp::MaxLoc;
inline constexpr MPI_Op MPI_MINLOC = mpisim::ReduceOp::MinLoc;

inline constexpr int MPI_SUCCESS = 0;
inline constexpr int MPI_ANY_SOURCE = mpisim::kAnySource;
inline constexpr int MPI_ANY_TAG = mpisim::kAnyTag;
inline constexpr int MPI_PROC_NULL = -2;

struct MPI_Status {
  int MPI_SOURCE = MPI_ANY_SOURCE;
  int MPI_TAG = MPI_ANY_TAG;
  int MPI_ERROR = MPI_SUCCESS;
  std::size_t bytes = 0;  ///< implementation field backing MPI_Get_count
};
/// Pass where the status is not needed.
inline MPI_Status* const MPI_STATUS_IGNORE = nullptr;

// --- environment ------------------------------------------------------------
int MPI_Comm_rank(MPI_Comm comm, int* rank);
int MPI_Comm_size(MPI_Comm comm, int* size);
double MPI_Wtime(MPI_Comm comm);
int MPI_Get_count(const MPI_Status* status, MPI_Datatype datatype,
                  int* count);
int MPI_Pcontrol(MPI_Comm comm, int level, const char* label = nullptr);

// --- point-to-point -----------------------------------------------------------
int MPI_Send(const void* buf, int count, MPI_Datatype datatype, int dest,
             int tag, MPI_Comm comm);
int MPI_Recv(void* buf, int count, MPI_Datatype datatype, int source, int tag,
             MPI_Comm comm, MPI_Status* status);
int MPI_Sendrecv(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 int dest, int sendtag, void* recvbuf, int recvcount,
                 MPI_Datatype recvtype, int source, int recvtag,
                 MPI_Comm comm, MPI_Status* status);
int MPI_Isend(const void* buf, int count, MPI_Datatype datatype, int dest,
              int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Irecv(void* buf, int count, MPI_Datatype datatype, int source,
              int tag, MPI_Comm comm, MPI_Request* request);
int MPI_Wait(MPI_Request* request, MPI_Status* status);
int MPI_Waitall(int count, MPI_Request* requests, MPI_Status* statuses);
int MPI_Probe(int source, int tag, MPI_Comm comm, MPI_Status* status);

// --- collectives --------------------------------------------------------------
int MPI_Barrier(MPI_Comm comm);
int MPI_Bcast(void* buffer, int count, MPI_Datatype datatype, int root,
              MPI_Comm comm);
int MPI_Reduce(const void* sendbuf, void* recvbuf, int count,
               MPI_Datatype datatype, MPI_Op op, int root, MPI_Comm comm);
int MPI_Allreduce(const void* sendbuf, void* recvbuf, int count,
                  MPI_Datatype datatype, MPI_Op op, MPI_Comm comm);
int MPI_Scatter(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
                MPI_Comm comm);
int MPI_Gather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
               void* recvbuf, int recvcount, MPI_Datatype recvtype, int root,
               MPI_Comm comm);
int MPI_Allgather(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                  void* recvbuf, int recvcount, MPI_Datatype recvtype,
                  MPI_Comm comm);
int MPI_Alltoall(const void* sendbuf, int sendcount, MPI_Datatype sendtype,
                 void* recvbuf, int recvcount, MPI_Datatype recvtype,
                 MPI_Comm comm);

// --- communicator management ----------------------------------------------------
int MPI_Comm_split(MPI_Comm comm, int color, int key, MPI_Comm* newcomm);
int MPI_Comm_dup(MPI_Comm comm, MPI_Comm* newcomm);

// --- MPI Sections (paper Fig. 1) -------------------------------------------------
int MPIX_Section_enter(MPI_Comm comm, const char* label);
int MPIX_Section_exit(MPI_Comm comm, const char* label);

}  // namespace mpisect::mpix
