// mpisect-analyze — offline happens-before analysis of a recorded .mpst
// trace: no re-execution, pure post-mortem.
//
//   mpisect-analyze --trace run.mpst                  # text report
//   mpisect-analyze --trace run.mpst --json --out report.json
//   mpisect-analyze --scenario race                   # seeded 3-rank fixture
//   mpisect-analyze --app convolution --ranks 8       # record, then analyze
//
// Passes (all offline, all deterministic):
//   * message races — every wildcard receive's ISP/MUST-style match set;
//     more than one concurrent eligible sender means the run's outcome
//     depended on message timing (reported with the concrete alternates);
//   * latent deadlocks — each alternate matching is greedily re-simulated;
//     matchings that wedge are reported with the wait-for cycle even
//     though the recorded run completed;
//   * critical path — the longest happens-before chain in virtual time,
//     with per-section on-path attribution (the complement of the windowed
//     Eq. 6 bound: time a section spends *off* the path is imbalance that
//     speedup projections overstate). The path total equals the replay
//     makespan bit-exactly.
//
// Scenarios (always 3 ranks) seed analyzable histories:
//   race            one wildcard receive, two concurrent senders
//   latent-deadlock a race whose alternate matching wedges the run
//   clean           deterministic sectioned ring — zero findings
//
// Exit status: 0 = no findings, 2 = findings reported, 1 = usage error.
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "analysis/analyzer.hpp"
#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "codec/mpstz.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/message.hpp"
#include "mpisim/session.hpp"
#include "obs/spans.hpp"
#include "serve/queries.hpp"
#include "support/cli.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace mpisect;

std::string preset_list() {
  std::string out;
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

// Rank 0 posts a wildcard receive that both rank 1 and rank 2 can satisfy
// concurrently (rank 2's send is causally independent of rank 0): one
// MESSAGE_RACE with one alternate. Either matching completes, so no
// latent deadlock.
void scenario_race(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  char buf[4] = {};
  static const char payload[4] = {};
  switch (world.rank()) {
    case 0:
      world.recv(buf, sizeof buf, mpisim::kAnySource, /*tag=*/5);
      world.recv(buf, sizeof buf, mpisim::kAnySource, /*tag=*/5);
      break;
    case 1:
      world.send(payload, sizeof payload, 0, /*tag=*/5);
      world.send(payload, sizeof payload, 2, /*tag=*/9);
      break;
    case 2:
      world.recv(buf, sizeof buf, 1, /*tag=*/9);
      world.send(payload, sizeof payload, 0, /*tag=*/5);
      break;
    default:
      break;
  }
}

// Same race, but rank 0's *second* receive insists on rank 2. The recorded
// matching (wildcard <- rank 1) completes; the alternate (wildcard <- rank
// 2) starves the second receive while rank 2 sits in a receive rank 0 only
// reaches afterwards — a 0 <-> 2 wait-for cycle the recorded run never hit.
void scenario_latent(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  char buf[4] = {};
  static const char payload[4] = {};
  switch (world.rank()) {
    case 0:
      world.recv(buf, sizeof buf, mpisim::kAnySource, /*tag=*/5);
      world.recv(buf, sizeof buf, 2, /*tag=*/5);
      world.send(payload, sizeof payload, 2, /*tag=*/6);
      break;
    case 1:
      world.send(payload, sizeof payload, 0, /*tag=*/5);
      world.send(payload, sizeof payload, 2, /*tag=*/9);
      break;
    case 2:
      world.recv(buf, sizeof buf, 1, /*tag=*/9);
      world.send(payload, sizeof payload, 0, /*tag=*/5);
      world.recv(buf, sizeof buf, 0, /*tag=*/6);
      break;
    default:
      break;
  }
}

// Deterministic sectioned ring: fixed sources only, so the analyzer must
// report zero findings and a critical path fully attributed to "RING".
void scenario_clean(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  sections::MPIX_Section_enter(world, "RING");
  char buf[8] = {};
  static const char payload[8] = {};
  const int next = (world.rank() + 1) % world.size();
  const int prev = (world.rank() + world.size() - 1) % world.size();
  for (int i = 0; i < 4; ++i) {
    if (world.rank() == 0) {
      world.send(payload, sizeof payload, next, /*tag=*/3);
      world.recv(buf, sizeof buf, prev, /*tag=*/3);
    } else {
      world.recv(buf, sizeof buf, prev, /*tag=*/3);
      world.send(payload, sizeof payload, next, /*tag=*/3);
    }
  }
  sections::MPIX_Section_exit(world, "RING");
}

bool emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());
  return true;
}

/// Record a scenario or app in-process and return the trace.
trace::TraceFile record_trace(const support::ArgParser& args) {
  const std::string scenario = args.get_string("scenario");
  const std::string app_name = args.get_string("app");

  std::function<void(mpisim::Ctx&)> body;
  int ranks = static_cast<int>(args.get_int("ranks"));
  if (scenario == "race") {
    body = scenario_race;
  } else if (scenario == "latent-deadlock") {
    body = scenario_latent;
  } else if (scenario == "clean") {
    body = scenario_clean;
  } else if (scenario != "none") {
    throw std::invalid_argument("unknown scenario '" + scenario +
                                "' (none|race|latent-deadlock|clean)");
  }
  if (body) ranks = 3;

  mpisim::WorldOptions opts;
  const auto preset = mpisim::MachineModel::preset(args.get_string("model"));
  if (!preset) {
    throw std::invalid_argument("unknown model '" + args.get_string("model") +
                                "' (" + preset_list() + ")");
  }
  opts.machine = *preset;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto world_ptr = mpisim::Session(ranks, opts)
                             .world_builder()
                             .exec_spec(args.get_string("exec"))
                             .match_spec(args.get_string("match"))
                             .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  const std::string provenance =
      (body ? "scenario-" + scenario : app_name) + " --ranks " +
      std::to_string(ranks);
  auto rec = trace::TraceRecorder::install(world, {.app = provenance});

  if (body) {
    world.run(body);
  } else if (app_name == "convolution") {
    apps::conv::ConvolutionConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    cfg.full_fidelity = false;
    apps::conv::ConvolutionApp app(cfg);
    world.run(std::ref(app));
  } else if (app_name == "lulesh") {
    apps::lulesh::LuleshConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
  } else {
    throw std::invalid_argument("unknown app '" + app_name +
                                "' (convolution|lulesh)");
  }
  return rec->finish();
}

int run(int argc, char** argv) {
  support::ArgParser args(
      "mpisect-analyze",
      "Offline happens-before analysis of a recorded .mpst trace");
  args.add_string("trace", "", "trace to analyze ('' = record one now)");
  args.add_string("scenario", "none",
                  "none | race | latent-deadlock | clean (3-rank fixtures)");
  args.add_string("app", "convolution",
                  "convolution | lulesh (when recording without --trace)");
  support::add_unified_flags(args, /*model_default=*/"nehalem-cluster",
                             /*export_default=*/"text",
                             /*seed_default=*/0x5EED);
  args.add_int("ranks", 8, "MPI processes (scenarios use 3)");
  args.add_int("steps", 10, "time-steps (app recording)");
  support::add_world_flags(args);
  args.add_alias("backend", "exec");
  args.add_string("out", "", "report file ('' = stdout)");
  args.add_string("save-trace", "", "also save the recorded trace here");
  args.add_string("telemetry", "",
                  "write analysis counters as Prometheus text to this file");
  if (!args.parse(argc, argv)) return 1;
  if (const auto& st = args.get_string("self-trace"); !st.empty()) {
    obs::enable_self_trace(st);
  }

  const std::string format = support::unified_export(args);
  if (format != "text" && format != "csv" && format != "json") {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 1;
  }

  trace::TraceFile tf;
  if (!args.get_string("trace").empty()) {
    tf = codec::load_trace(args.get_string("trace"));
  } else {
    tf = record_trace(args);
    if (!args.get_string("save-trace").empty()) {
      tf.save(args.get_string("save-trace"));
    }
  }

  if (!args.get_string("telemetry").empty()) {
    const analysis::AnalysisResult res = analysis::analyze(tf);
    telemetry::Registry reg(tf.header.nranks);
    analysis::fill_telemetry(res, reg);
    if (!emit(telemetry::prometheus_text(reg),
              args.get_string("telemetry"))) {
      return 1;
    }
  }

  // The report runs on the shared serve engine, so the bytes here match a
  // served "analyze" response for the same trace exactly.
  serve::AnalyzeQuery q;
  q.format = format;
  std::size_t findings = 0;
  const std::string text = serve::run_analyze(tf, q, &findings);
  if (!emit(text, args.get_string("out"))) return 1;
  return findings > 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Corrupt traces and usage errors must surface as a one-line diagnostic
  // with a nonzero exit, never an uncaught-exception abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-analyze: %s\n", err.what());
    return 1;
  }
}
