// mpisect-check — run an application (or a violation scenario) under the
// mpicheck correctness analyzer and report the findings:
//
//   mpisect-check --app convolution --ranks 8 --steps 20      # clean run
//   mpisect-check --scenario deadlock                          # seeded bug
//   mpisect-check --app lulesh --json --out findings.json
//   mpisect-check --app convolution --faults "kill:rank=1,at=0.001"
//
// Scenarios (always 2 ranks) seed one violation class each:
//   deadlock            cross receive with no matching sends
//   leak                pending isend + never-freed duplicated communicator
//   collective-mismatch ranks disagree on the bcast root
//   p2p-mismatch        8-byte message into a 4-byte receive buffer
//   section-misuse      ranks exit different section labels
//
// --faults runs the app under a deterministic fault plan; injected stalls
// and kills are classified as INJECTED_FAULT, never as native deadlocks.
//
// Exit status: 0 = no findings, 2 = findings reported, 1 = usage error.
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "checker/checker.hpp"
#include "checker/report.hpp"
#include "core/sections/api.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/faults/injector.hpp"
#include "mpisim/session.hpp"
#include "obs/spans.hpp"
#include "support/cli.hpp"

namespace {

using namespace mpisect;

std::string preset_list() {
  std::string out;
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

void scenario_deadlock(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  char buf[4] = {};
  // Both ranks receive first; nobody ever sends.
  world.recv(buf, sizeof buf, 1 - world.rank(), /*tag=*/0);
}

void scenario_leak(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  mpisim::Comm dup = world.dup();  // never freed: leaked on every rank
  (void)dup;
  if (world.rank() == 0) {
    static const char payload[8] = {};
    // Pending at finalize: never waited, never received.
    auto req = world.isend(payload, sizeof payload, 1, /*tag=*/99);
    (void)req;
  }
}

void scenario_collective_mismatch(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  // Zero-byte broadcast so the mismatched roots cannot block each other.
  world.bcast(nullptr, 0, /*root=*/world.rank() == 0 ? 0 : 1);
}

void scenario_p2p_mismatch(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  if (world.rank() == 0) {
    static const char payload[8] = {};
    world.send(payload, sizeof payload, 1, /*tag=*/7);
  } else {
    char buf[4] = {};
    world.recv(buf, sizeof buf, 0, /*tag=*/7);  // throws Err::Truncate
  }
}

void scenario_section_misuse(mpisim::Ctx& ctx) {
  mpisim::Comm world = ctx.world_comm();
  sections::MPIX_Section_enter(world, "COMPUTE");
  // Rank 1 exits a label it never entered; its "COMPUTE" section leaks.
  sections::MPIX_Section_exit(world,
                              world.rank() == 0 ? "COMPUTE" : "EXCHANGE");
}

bool emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());
  return true;
}

int run(int argc, char** argv) {
  support::ArgParser args("mpisect-check",
                          "Run an app under the mpicheck correctness analyzer");
  args.add_string("app", "convolution", "convolution | lulesh");
  args.add_string("scenario", "clean",
                  "clean | deadlock | leak | collective-mismatch | "
                  "p2p-mismatch | section-misuse");
  support::add_unified_flags(args, /*model_default=*/"ideal",
                             /*export_default=*/"text",
                             /*seed_default=*/0x5EED);
  args.add_int("ranks", 8, "MPI processes (clean runs; scenarios use 2)");
  support::add_world_flags(args);
  args.add_int("threads", 1, "MiniOMP threads per rank (lulesh)");
  args.add_int("steps", 10, "time-steps (clean runs)");
  args.add_int("timeout-ms", 500, "deadlock quiescence window");
  args.add_string("faults", "",
                  "fault plan spec, e.g. 'drop:p=0.05; kill:rank=1,at=1e-3' "
                  "('' = none)");
  args.add_string("out", "", "output file ('' = stdout)");
  if (!args.parse(argc, argv)) return 1;
  if (const auto& st = args.get_string("self-trace"); !st.empty()) {
    obs::enable_self_trace(st);
  }

  const std::string scenario = args.get_string("scenario");
  const std::string format = support::unified_export(args);
  if (format != "text" && format != "csv" && format != "json") {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 1;
  }

  std::function<void(mpisim::Ctx&)> body;
  int ranks = static_cast<int>(args.get_int("ranks"));
  if (scenario == "deadlock") {
    body = scenario_deadlock;
  } else if (scenario == "leak") {
    body = scenario_leak;
  } else if (scenario == "collective-mismatch") {
    body = scenario_collective_mismatch;
  } else if (scenario == "p2p-mismatch") {
    body = scenario_p2p_mismatch;
  } else if (scenario == "section-misuse") {
    body = scenario_section_misuse;
  } else if (scenario != "clean") {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 1;
  }
  if (body) ranks = 2;

  mpisim::WorldOptions opts;
  const auto preset = mpisim::MachineModel::preset(args.get_string("model"));
  if (!preset) {
    std::fprintf(stderr, "unknown model '%s' (%s)\n",
                 args.get_string("model").c_str(), preset_list().c_str());
    return 1;
  }
  opts.machine = *preset;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  if (!args.get_string("faults").empty()) {
    try {
      opts.faults = mpisim::faults::FaultPlan::parse(args.get_string("faults"));
    } catch (const std::invalid_argument& err) {
      std::fprintf(stderr, "mpisect-check: %s\n", err.what());
      return 1;
    }
  }
  const auto world_ptr = mpisim::Session(ranks, opts)
                             .world_builder()
                             .exec_spec(args.get_string("exec"))
                             .match_spec(args.get_string("match"))
                             .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);

  checker::CheckerOptions copts;
  copts.deadlock_timeout_ms = static_cast<int>(args.get_int("timeout-ms"));
  auto check = checker::MpiChecker::install(world, copts);
  std::shared_ptr<mpisim::faults::FaultInjector> injector;
  if (!opts.faults.empty()) {
    injector = mpisim::faults::FaultInjector::install(world);
  }

  if (!body) {
    const std::string app_name = args.get_string("app");
    if (app_name == "convolution") {
      apps::conv::ConvolutionConfig cfg;
      cfg.steps = static_cast<int>(args.get_int("steps"));
      cfg.full_fidelity = false;
      apps::conv::ConvolutionApp app(cfg);
      body = std::ref(app);
      try {
        world.run(body);
      } catch (const mpisim::MpiError& err) {
        std::fprintf(stderr, "run terminated: %s\n", err.what());
      }
    } else if (app_name == "lulesh") {
      apps::lulesh::LuleshConfig cfg;
      cfg.steps = static_cast<int>(args.get_int("steps"));
      cfg.omp_threads = static_cast<int>(args.get_int("threads"));
      cfg.full_fidelity = false;
      apps::lulesh::LuleshApp app(cfg);
      body = std::ref(app);
      try {
        world.run(body);
      } catch (const mpisim::MpiError& err) {
        std::fprintf(stderr, "run terminated: %s\n", err.what());
      }
    } else {
      std::fprintf(stderr, "unknown app '%s' (convolution|lulesh)\n",
                   app_name.c_str());
      return 1;
    }
  } else {
    try {
      world.run(body);
    } catch (const mpisim::MpiError& err) {
      // Expected for seeded scenarios: the checker aborts a deadlocked
      // world, truncation throws on the receiver.
      std::fprintf(stderr, "run terminated: %s\n", err.what());
    }
  }

  check->analyze();
  const auto diags = check->diagnostics();
  if (injector) {
    std::fprintf(stderr, "fault plan: %s\ninjected: %s\n",
                 opts.faults.describe().c_str(),
                 injector->summary().c_str());
  }

  std::string text;
  if (format == "text") {
    text = diags.empty() ? "" : checker::render_text(diags);
    text += checker::render_summary(diags);
    text += "\n";
  } else if (format == "csv") {
    text = checker::render_csv(diags);
  } else {
    text = checker::render_json(diags);
  }
  if (!emit(text, args.get_string("out"))) return 1;

  std::size_t errors = 0;
  for (const auto& d : diags) {
    if (d.severity == checker::Severity::Error) ++errors;
  }
  return errors > 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Corrupt input or an internal failure must surface as a one-line
  // diagnostic with a nonzero exit, never an uncaught-exception abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-check: %s\n", err.what());
    return 1;
  }
}
