// mpisect-diff — compare two profile snapshots written by
// `mpisect-report --export snapshot`:
//
//   mpisect-report --app lulesh --threads 1  --export snapshot --out t1.csv
//   mpisect-report --app lulesh --threads 16 --export snapshot --out t16.csv
//   mpisect-diff t1.csv t16.csv
//
// Prints the per-section deltas, biggest movers first.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/spans.hpp"
#include "profiler/diff.hpp"
#include "support/cli.hpp"

namespace {

std::optional<mpisect::profiler::ProfileSnapshot> load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto snap = mpisect::profiler::ProfileSnapshot::from_csv(buf.str(), path);
  if (!snap) std::fprintf(stderr, "%s is not a profile snapshot\n", path);
  return snap;
}

}  // namespace

int main(int argc, char** argv) {
  mpisect::support::ArgParser args(
      "mpisect-diff", "Compare two profile snapshots, biggest movers first");
  args.add_positional("before", "baseline snapshot CSV");
  args.add_positional("after", "comparison snapshot CSV");
  args.add_string("self-trace", "",
                  "wall-clock self-trace (.json = chrome://tracing, else "
                  "CSV)");
  if (!args.parse(argc, argv)) return 1;
  if (const auto& st = args.get_string("self-trace"); !st.empty()) {
    mpisect::obs::enable_self_trace(st);
  }
  const auto before = load(args.get_string("before").c_str());
  const auto after = load(args.get_string("after").c_str());
  if (!before || !after) return 1;
  const auto deltas = mpisect::profiler::diff_profiles(*before, *after);
  std::fputs(mpisect::profiler::render_diff(deltas, before->name(),
                                            after->name())
                 .c_str(),
             stdout);
  // Headline: the biggest improvement and the biggest regression.
  const mpisect::profiler::SectionDelta* best = nullptr;
  const mpisect::profiler::SectionDelta* worst = nullptr;
  for (const auto& d : deltas) {
    if (d.only_in_before || d.only_in_after) continue;
    if (best == nullptr || d.abs_delta < best->abs_delta) best = &d;
    if (worst == nullptr || d.abs_delta > worst->abs_delta) worst = &d;
  }
  if (best != nullptr && best->abs_delta < 0.0) {
    std::printf("biggest improvement: %s (%.2fx faster)\n",
                best->label.c_str(), best->speedup);
  }
  if (worst != nullptr && worst->abs_delta > 0.0) {
    std::printf("biggest regression:  %s (%.2fx slower)\n",
                worst->label.c_str(),
                worst->speedup > 0.0 ? 1.0 / worst->speedup : 0.0);
  }
  return 0;
}
