// mpisect-serve — a long-lived what-if query daemon. Traces are loaded
// and decoded once, query results are cached by (trace digest, canonical
// query), and clients speak one JSON object per line over local TCP:
//
//   mpisect-serve serve  --port 0 --port-file serve.port &
//   mpisect-serve client --port $(cat serve.port) --script queries.jsonl
//   mpisect-serve query  --script queries.jsonl     # in-process, no TCP
//
// Request lines:
//   {"id":1,"op":"info","trace":"conv.mpstz"}
//   {"id":2,"op":"replay","trace":"conv.mpstz",
//    "params":{"model":"knl","compute_scale":"auto","format":"csv"}}
//   {"id":3,"op":"sweep","trace":"conv.mpstz",
//    "params":{"drop_rates":[0,0.01,0.05]}}
//   {"id":4,"op":"stats"}
// Responses:
//   {"id":2,"ok":true,"digest":"mpst1-...","cached":false,"result":"..."}
//
// The "result" field is byte-identical to the matching offline CLI's
// stdout (mpisect-replay / mpisect-analyze); both run the shared engine
// in serve/queries.hpp. The worker pool shards requests by trace path
// (MPISECT_WORKERS or --workers), and responses per connection arrive in
// request order, so scripted sessions are byte-identical at any pool
// size.
//
// Exit status: 0 = ok, 1 = usage/socket error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/spans.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"

namespace {

using namespace mpisect;

serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int env_workers() {
  const char* env = std::getenv("MPISECT_WORKERS");
  if (env == nullptr) return 1;
  const int n = std::atoi(env);
  return n >= 1 ? n : 1;
}

/// Read request lines from `path` ("" or "-" = stdin); blank lines and
/// '#' comments are skipped.
std::vector<std::string> read_script(const std::string& path) {
  std::istringstream own;
  std::istream* in = &std::cin;
  std::ifstream file;
  if (!path.empty() && path != "-") {
    file.open(path);
    if (!file) {
      throw std::runtime_error("cannot open script '" + path + "'");
    }
    in = &file;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(*in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

/// Shared tail of every subcommand's arg setup: register the unified
/// --self-trace flag, parse, and arm the span tracer when requested
/// (MPISECT_SELF_TRACE is the env equivalent).
bool parse_with_self_trace(support::ArgParser& args, int argc,
                           const char* const* argv) {
  args.add_string("self-trace", "",
                  "wall-clock self-trace of the simulator itself "
                  "(.json = chrome://tracing, else CSV)");
  if (!args.parse(argc, argv)) return false;
  if (const auto& p = args.get_string("self-trace"); !p.empty()) {
    obs::enable_self_trace(p);
  }
  return true;
}

int cmd_serve(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-serve serve",
                          "Run the query daemon on localhost TCP");
  args.add_int("port", 0, "TCP port to bind (0 = ephemeral)");
  args.add_string("port-file", "",
                  "write the bound port number here (for scripts using "
                  "--port 0)");
  args.add_int("workers", 0,
               "worker pool size (0 = $MPISECT_WORKERS, else 1); requests "
               "shard by trace path");
  args.add_int("cache-entries", 256, "result cache capacity (entries)");
  args.add_int("cache-mb", 64, "result cache capacity (megabytes)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  int workers = static_cast<int>(args.get_int("workers"));
  if (workers <= 0) workers = env_workers();

  serve::Service service(
      static_cast<std::size_t>(args.get_int("cache-entries")),
      static_cast<std::size_t>(args.get_int("cache-mb")) << 20);
  serve::Server server(service, workers);
  const int port = server.listen(static_cast<int>(args.get_int("port")));

  if (!args.get_string("port-file").empty()) {
    std::ofstream pf(args.get_string("port-file"));
    if (!pf) {
      std::fprintf(stderr, "mpisect-serve: cannot write %s\n",
                   args.get_string("port-file").c_str());
      return 1;
    }
    pf << port << "\n";
  }
  std::printf("mpisect-serve: listening on 127.0.0.1:%d (workers=%d)\n", port,
              server.workers());
  std::fflush(stdout);

  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  server.run();
  g_server = nullptr;
  std::printf("mpisect-serve: stopped\n");
  return 0;
}

int cmd_client(int argc, const char* const* argv) {
  support::ArgParser args(
      "mpisect-serve client",
      "Send request lines to a running daemon, print response lines");
  args.add_int("port", 0, "daemon port (required)");
  args.add_string("script", "",
                  "request file, one JSON object per line ('' = stdin; '#' "
                  "comments skipped)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;
  if (args.get_int("port") <= 0) {
    std::fprintf(stderr, "mpisect-serve: client needs --port\n");
    return 1;
  }

  const std::vector<std::string> lines =
      read_script(args.get_string("script"));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("mpisect-serve: socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(args.get_int("port")));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    std::perror("mpisect-serve: connect");
    ::close(fd);
    return 1;
  }

  // Synchronous request/response keeps the printed session in request
  // order regardless of the daemon's pool size.
  std::string buffer;
  char chunk[4096];
  for (const std::string& line : lines) {
    const std::string msg = line + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n = ::write(fd, msg.data() + off, msg.size() - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "mpisect-serve: connection lost\n");
        ::close(fd);
        return 1;
      }
      off += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        std::fwrite(buffer.data(), 1, nl + 1, stdout);
        buffer.erase(0, nl + 1);
        break;
      }
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "mpisect-serve: connection lost\n");
        ::close(fd);
        return 1;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return 0;
}

int cmd_query(int argc, const char* const* argv) {
  support::ArgParser args(
      "mpisect-serve query",
      "Answer request lines in-process (no daemon, no TCP)");
  args.add_string("script", "",
                  "request file, one JSON object per line ('' = stdin; '#' "
                  "comments skipped)");
  args.add_int("cache-entries", 256, "result cache capacity (entries)");
  args.add_int("cache-mb", 64, "result cache capacity (megabytes)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  serve::Service service(
      static_cast<std::size_t>(args.get_int("cache-entries")),
      static_cast<std::size_t>(args.get_int("cache-mb")) << 20);
  for (const std::string& line : read_script(args.get_string("script"))) {
    const std::string resp = service.handle_line(line);
    std::fwrite(resp.data(), 1, resp.size(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  try {
    if (cmd == "serve") return cmd_serve(argc - 1, argv + 1);
    if (cmd == "client") return cmd_client(argc - 1, argv + 1);
    if (cmd == "query") return cmd_query(argc - 1, argv + 1);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-serve: %s\n", err.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: mpisect-serve <serve|client|query> [options]\n"
               "       mpisect-serve <subcommand> --help\n");
  return 1;
}
