# End-to-end offline-analyzer determinism check:
#   1. traces recorded under MPISECT_WORKERS=1 vs 4 analyze to
#      byte-identical JSON reports (record + analyze both deterministic)
#   2. the race fixture's report is byte-identical across worker counts
#      AND across scheduler backends (cooperative vs threads)
#   3. exit-code contract: findings -> 2, clean -> 0, corrupt trace -> 1
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=1
          ${REPLAY} record --app convolution --ranks 8 --steps 20
          --model nehalem-cluster --seed 77 --out an_conv_w1.mpst
  RESULT_VARIABLE rc1)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=4
          ${REPLAY} record --app convolution --ranks 8 --steps 20
          --model nehalem-cluster --seed 77 --out an_conv_w4.mpst
  RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "mpisect-replay record failed (${rc1}/${rc2})")
endif()
execute_process(
  COMMAND ${ANALYZE} --trace an_conv_w1.mpst --json --out an_conv_w1.json
  RESULT_VARIABLE rc3)
execute_process(
  COMMAND ${ANALYZE} --trace an_conv_w4.mpst --json --out an_conv_w4.json
  RESULT_VARIABLE rc4)
if(NOT rc3 EQUAL 0 OR NOT rc4 EQUAL 0)
  message(FATAL_ERROR
          "analyze failed or found findings on convolution (${rc3}/${rc4})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files an_conv_w1.json an_conv_w4.json
  RESULT_VARIABLE same1)
if(NOT same1 EQUAL 0)
  message(FATAL_ERROR "analyzer JSON differs across MPISECT_WORKERS=1/4")
endif()

# Race fixture: workers 1 vs 4, cooperative vs threads backend. Exit code
# must be 2 (findings reported).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=1
          ${ANALYZE} --scenario race --json --out an_race_w1.json
  RESULT_VARIABLE rc5)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=4
          ${ANALYZE} --scenario race --json --out an_race_w4.json
  RESULT_VARIABLE rc6)
execute_process(
  COMMAND ${ANALYZE} --scenario race --backend threads --json
          --out an_race_threads.json
  RESULT_VARIABLE rc7)
if(NOT rc5 EQUAL 2 OR NOT rc6 EQUAL 2 OR NOT rc7 EQUAL 2)
  message(FATAL_ERROR
          "race fixture did not exit 2 (${rc5}/${rc6}/${rc7})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files an_race_w1.json an_race_w4.json
  RESULT_VARIABLE same2)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files an_race_w1.json
          an_race_threads.json
  RESULT_VARIABLE same3)
if(NOT same2 EQUAL 0 OR NOT same3 EQUAL 0)
  message(FATAL_ERROR
          "race report differs across workers/backends (${same2}/${same3})")
endif()

# Latent-deadlock fixture across backends.
execute_process(
  COMMAND ${ANALYZE} --scenario latent-deadlock --json --out an_ld_coop.json
  RESULT_VARIABLE rc8)
execute_process(
  COMMAND ${ANALYZE} --scenario latent-deadlock --backend threads --json
          --out an_ld_threads.json
  RESULT_VARIABLE rc9)
if(NOT rc8 EQUAL 2 OR NOT rc9 EQUAL 2)
  message(FATAL_ERROR
          "latent-deadlock fixture did not exit 2 (${rc8}/${rc9})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files an_ld_coop.json an_ld_threads.json
  RESULT_VARIABLE same4)
if(NOT same4 EQUAL 0)
  message(FATAL_ERROR "latent-deadlock report differs across backends")
endif()

# Exit-code contract: clean fixture -> 0, corrupt trace -> 1 + diagnostic.
execute_process(
  COMMAND ${ANALYZE} --scenario clean
  OUTPUT_VARIABLE clean_out
  RESULT_VARIABLE rc10)
if(NOT rc10 EQUAL 0)
  message(FATAL_ERROR "clean fixture did not exit 0 (${rc10}):\n${clean_out}")
endif()
file(WRITE an_bad.mpst "NOPE this is not a trace file")
execute_process(
  COMMAND ${ANALYZE} --trace an_bad.mpst
  ERROR_VARIABLE bad_err
  RESULT_VARIABLE rc11)
if(rc11 EQUAL 0)
  message(FATAL_ERROR "corrupt trace did not fail")
endif()
if(NOT bad_err MATCHES "mpisect-analyze:")
  message(FATAL_ERROR "corrupt-trace failure lacks a diagnostic:\n${bad_err}")
endif()
