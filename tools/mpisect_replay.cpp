// mpisect-replay — record an instrumented run into a .mpst trace, then
// answer what-if questions offline by replaying the skeleton under other
// machine models:
//
//   mpisect-replay record --app convolution --ranks 64 --steps 200
//                         --model nehalem-cluster --out conv.mpst
//   mpisect-replay record --app lulesh --ranks 64 --steps 10 --compress
//                         --out lulesh.mpstz
//   mpisect-replay info   --trace conv.mpst [--digest]
//   mpisect-replay replay --trace conv.mpst --model knl
//                         --compute-scale auto --tseq 12.5
//   mpisect-replay replay --trace conv.mpst --latency-scale 4 --no-jitter
//   mpisect-replay replay --trace conv.mpst --faults "drop:p=0.05"
//   mpisect-replay sweep  --trace conv.mpst --latency-scales 1,2,4,8
//                         --bandwidth-scales 0.5,1,2 --out sweep.csv
//   mpisect-replay sweep  --trace conv.mpst --drop-rates 0,0.01,0.05
//                         --out faults.csv
//   mpisect-replay compress   --in conv.mpst  --out conv.mpstz
//   mpisect-replay decompress --in conv.mpstz --out conv.mpst
//
// Every trace-reading subcommand accepts .mpst and .mpstz transparently.
// The what-if queries run on the shared serve engine (serve/queries.hpp),
// so their output is byte-identical to mpisect-serve's responses.
//
// Exit status: 0 = ok, 1 = usage/file error (one-line diagnostic),
// 3 = --verify mismatch.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "codec/mpstz.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "obs/spans.hpp"
#include "serve/queries.hpp"
#include "support/cli.hpp"
#include "support/digest.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using namespace mpisect;

bool emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "mpisect-replay: cannot write %s\n",
                 out_path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());
  return true;
}

void save_bytes(const std::vector<std::uint8_t>& bytes,
                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw trace::TraceError("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw trace::TraceError("write error on '" + path + "'");
}

std::string preset_list() {
  std::string out;
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<double> parse_grid(const std::string& csv) {
  std::vector<double> out;
  for (const auto& item : split_csv(csv)) {
    out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

void add_whatif_options(support::ArgParser& args) {
  args.add_string("trace", "trace.mpst", "input trace file (.mpst | .mpstz)");
  args.add_string("model", "recorded", serve::model_choices());
  args.add_alias("machine", "model");
  args.add_string("faults", "",
                  "fault plan re-costed onto the what-if frame, e.g. "
                  "'drop:p=0.05' ('' = none; kill rules not replayable)");
  args.add_int("fault-seed", 0,
               "seed for the fault draws (0 = the trace header's seed)");
  args.add_double("latency", 0.0, "absolute link latency override (s)");
  args.add_double("bandwidth", 0.0, "absolute link bandwidth override (B/s)");
  args.add_double("latency-scale", 1.0, "multiply link latencies");
  args.add_double("bandwidth-scale", 1.0, "multiply link bandwidths");
  args.add_double("jitter-scale", 1.0, "multiply jitter sigmas");
  args.add_flag("no-jitter", "disable network jitter entirely");
  args.add_int("eager", 0, "eager/rendezvous threshold override (bytes)");
  args.add_string("compute-scale", "1",
                  "multiply recorded compute gaps; 'auto' = recorded flops "
                  "/ replay flops");
  args.add_string("progress", "recorded",
                  "progress model for the what-if frame: recorded | " +
                      mpisim::ProgressModel::choices());
}

serve::ModelParams model_params(const support::ArgParser& args) {
  serve::ModelParams p;
  p.model = args.get_string("model");
  p.latency = args.get_double("latency");
  p.bandwidth = args.get_double("bandwidth");
  p.latency_scale = args.get_double("latency-scale");
  p.bandwidth_scale = args.get_double("bandwidth-scale");
  p.jitter_scale = args.get_double("jitter-scale");
  p.no_jitter = args.get_flag("no-jitter");
  p.eager = static_cast<std::uint64_t>(args.get_int("eager"));
  p.compute_scale = args.get_string("compute-scale");
  p.progress = args.get_string("progress");
  return p;
}

/// Shared tail of every subcommand's arg setup: register the unified
/// --self-trace flag, parse, and arm the span tracer when requested
/// (MPISECT_SELF_TRACE is the env equivalent).
bool parse_with_self_trace(support::ArgParser& args, int argc,
                           const char* const* argv) {
  args.add_string("self-trace", "",
                  "wall-clock self-trace of the simulator itself "
                  "(.json = chrome://tracing, else CSV)");
  if (!args.parse(argc, argv)) return false;
  if (const auto& p = args.get_string("self-trace"); !p.empty()) {
    obs::enable_self_trace(p);
  }
  return true;
}

int cmd_record(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay record",
                          "Run an instrumented app and capture a .mpst trace");
  args.add_string("app", "convolution", "convolution | lulesh");
  args.add_string("model", "nehalem-cluster", preset_list());
  args.add_alias("machine", "model");
  args.add_int("ranks", 8, "MPI processes (lulesh: perfect cube)");
  args.add_int("threads", 1, "MiniOMP threads per rank (lulesh)");
  args.add_int("steps", 100, "time-steps");
  args.add_int("size", 0, "problem size (0 = default)");
  args.add_int("seed", 0x5EED, "world seed");
  args.add_string("progress", "blocking-only",
                  "progress model for the live run: " +
                      mpisim::ProgressModel::choices());
  support::add_world_flags(args);
  args.add_string("out", "trace.mpst", "output trace file");
  args.add_flag("compress", "write a compressed .mpstz container instead "
                            "of the flat .mpst encoding");
  args.add_double("telemetry-dt", 0.0,
                  "telemetry sampling interval to stamp into the trace "
                  "header (0 = none); consumed by the timeline subcommand");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const std::string app_name = args.get_string("app");
  const int ranks = static_cast<int>(args.get_int("ranks"));
  mpisim::WorldOptions opts;
  auto preset = mpisim::MachineModel::preset(args.get_string("model"));
  if (!preset) {
    throw trace::TraceError("unknown model '" + args.get_string("model") +
                            "' (" + preset_list() + ")");
  }
  opts.machine = *preset;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  opts.progress = mpisim::ProgressModel::parse(args.get_string("progress"));
  const auto world_ptr = mpisim::Session(ranks, opts)
                             .world_builder()
                             .exec_spec(args.get_string("exec"))
                             .match_spec(args.get_string("match"))
                             .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);

  std::string provenance = app_name + " --ranks " + std::to_string(ranks) +
                           " --steps " + std::to_string(args.get_int("steps"));
  auto rec = trace::TraceRecorder::install(
      world,
      {.app = provenance, .telemetry_dt = args.get_double("telemetry-dt")});

  if (app_name == "convolution") {
    apps::conv::ConvolutionConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    if (args.get_int("size") > 0) {
      cfg.width = static_cast<int>(args.get_int("size")) * 100;
      cfg.height = static_cast<int>(args.get_int("size")) * 75;
    }
    cfg.full_fidelity = false;
    apps::conv::ConvolutionApp app(cfg);
    world.run(std::ref(app));
  } else if (app_name == "lulesh") {
    apps::lulesh::LuleshConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    cfg.omp_threads = static_cast<int>(args.get_int("threads"));
    if (args.get_int("size") > 0) {
      cfg.s = static_cast<int>(args.get_int("size"));
    }
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
  } else {
    std::fprintf(stderr, "mpisect-replay: unknown app '%s'\n",
                 app_name.c_str());
    return 1;
  }

  // Both output paths stream rank by rank off the recorder; the full
  // TraceFile is never materialized (the difference between "fits in RAM"
  // and "doesn't" at extreme rank counts).
  if (args.get_flag("compress")) {
    trace::RankStream scratch;
    const std::vector<std::uint8_t> packed = codec::compress_stream(
        rec->skeleton(),
        [&](int r) -> const trace::RankStream& {
          scratch = rec->finish_rank(r);
          return scratch;
        });
    save_bytes(packed, args.get_string("out"));
    std::printf("recorded %llu events on %d ranks -> %s (%zu bytes)\n",
                static_cast<unsigned long long>(rec->total_events()), ranks,
                args.get_string("out").c_str(), packed.size());
  } else {
    rec->save(args.get_string("out"));
    std::printf("recorded %llu events on %d ranks -> %s\n",
                static_cast<unsigned long long>(rec->total_events()), ranks,
                args.get_string("out").c_str());
  }
  return 0;
}

int cmd_replay(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay replay",
                          "Replay a trace under a what-if machine model");
  add_whatif_options(args);
  args.add_string("export", "text", "text | csv | json | chrome");
  args.add_alias("format", "export");
  args.add_flag("json", "shorthand for --export json");
  args.add_string("out", "", "output file ('' = stdout)");
  args.add_flag("verify",
                "same-model integrity check against the recorded footer");
  args.add_double("tseq", 0.0,
                  "sequential reference time: emit Eq. 6 partial bounds");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const trace::TraceFile tf = codec::load_trace(args.get_string("trace"));
  if (args.get_flag("verify")) {
    const trace::VerifyResult v = trace::verify_roundtrip(tf);
    if (!v.ok) {
      std::fprintf(stderr, "mpisect-replay: verify FAILED: %s\n",
                   v.detail.c_str());
      return 3;
    }
    std::printf("verify OK: same-model replay matches the recorded footer\n");
  }

  serve::ReplayQuery q;
  q.model = model_params(args);
  q.faults = args.get_string("faults");
  q.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  q.format = support::unified_export(args);
  q.tseq = args.get_double("tseq");
  return emit(serve::run_replay(tf, q), args.get_string("out")) ? 0 : 1;
}

int cmd_timeline(int argc, const char* const* argv) {
  support::ArgParser args(
      "mpisect-replay timeline",
      "Re-bin a trace's section timeline into telemetry windows (Eq. 6 "
      "attribution per interval)");
  add_whatif_options(args);
  args.add_double("dt", 0.0,
                  "window width in virtual seconds (0 = the trace header's "
                  "telemetry-dt, else makespan/100)");
  args.add_string("export", "csv", "csv | json | chrome");
  args.add_alias("format", "export");
  args.add_flag("json", "shorthand for --export json");
  args.add_string("out", "", "output file ('' = stdout)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const trace::TraceFile tf = codec::load_trace(args.get_string("trace"));
  serve::TimelineQuery q;
  q.model = model_params(args);
  q.faults = args.get_string("faults");
  q.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  q.dt = args.get_double("dt");
  q.format = support::unified_export(args);
  return emit(serve::run_timeline(tf, q), args.get_string("out")) ? 0 : 1;
}

int cmd_info(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay info",
                          "Describe a trace file without replaying it");
  args.add_string("trace", "trace.mpst", "input trace file (.mpst | .mpstz)");
  args.add_flag("digest",
                "print only the stable content digest (identical for .mpst "
                "and .mpstz encodings of the same trace)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const trace::TraceFile tf = codec::load_trace(args.get_string("trace"));
  if (args.get_flag("digest")) {
    std::printf("%s\n",
                support::format_digest(codec::trace_digest(tf)).c_str());
    return 0;
  }
  std::fputs(serve::run_info(tf).c_str(), stdout);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay sweep",
                          "Replay across a parameter grid, emit long CSV");
  args.add_string("trace", "trace.mpst", "input trace file (.mpst | .mpstz)");
  args.add_string("models", "recorded",
                  "comma list: " + serve::model_choices());
  args.add_alias("machines", "models");
  args.add_string("latency-scales", "1", "comma list of latency multipliers");
  args.add_string("bandwidth-scales", "1",
                  "comma list of bandwidth multipliers");
  args.add_string("compute-scales", "1",
                  "comma list of compute multipliers ('auto' = recorded "
                  "flops / machine flops)");
  args.add_string("drop-rates", "0",
                  "comma list of message drop probabilities (re-costed with "
                  "retransmits onto the what-if frame)");
  args.add_string("progress", "recorded",
                  "comma list of progress models: recorded | " +
                      mpisim::ProgressModel::choices());
  args.add_int("fault-seed", 0,
               "seed for the fault draws (0 = the trace header's seed)");
  args.add_double("tseq", 0.0, "sequential reference time for Eq. 6 bounds");
  args.add_string("out", "", "output CSV ('' = stdout)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const trace::TraceFile tf = codec::load_trace(args.get_string("trace"));
  serve::SweepQuery q;
  q.models = split_csv(args.get_string("models"));
  q.latency_scales = parse_grid(args.get_string("latency-scales"));
  q.bandwidth_scales = parse_grid(args.get_string("bandwidth-scales"));
  q.compute_scales = split_csv(args.get_string("compute-scales"));
  q.drop_rates = parse_grid(args.get_string("drop-rates"));
  q.progress = split_csv(args.get_string("progress"));
  q.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  q.tseq = args.get_double("tseq");
  return emit(serve::run_sweep(tf, q), args.get_string("out")) ? 0 : 1;
}

int cmd_compress(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay compress",
                          "Re-encode a trace as a compressed .mpstz container");
  args.add_string("in", "trace.mpst", "input trace (.mpst | .mpstz)");
  args.add_string("out", "trace.mpstz", "output .mpstz container");
  args.add_int("chunk-events", 16384, "events per chunk (seek granularity)");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const trace::TraceFile tf = codec::load_trace(args.get_string("in"));
  codec::CompressOptions opts;
  if (args.get_int("chunk-events") > 0) {
    opts.chunk_events = static_cast<std::uint64_t>(args.get_int("chunk-events"));
  }
  const std::size_t flat = tf.encode().size();
  const std::vector<std::uint8_t> packed = codec::compress(tf, opts);
  save_bytes(packed, args.get_string("out"));
  std::printf("%s: %zu -> %zu bytes (%.2fx), digest %s\n",
              args.get_string("out").c_str(), flat, packed.size(),
              packed.empty() ? 0.0
                             : static_cast<double>(flat) /
                                   static_cast<double>(packed.size()),
              support::format_digest(codec::trace_digest(tf)).c_str());
  return 0;
}

int cmd_decompress(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay decompress",
                          "Expand a .mpstz container back to flat .mpst");
  args.add_string("in", "trace.mpstz", "input .mpstz container");
  args.add_string("out", "trace.mpst", "output .mpst trace");
  if (!parse_with_self_trace(args, argc, argv)) return 1;

  const trace::TraceFile tf = codec::load_trace(args.get_string("in"));
  tf.save(args.get_string("out"));
  std::printf("%s: %llu events, digest %s\n", args.get_string("out").c_str(),
              static_cast<unsigned long long>(tf.total_events()),
              support::format_digest(codec::trace_digest(tf)).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  try {
    if (cmd == "record") return cmd_record(argc - 1, argv + 1);
    if (cmd == "replay") return cmd_replay(argc - 1, argv + 1);
    if (cmd == "info") return cmd_info(argc - 1, argv + 1);
    if (cmd == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (cmd == "timeline") return cmd_timeline(argc - 1, argv + 1);
    if (cmd == "compress") return cmd_compress(argc - 1, argv + 1);
    if (cmd == "decompress") return cmd_decompress(argc - 1, argv + 1);
  } catch (const trace::TraceError& err) {
    std::fprintf(stderr, "mpisect-replay: %s\n", err.what());
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-replay: %s\n", err.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: mpisect-replay "
               "<record|replay|info|sweep|timeline|compress|decompress> "
               "[options]\n"
               "       mpisect-replay <subcommand> --help\n");
  return 1;
}
