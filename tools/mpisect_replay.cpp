// mpisect-replay — record an instrumented run into a .mpst trace, then
// answer what-if questions offline by replaying the skeleton under other
// machine models:
//
//   mpisect-replay record --app convolution --ranks 64 --steps 200
//                         --model nehalem-cluster --out conv.mpst
//   mpisect-replay info   --trace conv.mpst
//   mpisect-replay replay --trace conv.mpst --model knl
//                         --compute-scale auto --tseq 12.5
//   mpisect-replay replay --trace conv.mpst --latency-scale 4 --no-jitter
//   mpisect-replay replay --trace conv.mpst --faults "drop:p=0.05"
//   mpisect-replay sweep  --trace conv.mpst --latency-scales 1,2,4,8
//                         --bandwidth-scales 0.5,1,2 --out sweep.csv
//   mpisect-replay sweep  --trace conv.mpst --drop-rates 0,0.01,0.05
//                         --out faults.csv
//
// Exit status: 0 = ok, 1 = usage/file error (one-line diagnostic),
// 3 = --verify mismatch.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "support/cli.hpp"
#include "telemetry/export.hpp"
#include "telemetry/timeline.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"
#include "trace/report.hpp"

namespace {

using namespace mpisect;

bool emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "mpisect-replay: cannot write %s\n",
                 out_path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());
  return true;
}

std::string preset_list() {
  std::string out;
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<double> parse_grid(const std::string& csv) {
  std::vector<double> out;
  for (const auto& item : split_csv(csv)) {
    out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

/// Resolve --machine plus the per-link/jitter overrides into the model the
/// replay engine will charge against.
struct WhatIf {
  mpisim::MachineModel machine;
  double compute_scale = 1.0;
};

WhatIf resolve_machine(const trace::TraceFile& tf,
                       const support::ArgParser& args) {
  WhatIf w;
  const std::string name = args.get_string("model");
  if (name == "recorded") {
    w.machine = tf.header.machine;
  } else if (auto preset = mpisim::MachineModel::preset(name)) {
    w.machine = *preset;
  } else {
    throw trace::TraceError("unknown model '" + name + "' (recorded|" +
                            preset_list() + ")");
  }
  mpisim::NetworkModel& net = w.machine.net;
  if (args.get_double("latency") > 0) {
    net.intra_node.latency = args.get_double("latency");
    net.inter_node.latency = args.get_double("latency");
  }
  if (args.get_double("bandwidth") > 0) {
    net.intra_node.bandwidth = args.get_double("bandwidth");
    net.inter_node.bandwidth = args.get_double("bandwidth");
  }
  net.intra_node.latency *= args.get_double("latency-scale");
  net.inter_node.latency *= args.get_double("latency-scale");
  net.intra_node.bandwidth *= args.get_double("bandwidth-scale");
  net.inter_node.bandwidth *= args.get_double("bandwidth-scale");
  const double js = args.get_double("jitter-scale");
  net.jitter.rel_sigma *= js;
  net.jitter.add_sigma *= js;
  net.jitter.spike_mean *= js;
  if (args.get_flag("no-jitter")) {
    net.jitter = mpisim::JitterModel{};
  }
  if (args.get_int("eager") > 0) {
    net.eager_threshold = static_cast<std::size_t>(args.get_int("eager"));
  }
  const std::string cs = args.get_string("compute-scale");
  if (cs == "auto") {
    w.compute_scale = w.machine.flops_per_core > 0
                          ? tf.header.machine.flops_per_core /
                                w.machine.flops_per_core
                          : 1.0;
  } else {
    w.compute_scale = std::strtod(cs.c_str(), nullptr);
    if (w.compute_scale <= 0) {
      throw trace::TraceError("bad --compute-scale '" + cs +
                              "' (positive float or 'auto')");
    }
  }
  return w;
}

void add_whatif_options(support::ArgParser& args) {
  args.add_string("trace", "trace.mpst", "input trace file");
  args.add_string("model", "recorded",
                  "recorded | " + preset_list());
  args.add_alias("machine", "model");
  args.add_string("faults", "",
                  "fault plan re-costed onto the what-if frame, e.g. "
                  "'drop:p=0.05' ('' = none; kill rules not replayable)");
  args.add_int("fault-seed", 0,
               "seed for the fault draws (0 = the trace header's seed)");
  args.add_double("latency", 0.0, "absolute link latency override (s)");
  args.add_double("bandwidth", 0.0, "absolute link bandwidth override (B/s)");
  args.add_double("latency-scale", 1.0, "multiply link latencies");
  args.add_double("bandwidth-scale", 1.0, "multiply link bandwidths");
  args.add_double("jitter-scale", 1.0, "multiply jitter sigmas");
  args.add_flag("no-jitter", "disable network jitter entirely");
  args.add_int("eager", 0, "eager/rendezvous threshold override (bytes)");
  args.add_string("compute-scale", "1",
                  "multiply recorded compute gaps; 'auto' = recorded flops "
                  "/ replay flops");
}

int cmd_record(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay record",
                          "Run an instrumented app and capture a .mpst trace");
  args.add_string("app", "convolution", "convolution | lulesh");
  args.add_string("model", "nehalem-cluster", preset_list());
  args.add_alias("machine", "model");
  args.add_int("ranks", 8, "MPI processes (lulesh: perfect cube)");
  args.add_int("threads", 1, "MiniOMP threads per rank (lulesh)");
  args.add_int("steps", 100, "time-steps");
  args.add_int("size", 0, "problem size (0 = default)");
  args.add_int("seed", 0x5EED, "world seed");
  args.add_string("out", "trace.mpst", "output trace file");
  args.add_double("telemetry-dt", 0.0,
                  "telemetry sampling interval to stamp into the trace "
                  "header (0 = none); consumed by the timeline subcommand");
  if (!args.parse(argc, argv)) return 1;

  const std::string app_name = args.get_string("app");
  const int ranks = static_cast<int>(args.get_int("ranks"));
  mpisim::WorldOptions opts;
  auto preset = mpisim::MachineModel::preset(args.get_string("model"));
  if (!preset) {
    throw trace::TraceError("unknown model '" + args.get_string("model") +
                            "' (" + preset_list() + ")");
  }
  opts.machine = *preset;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  mpisim::World world(ranks, opts);
  sections::SectionRuntime::install(world);

  std::string provenance = app_name + " --ranks " + std::to_string(ranks) +
                           " --steps " + std::to_string(args.get_int("steps"));
  auto rec = trace::TraceRecorder::install(
      world,
      {.app = provenance, .telemetry_dt = args.get_double("telemetry-dt")});

  if (app_name == "convolution") {
    apps::conv::ConvolutionConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    if (args.get_int("size") > 0) {
      cfg.width = static_cast<int>(args.get_int("size")) * 100;
      cfg.height = static_cast<int>(args.get_int("size")) * 75;
    }
    cfg.full_fidelity = false;
    apps::conv::ConvolutionApp app(cfg);
    world.run(std::ref(app));
  } else if (app_name == "lulesh") {
    apps::lulesh::LuleshConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    cfg.omp_threads = static_cast<int>(args.get_int("threads"));
    if (args.get_int("size") > 0) {
      cfg.s = static_cast<int>(args.get_int("size"));
    }
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
  } else {
    std::fprintf(stderr, "mpisect-replay: unknown app '%s'\n",
                 app_name.c_str());
    return 1;
  }

  const trace::TraceFile tf = rec->finish();
  tf.save(args.get_string("out"));
  std::printf("recorded %llu events on %d ranks -> %s\n",
              static_cast<unsigned long long>(tf.total_events()), ranks,
              args.get_string("out").c_str());
  return 0;
}

int cmd_replay(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay replay",
                          "Replay a trace under a what-if machine model");
  add_whatif_options(args);
  args.add_string("export", "text", "text | csv | json | chrome");
  args.add_alias("format", "export");
  args.add_flag("json", "shorthand for --export json");
  args.add_string("out", "", "output file ('' = stdout)");
  args.add_flag("verify",
                "same-model integrity check against the recorded footer");
  args.add_double("tseq", 0.0,
                  "sequential reference time: emit Eq. 6 partial bounds");
  if (!args.parse(argc, argv)) return 1;

  const trace::TraceFile tf = trace::TraceFile::load(args.get_string("trace"));
  if (args.get_flag("verify")) {
    const trace::VerifyResult v = trace::verify_roundtrip(tf);
    if (!v.ok) {
      std::fprintf(stderr, "mpisect-replay: verify FAILED: %s\n",
                   v.detail.c_str());
      return 3;
    }
    std::printf("verify OK: same-model replay matches the recorded footer\n");
  }

  const WhatIf w = resolve_machine(tf, args);
  const std::string format = support::unified_export(args);
  trace::ReplayOptions ropts;
  ropts.compute_scale = w.compute_scale;
  ropts.timeline = format == "chrome";
  if (!args.get_string("faults").empty()) {
    ropts.faults = mpisim::faults::FaultPlan::parse(args.get_string("faults"));
    ropts.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  }
  const trace::ReplayResult res = trace::replay(tf, w.machine, ropts);

  std::optional<double> t_seq;
  if (args.get_double("tseq") > 0) t_seq = args.get_double("tseq");
  std::string text;
  if (format == "text") {
    text = "machine: " + w.machine.name + "  compute-scale: " +
           std::to_string(w.compute_scale) + "\n" +
           trace::render_text(res, t_seq);
  } else if (format == "csv") {
    text = trace::render_csv(res, t_seq);
  } else if (format == "json") {
    text = trace::render_json(res, t_seq);
  } else if (format == "chrome") {
    text = trace::render_chrome(res);
  } else {
    std::fprintf(stderr, "mpisect-replay: unknown format '%s'\n",
                 format.c_str());
    return 1;
  }
  return emit(text, args.get_string("out")) ? 0 : 1;
}

int cmd_timeline(int argc, const char* const* argv) {
  support::ArgParser args(
      "mpisect-replay timeline",
      "Re-bin a trace's section timeline into telemetry windows (Eq. 6 "
      "attribution per interval)");
  add_whatif_options(args);
  args.add_double("dt", 0.0,
                  "window width in virtual seconds (0 = the trace header's "
                  "telemetry-dt, else makespan/100)");
  args.add_string("export", "csv", "csv | json | chrome");
  args.add_alias("format", "export");
  args.add_flag("json", "shorthand for --export json");
  args.add_string("out", "", "output file ('' = stdout)");
  if (!args.parse(argc, argv)) return 1;

  const trace::TraceFile tf = trace::TraceFile::load(args.get_string("trace"));
  const WhatIf w = resolve_machine(tf, args);
  trace::ReplayOptions ropts;
  ropts.compute_scale = w.compute_scale;
  ropts.timeline = true;
  if (!args.get_string("faults").empty()) {
    ropts.faults = mpisim::faults::FaultPlan::parse(args.get_string("faults"));
    ropts.fault_seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  }
  const trace::ReplayResult res = trace::replay(tf, w.machine, ropts);

  double dt = args.get_double("dt");
  if (dt <= 0) dt = tf.header.telemetry_dt;
  if (dt <= 0) dt = res.makespan / 100.0;
  if (dt <= 0) {
    std::fprintf(stderr, "mpisect-replay: empty trace, nothing to bin\n");
    return 1;
  }
  const telemetry::Timeline tl = telemetry::timeline_from_replay(res, dt);

  support::Provenance prov = support::build_provenance();
  prov.machine = w.machine.name;
  prov.seed = std::to_string(tf.header.seed);

  const std::string format = support::unified_export(args);
  std::string text;
  if (format == "csv") {
    text = telemetry::timeline_csv(tl, prov);
  } else if (format == "json") {
    text = telemetry::timeline_json(tl, prov);
  } else if (format == "chrome") {
    text = telemetry::chrome_counters(tl, prov);
  } else {
    std::fprintf(stderr, "mpisect-replay: unknown format '%s'\n",
                 format.c_str());
    return 1;
  }
  return emit(text, args.get_string("out")) ? 0 : 1;
}

int cmd_info(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay info",
                          "Describe a trace file without replaying it");
  args.add_string("trace", "trace.mpst", "input trace file");
  if (!args.parse(argc, argv)) return 1;

  const trace::TraceFile tf = trace::TraceFile::load(args.get_string("trace"));
  std::printf("app:    %s\n", tf.header.app.c_str());
  std::printf("seed:   0x%llx  start-skew sigma %.3g\n",
              static_cast<unsigned long long>(tf.header.seed),
              tf.header.start_skew_sigma);
  std::printf("ranks:  %d   events: %llu\n", tf.header.nranks,
              static_cast<unsigned long long>(tf.total_events()));
  std::printf("%s", tf.header.machine.describe().c_str());
  std::printf("labels: %zu\n", tf.labels.size());
  for (std::size_t i = 0; i < tf.labels.size(); ++i) {
    std::printf("  [%zu] %s\n", i, tf.labels[i].c_str());
  }
  for (const auto& r : tf.ranks) {
    std::printf("rank %3d: %zu events, t0 %.6f, t_final %.6f\n", r.rank,
                r.events.size(), r.t0, r.t_final);
    if (tf.ranks.size() > 8 && r.rank == 3) {
      std::printf("  ... (%zu more ranks)\n", tf.ranks.size() - 4);
      break;
    }
  }
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  support::ArgParser args("mpisect-replay sweep",
                          "Replay across a parameter grid, emit long CSV");
  args.add_string("trace", "trace.mpst", "input trace file");
  args.add_string("models", "recorded",
                  "comma list: recorded | " + preset_list());
  args.add_alias("machines", "models");
  args.add_string("latency-scales", "1", "comma list of latency multipliers");
  args.add_string("bandwidth-scales", "1",
                  "comma list of bandwidth multipliers");
  args.add_string("compute-scales", "1",
                  "comma list of compute multipliers ('auto' = recorded "
                  "flops / machine flops)");
  args.add_string("drop-rates", "0",
                  "comma list of message drop probabilities (re-costed with "
                  "retransmits onto the what-if frame)");
  args.add_int("fault-seed", 0,
               "seed for the fault draws (0 = the trace header's seed)");
  args.add_double("tseq", 0.0, "sequential reference time for Eq. 6 bounds");
  args.add_string("out", "", "output CSV ('' = stdout)");
  if (!args.parse(argc, argv)) return 1;

  const trace::TraceFile tf = trace::TraceFile::load(args.get_string("trace"));
  std::optional<double> t_seq;
  if (args.get_double("tseq") > 0) t_seq = args.get_double("tseq");

  const std::vector<std::string> machines =
      split_csv(args.get_string("models"));
  const std::vector<double> lat = parse_grid(args.get_string("latency-scales"));
  const std::vector<double> bw =
      parse_grid(args.get_string("bandwidth-scales"));
  const std::vector<std::string> comp =
      split_csv(args.get_string("compute-scales"));
  const std::vector<double> drops = parse_grid(args.get_string("drop-rates"));

  std::string out = trace::sweep_csv_header();
  for (const auto& mname : machines) {
    mpisim::MachineModel base;
    if (mname == "recorded") {
      base = tf.header.machine;
    } else if (auto preset = mpisim::MachineModel::preset(mname)) {
      base = *preset;
    } else {
      throw trace::TraceError("unknown machine '" + mname + "' (recorded|" +
                              preset_list() + ")");
    }
    for (const double ls : lat) {
      for (const double bs : bw) {
        for (const std::string& citem : comp) {
          double cs;
          if (citem == "auto") {
            cs = base.flops_per_core > 0
                     ? tf.header.machine.flops_per_core / base.flops_per_core
                     : 1.0;
          } else {
            cs = std::strtod(citem.c_str(), nullptr);
            if (cs <= 0) {
              throw trace::TraceError("bad --compute-scales entry '" + citem +
                                      "' (positive float or 'auto')");
            }
          }
          mpisim::MachineModel m = base;
          m.net.intra_node.latency *= ls;
          m.net.inter_node.latency *= ls;
          m.net.intra_node.bandwidth *= bs;
          m.net.inter_node.bandwidth *= bs;
          for (const double dr : drops) {
            if (dr < 0.0 || dr >= 1.0) {
              throw trace::TraceError("bad --drop-rates entry (need 0 <= p "
                                      "< 1)");
            }
            trace::ReplayOptions ropts;
            ropts.compute_scale = cs;
            if (dr > 0.0) {
              char spec[48];
              std::snprintf(spec, sizeof spec, "drop:p=%.9g", dr);
              ropts.faults = mpisim::faults::FaultPlan::parse(spec);
              ropts.fault_seed =
                  static_cast<std::uint64_t>(args.get_int("fault-seed"));
            }
            const trace::ReplayResult res = trace::replay(tf, m, ropts);
            out += trace::sweep_csv_rows(res, mname, ls, bs, cs, dr, t_seq);
          }
        }
      }
    }
  }
  return emit(out, args.get_string("out")) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  try {
    if (cmd == "record") return cmd_record(argc - 1, argv + 1);
    if (cmd == "replay") return cmd_replay(argc - 1, argv + 1);
    if (cmd == "info") return cmd_info(argc - 1, argv + 1);
    if (cmd == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (cmd == "timeline") return cmd_timeline(argc - 1, argv + 1);
  } catch (const trace::TraceError& err) {
    std::fprintf(stderr, "mpisect-replay: %s\n", err.what());
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-replay: %s\n", err.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: mpisect-replay <record|replay|info|sweep|timeline> "
               "[options]\n"
               "       mpisect-replay <subcommand> --help\n");
  return 1;
}
