# End-to-end telemetry CLI check:
#   1. sampler exports are byte-identical across scheduler worker counts
#      (MPISECT_WORKERS=1 vs 4) — the zero-perturbation/determinism
#      contract, observed through the CLI rather than the unit suite
#   2. the counters export is byte-identical too
#   3. --post re-renders a saved CSV and reports the same binding section
#   4. every other export format produces non-empty, well-formed output
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=1
          ${TOP} --app convolution --ranks 8 --steps 40 --seed 99
          --machine nehalem-cluster --no-live --export csv --out telem_w1.csv
  RESULT_VARIABLE rc1)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=4
          ${TOP} --app convolution --ranks 8 --steps 40 --seed 99
          --machine nehalem-cluster --no-live --export csv --out telem_w4.csv
  RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "mpisect-top export runs failed (${rc1}/${rc2})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files telem_w1.csv telem_w4.csv
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "timeline CSV differs across MPISECT_WORKERS=1/4")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=1
          ${TOP} --app convolution --ranks 8 --steps 40 --seed 99
          --machine nehalem-cluster --no-live --export counters
          --out counters_w1.csv
  RESULT_VARIABLE rc3)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env MPISECT_WORKERS=4
          ${TOP} --app convolution --ranks 8 --steps 40 --seed 99
          --machine nehalem-cluster --no-live --export counters
          --out counters_w4.csv
  RESULT_VARIABLE rc4)
if(NOT rc3 EQUAL 0 OR NOT rc4 EQUAL 0)
  message(FATAL_ERROR "counters export runs failed (${rc3}/${rc4})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files counters_w1.csv counters_w4.csv
  RESULT_VARIABLE same2)
if(NOT same2 EQUAL 0)
  message(FATAL_ERROR "counters CSV differs across MPISECT_WORKERS=1/4")
endif()

execute_process(
  COMMAND ${TOP} --post telem_w1.csv
  OUTPUT_VARIABLE post_out
  RESULT_VARIABLE rc5)
if(NOT rc5 EQUAL 0)
  message(FATAL_ERROR "--post render failed (${rc5})")
endif()
if(NOT post_out MATCHES "Eq. 6 binding section:")
  message(FATAL_ERROR "--post render lacks the binding line:\n${post_out}")
endif()

foreach(fmt json chrome prom)
  execute_process(
    COMMAND ${TOP} --app convolution --ranks 8 --steps 40 --seed 99
            --machine nehalem-cluster --no-live --export ${fmt}
            --out telem.${fmt}
    RESULT_VARIABLE rc_fmt)
  if(NOT rc_fmt EQUAL 0)
    message(FATAL_ERROR "export ${fmt} failed (${rc_fmt})")
  endif()
endforeach()
file(READ telem.json json_out)
if(NOT json_out MATCHES "\"provenance\"")
  message(FATAL_ERROR "JSON export missing provenance")
endif()
file(READ telem.chrome chrome_out)
if(NOT chrome_out MATCHES "traceEvents")
  message(FATAL_ERROR "chrome export missing traceEvents")
endif()
file(READ telem.prom prom_out)
if(NOT prom_out MATCHES "# TYPE mpisect_mpi_msgs_sent counter")
  message(FATAL_ERROR "prometheus export missing typed counter")
endif()
