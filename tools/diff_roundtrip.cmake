# End-to-end CLI check: two snapshots at different thread counts diff
# cleanly and the compute kernels show up as movers.
execute_process(
  COMMAND ${REPORT} --app lulesh --ranks 1 --threads 1 --steps 3 --size 6
          --machine knl --format snapshot --out t1.csv
  RESULT_VARIABLE rc1)
execute_process(
  COMMAND ${REPORT} --app lulesh --ranks 1 --threads 16 --steps 3 --size 6
          --machine knl --format snapshot --out t16.csv
  RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "mpisect-report failed (${rc1}/${rc2})")
endif()
execute_process(
  COMMAND ${DIFF} t1.csv t16.csv
  OUTPUT_VARIABLE diff_out
  RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "mpisect-diff failed (${rc3})")
endif()
if(NOT diff_out MATCHES "LagrangeNodal")
  message(FATAL_ERROR "diff output missing expected section:\n${diff_out}")
endif()
if(NOT diff_out MATCHES "biggest improvement")
  message(FATAL_ERROR "diff output missing headline:\n${diff_out}")
endif()
