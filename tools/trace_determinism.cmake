# End-to-end trace CLI check:
#   1. two same-seed records are byte-identical files
#   2. same-model replay reproduces the recorded footer (--verify)
#   3. a what-if replay on another preset completes and emits CSV
#   4. corrupt / truncated / wrong-endian input exits nonzero with a
#      diagnostic, never an abort
execute_process(
  COMMAND ${REPLAY} record --app convolution --ranks 8 --steps 20
          --machine nehalem-cluster --seed 77 --out det_a.mpst
  RESULT_VARIABLE rc1)
execute_process(
  COMMAND ${REPLAY} record --app convolution --ranks 8 --steps 20
          --machine nehalem-cluster --seed 77 --out det_b.mpst
  RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "mpisect-replay record failed (${rc1}/${rc2})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files det_a.mpst det_b.mpst
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "same-seed records are not byte-identical")
endif()

execute_process(
  COMMAND ${REPLAY} replay --trace det_a.mpst --verify
  OUTPUT_VARIABLE verify_out
  RESULT_VARIABLE rc3)
if(NOT rc3 EQUAL 0)
  message(FATAL_ERROR "replay --verify failed (${rc3}):\n${verify_out}")
endif()
if(NOT verify_out MATCHES "verify OK")
  message(FATAL_ERROR "verify did not report OK:\n${verify_out}")
endif()

execute_process(
  COMMAND ${REPLAY} replay --trace det_a.mpst --machine knl
          --compute-scale auto --format csv
  OUTPUT_VARIABLE whatif_out
  RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "what-if replay failed (${rc4})")
endif()
if(NOT whatif_out MATCHES "section,comm")
  message(FATAL_ERROR "what-if CSV missing header:\n${whatif_out}")
endif()

# Robustness: corrupt input (truncation at every byte offset is covered by
# the test_trace_format unit suite; here we exercise the CLI exit contract).
file(WRITE bad_magic.mpst "NOPE this is not a trace file")
execute_process(
  COMMAND ${REPLAY} info --trace bad_magic.mpst
  ERROR_VARIABLE bad_err
  RESULT_VARIABLE rc5)
if(rc5 EQUAL 0)
  message(FATAL_ERROR "bad-magic input did not fail")
endif()
if(NOT bad_err MATCHES "mpisect-replay:")
  message(FATAL_ERROR "bad-magic failure lacks a diagnostic:\n${bad_err}")
endif()
execute_process(
  COMMAND ${REPLAY} info --trace no_such_file.mpst
  ERROR_VARIABLE miss_err
  RESULT_VARIABLE rc6)
if(rc6 EQUAL 0)
  message(FATAL_ERROR "missing input did not fail")
endif()
