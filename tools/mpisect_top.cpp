// mpisect-top — live terminal telemetry for an instrumented run.
//
// Runs an app with the TelemetrySampler attached and renders, at a fixed
// wall-clock refresh, the top-N sections ranked by Eq. 6 bound tightness
// (lowest speedup bound first — the section currently capping the app),
// with a sparkline of each section's recent per-window imbalance and a
// counter footer (messages, bytes, eager share, MiniOMP charges).
//
//   mpisect-top --app lulesh --ranks 8 --threads 4 --steps 50 --machine knl
//   mpisect-top --app convolution --ranks 16 --steps 200 --dt 0.005
//   mpisect-top --post telemetry.csv          # re-render a saved series
//   mpisect-top --app lulesh --no-live --export csv --out telemetry.csv
//
// The live view reads sampler ring snapshots while ranks run; the final
// render (and every --export) is the deterministic post-run reduction.
// Exit status: 0 = ok, 1 = usage/app error.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "core/speedup/partial_bound.hpp"
#include "mpisim/faults/injector.hpp"
#include "mpisim/session.hpp"
#include "obs/memory.hpp"
#include "obs/spans.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeline.hpp"

namespace {

using namespace mpisect;

std::string preset_list() {
  std::string out;
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

/// Unicode block sparkline of the series tail (empty series -> spaces).
std::string sparkline(const std::vector<double>& xs, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  const std::size_t n = xs.size() > width ? width : xs.size();
  double hi = 0.0;
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) {
    hi = std::max(hi, xs[i]);
  }
  std::string out;
  for (std::size_t i = 0; i < width - n; ++i) out += " ";
  for (std::size_t i = xs.size() - n; i < xs.size(); ++i) {
    const int level =
        hi > 0.0 ? std::min(7, static_cast<int>(xs[i] / hi * 7.999)) : 0;
    out += kBlocks[level];
  }
  return out;
}

struct RenderOptions {
  int top = 10;
  std::size_t spark_width = 24;
  bool clear_screen = false;
  std::string status;
};

/// The top view: sections ranked by bound tightness over the series so far.
std::string render(const telemetry::Timeline& tl, const RenderOptions& ro) {
  std::string out;
  if (ro.clear_screen) out += "\x1b[2J\x1b[H";
  out += support::provenance_banner("mpisect-top") + "\n";
  double t_end = 0.0;
  for (const auto& w : tl.windows) t_end = std::max(t_end, w.t_end);
  out += support::fmt_double(tl.dt * 1e3, 3) + " ms/window  " +
         std::to_string(tl.windows.size()) + " windows  " +
         std::to_string(tl.nranks) + " ranks  t=" +
         support::fmt_seconds(t_end) + "  " + ro.status;
  if (tl.dropped > 0) {
    out += "  [" + std::to_string(tl.dropped) + " samples dropped]";
  }
  out += "\n\n";

  double busy_sum = 0.0;
  for (const auto& t : tl.section_totals) busy_sum += t.total;

  // Rank sections by Eq. 6 bound (ascending: tightest cap first).
  struct Row {
    const telemetry::Timeline::SectionTotal* tot;
    double bound;
  };
  std::vector<Row> rows;
  for (const auto& t : tl.section_totals) {
    if (t.label == "MPI_MAIN") continue;
    rows.push_back({&t, speedup::partial_bound(busy_sum, t.per_process)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.bound < b.bound; });

  out += support::pad_right("SECTION", 28) + support::pad_left("BOUND", 9) +
         support::pad_left("PER-PROC", 11) + support::pad_left("TOTAL", 11) +
         support::pad_left("IMB", 11) + "  IMBALANCE TREND\n";
  int shown = 0;
  for (const Row& r : rows) {
    if (shown++ >= ro.top) break;
    std::vector<double> imb_series;
    for (const auto& w : tl.windows) {
      double v = 0.0;
      for (const auto& s : w.sections) {
        if (s.label == r.tot->label) v = s.imbalance;
      }
      imb_series.push_back(v);
    }
    const std::string bound_str = std::isfinite(r.bound)
                                      ? support::fmt_double(r.bound, 1) + "x"
                                      : "inf";
    out += support::pad_right(r.tot->label, 28) +
           support::pad_left(bound_str, 9) +
           support::pad_left(support::fmt_seconds(r.tot->per_process), 11) +
           support::pad_left(support::fmt_seconds(r.tot->total), 11) +
           support::pad_left(
               support::fmt_seconds(r.tot->max_window_imbalance), 11) +
           "  " + sparkline(imb_series, ro.spark_width) + "\n";
  }
  if (!tl.binding.empty()) {
    const std::string b =
        std::isfinite(tl.bound) ? support::fmt_double(tl.bound, 2) : "inf";
    out += "\nEq. 6 binding section: " + tl.binding + "  (speedup bound " +
           b + ")\n";
  }
  return out;
}

std::string counters_footer(const telemetry::Registry& reg,
                            const telemetry::StandardInstruments& ins) {
  const double msgs = reg.total(ins.msgs_sent);
  const double eager = reg.total(ins.msgs_eager);
  std::string out = "msgs=" + support::fmt_double(msgs, 0) +
                    " bytes=" + support::fmt_bytes(reg.total(ins.bytes_sent));
  if (msgs > 0) {
    out += " eager=" + support::fmt_double(eager / msgs * 100.0, 1) + "%";
  }
  out += " colls=" + support::fmt_double(reg.total(ins.coll_entries), 0) +
         " mpi_calls=" + support::fmt_double(reg.total(ins.mpi_calls), 0) +
         " omp_regions=" + support::fmt_double(reg.total(ins.omp_regions), 0);
  return out + "\n";
}

/// The --self pane: how the *simulator* is doing, next to how the
/// simulated app is doing. Scheduler wall-time split and park/wake rates
/// come from ExecStats (busy/idle need obs::set_timing — armed in main
/// when --self is passed); bytes/rank from the channel/stack accountant;
/// progress.* from the sampler registry (PR 8 counters, otherwise only
/// visible via --export prom).
std::string self_pane(const mpisim::ExecStats& st, const obs::MemAccount& mem,
                      const telemetry::Registry& reg) {
  const auto u64 = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::string out = "\nsimulator:\n";
  const double busy_s = static_cast<double>(u64(st.busy_ns)) * 1e-9;
  const double idle_s = static_cast<double>(u64(st.idle_ns)) * 1e-9;
  const double wall = busy_s + idle_s;
  out += "  workers busy=" + support::fmt_seconds(busy_s) +
         " idle=" + support::fmt_seconds(idle_s);
  if (wall > 0.0) {
    out += " (" + support::fmt_double(busy_s / wall * 100.0, 1) + "% busy)";
  }
  out += "\n  parks=" + std::to_string(u64(st.parks)) +
         " wakes=" + std::to_string(u64(st.wakes)) +
         " switches=" + std::to_string(u64(st.switches));
  if (const auto n = u64(st.switch_latency_samples); n > 0) {
    out += " wake-to-resume=" +
           support::fmt_double(
               static_cast<double>(u64(st.switch_latency_ns)) /
                   static_cast<double>(n) * 1e-3,
               1) +
           "us";
  }
  if (const auto n = u64(st.ready_depth_samples); n > 0) {
    out += " ready-depth=" +
           support::fmt_double(static_cast<double>(u64(st.ready_depth_sum)) /
                                   static_cast<double>(n),
                               1);
  }
  out += "\n  mem channels=" +
         support::fmt_bytes(static_cast<double>(mem.total_hwm())) + " hwm (" +
         support::fmt_bytes(mem.bytes_per_rank()) + "/rank, peak rank " +
         support::fmt_bytes(static_cast<double>(mem.peak_rank_hwm())) +
         ")  stacks=" +
         support::fmt_bytes(static_cast<double>(u64(st.stack_bytes))) + "\n";
  std::string prog;
  for (const char* name :
       {"progress.nbc_posted", "progress.nbc_completed",
        "progress.test_calls"}) {
    if (const auto id = reg.find(name)) {
      if (!prog.empty()) prog += " ";
      const char* short_name = name + sizeof("progress.") - 1;
      prog += std::string(short_name) + "=" +
              support::fmt_double(reg.total(*id), 0);
    }
  }
  if (!prog.empty()) out += "  progress " + prog + "\n";
  return out;
}

bool emit(const std::string& text, const std::string& out_path,
          const char* what) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "mpisect-top: cannot write %s\n", out_path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s %s (%zu bytes)\n", what, out_path.c_str(),
              text.size());
  return true;
}

int run_post(const std::string& path, const RenderOptions& ro) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mpisect-top: cannot read %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const telemetry::Timeline tl = telemetry::timeline_from_csv(ss.str());
  std::fputs(render(tl, ro).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("mpisect-top",
                          "Live telemetry view of an instrumented run");
  args.add_string("app", "lulesh", "lulesh | convolution");
  support::add_unified_flags(args, /*model_default=*/"knl",
                             /*export_default=*/"",
                             /*seed_default=*/0x5EED);
  args.add_int("ranks", 8, "MPI processes (lulesh: perfect cube)");
  args.add_int("threads", 2, "MiniOMP threads per rank (lulesh)");
  args.add_int("steps", 30, "time-steps");
  args.add_int("size", 0, "problem size (0 = default)");
  args.add_int("workers", 0, "cooperative workers (0 = MPISECT_WORKERS)");
  support::add_world_flags(args);
  args.add_double("dt", 0.05, "sampling interval, virtual seconds");
  args.add_int("depth", 0,
               "attribution depth: 0 = leaf sections, k = roll busy time up "
               "into the depth-k ancestor (2 = Lulesh phase view)");
  args.add_int("top", 10, "sections shown");
  args.add_int("refresh-ms", 250, "live refresh period");
  args.add_flag("no-live", "skip live rendering (CI/batch)");
  args.add_flag("self",
                "show a simulator self-observability pane (worker busy/idle, "
                "park/wake, bytes/rank, progress counters)");
  args.add_string("post", "", "render a saved timeline CSV instead of running");
  args.add_string("faults", "",
                  "fault plan spec, e.g. 'drop:p=0.05; stall:rank=0,at=0.01,"
                  "for=0.1' ('' = none)");
  args.add_string("out", "", "output file for --export ('' = stdout)");
  if (!args.parse(argc, argv)) return 1;
  if (const auto& st = args.get_string("self-trace"); !st.empty()) {
    obs::enable_self_trace(st);
  }
  const bool self_pane_on = args.get_flag("self");
  // busy/idle and wake-to-resume latency cost clock reads the scheduler
  // only pays when asked; virtual time is unaffected either way.
  if (self_pane_on) obs::set_timing(true);

  RenderOptions ro;
  ro.top = static_cast<int>(args.get_int("top"));

  try {
    if (!args.get_string("post").empty()) {
      ro.status = "[post]";
      return run_post(args.get_string("post"), ro);
    }

    const auto preset =
        mpisim::MachineModel::preset(args.get_string("model"));
    if (!preset) {
      std::fprintf(stderr, "mpisect-top: unknown model '%s' (%s)\n",
                   args.get_string("model").c_str(), preset_list().c_str());
      return 1;
    }
    const int ranks = static_cast<int>(args.get_int("ranks"));
    mpisim::WorldOptions opts;
    opts.machine = *preset;
    opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    if (!args.get_string("faults").empty()) {
      opts.faults =
          mpisim::faults::FaultPlan::parse(args.get_string("faults"));
    }
    // --workers (legacy knob) overrides the workers= key of --exec.
    mpisim::ExecModel em = mpisim::ExecModel::parse(args.get_string("exec"));
    if (args.get_int("workers") > 0) {
      em.workers = static_cast<int>(args.get_int("workers"));
    }
    const auto world_ptr = mpisim::Session(ranks, opts)
                               .world_builder()
                               .exec(em)
                               .match_spec(args.get_string("match"))
                               .build();
    mpisim::World& world = *world_ptr;
    sections::SectionRuntime::install(world);
    telemetry::SamplerOptions sopts;
    sopts.dt = args.get_double("dt");
    sopts.phase_depth = static_cast<int>(args.get_int("depth"));
    auto sampler = telemetry::TelemetrySampler::install(world, sopts);
    std::shared_ptr<mpisim::faults::FaultInjector> injector;
    if (!opts.faults.empty()) {
      injector = mpisim::faults::FaultInjector::install(world);
    }

    std::function<void(mpisim::Ctx&)> body;
    const std::string app_name = args.get_string("app");
    std::shared_ptr<apps::conv::ConvolutionApp> conv;
    std::shared_ptr<apps::lulesh::LuleshApp> lulesh;
    if (app_name == "convolution") {
      apps::conv::ConvolutionConfig cfg;
      cfg.steps = static_cast<int>(args.get_int("steps"));
      if (args.get_int("size") > 0) {
        cfg.width = static_cast<int>(args.get_int("size")) * 100;
        cfg.height = static_cast<int>(args.get_int("size")) * 75;
      }
      cfg.full_fidelity = false;
      conv = std::make_shared<apps::conv::ConvolutionApp>(cfg);
      body = [conv](mpisim::Ctx& ctx) { (*conv)(ctx); };
    } else if (app_name == "lulesh") {
      apps::lulesh::LuleshConfig cfg;
      cfg.steps = static_cast<int>(args.get_int("steps"));
      cfg.omp_threads = static_cast<int>(args.get_int("threads"));
      if (args.get_int("size") > 0) {
        cfg.s = static_cast<int>(args.get_int("size"));
      }
      cfg.full_fidelity = false;
      lulesh = std::make_shared<apps::lulesh::LuleshApp>(cfg);
      body = [lulesh](mpisim::Ctx& ctx) { (*lulesh)(ctx); };
    } else {
      std::fprintf(stderr, "mpisect-top: unknown app '%s'\n",
                   app_name.c_str());
      return 1;
    }

    std::atomic<bool> done{false};
    std::exception_ptr run_error;
    std::thread runner([&] {
      try {
        world.run(body);
      } catch (...) {
        run_error = std::current_exception();
      }
      done.store(true);
    });

    const bool live = !args.get_flag("no-live") && isatty(1) != 0;
    while (!done.load()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(args.get_int("refresh-ms")));
      if (!live) continue;
      telemetry::Timeline tl = telemetry::build_timeline(*sampler);
      RenderOptions live_ro = ro;
      live_ro.clear_screen = true;
      live_ro.status = "[running]";
      std::string frame = render(tl, live_ro);
      frame += counters_footer(sampler->registry(), sampler->instruments());
      if (self_pane_on) {
        frame += self_pane(world.executor().stats(), world.mem_account(),
                           sampler->registry());
      }
      std::fputs(frame.c_str(), stdout);
      std::fflush(stdout);
    }
    runner.join();
    if (run_error) std::rethrow_exception(run_error);

    const telemetry::Timeline tl = telemetry::build_timeline(*sampler);

    support::Provenance prov = support::build_provenance();
    prov.machine = opts.machine.name;
    prov.seed = std::to_string(opts.seed);

    const std::string fmt_name = support::unified_export(args);
    if (!fmt_name.empty()) {
      std::string text;
      if (fmt_name == "csv") {
        text = telemetry::timeline_csv(tl, prov);
      } else if (fmt_name == "counters") {
        text = telemetry::counters_csv(tl, prov);
      } else if (fmt_name == "json") {
        text = telemetry::timeline_json(tl, prov);
      } else if (fmt_name == "chrome") {
        text = telemetry::chrome_counters(tl, prov);
      } else if (fmt_name == "prom") {
        text = telemetry::prometheus_text(
            sampler->registry(), &world.executor().stats(), prov);
      } else {
        std::fprintf(stderr, "mpisect-top: unknown export '%s'\n",
                     fmt_name.c_str());
        return 1;
      }
      return emit(text, args.get_string("out"), fmt_name.c_str()) ? 0 : 1;
    }

    ro.status = "[done]";
    std::string out = render(tl, ro);
    out += counters_footer(sampler->registry(), sampler->instruments());
    if (self_pane_on) {
      out += self_pane(world.executor().stats(), world.mem_account(),
                       sampler->registry());
    }
    if (injector) {
      out += "faults: " + injector->summary() + "\n";
    }
    std::fputs(out.c_str(), stdout);
    return 0;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-top: %s\n", err.what());
    return 1;
  }
}
