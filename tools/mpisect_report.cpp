// mpisect-report — run an instrumented application on a machine model and
// emit every report the toolchain produces, from one command line:
//
//   mpisect-report --app convolution --ranks 64 --steps 200
//                  --model nehalem --export text
//   mpisect-report --app lulesh --ranks 8 --threads 16 --model knl
//                  --export tree
//   mpisect-report --app lulesh --export chrome --out trace.json
//   mpisect-report --app convolution --export snapshot --out before.csv
//
// Formats: text (per-section table), csv, json, tree (phase call-tree),
// balance (load-balance triage), chrome (chrome://tracing JSON),
// snapshot (ProfileSnapshot CSV for mpisect-diff).
#include <cstdio>
#include <fstream>
#include <memory>

#include "apps/convolution/convolution.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/balance.hpp"
#include "profiler/diff.hpp"
#include "profiler/report.hpp"
#include "profiler/section_profiler.hpp"
#include "profiler/tree.hpp"
#include "obs/spans.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

namespace {

using namespace mpisect;

std::string preset_list() {
  std::string out;
  for (const auto& n : mpisim::MachineModel::preset_names()) {
    if (!out.empty()) out += "|";
    out += n;
  }
  return out;
}

bool emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return false;
  }
  out << text;
  std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), text.size());
  return true;
}

}  // namespace

int run(int argc, char** argv) {
  support::ArgParser args("mpisect-report",
                          "Run an instrumented app and emit section reports");
  args.add_string("app", "convolution", "convolution | lulesh");
  support::add_unified_flags(args, /*model_default=*/"nehalem",
                             /*export_default=*/"text",
                             /*seed_default=*/0x5EED);
  args.add_int("ranks", 8, "MPI processes (lulesh: perfect cube)");
  support::add_world_flags(args);
  args.add_int("threads", 1, "MiniOMP threads per rank (lulesh)");
  args.add_int("steps", 100, "time-steps");
  args.add_int("size", 0,
               "problem size (convolution: image height scale x100; lulesh: "
               "per-rank edge; 0 = default)");
  args.add_string("out", "", "output file ('' = stdout)");
  args.add_flag("validate", "enable section validation mode");
  if (!args.parse(argc, argv)) return 1;
  if (const auto& st = args.get_string("self-trace"); !st.empty()) {
    obs::enable_self_trace(st);
  }

  const std::string app_name = args.get_string("app");
  const std::string format = support::unified_export(args);
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const bool keep_instances =
      format == "tree" || format == "chrome";

  mpisim::WorldOptions opts;
  const auto preset = mpisim::MachineModel::preset(args.get_string("model"));
  if (!preset) {
    std::fprintf(stderr, "unknown model '%s' (%s)\n",
                 args.get_string("model").c_str(), preset_list().c_str());
    return 1;
  }
  opts.machine = *preset;
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  opts.validate_sections = args.get_flag("validate");
  const auto world_ptr = mpisim::Session(ranks, opts)
                             .world_builder()
                             .exec_spec(args.get_string("exec"))
                             .match_spec(args.get_string("match"))
                             .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {.keep_instances = keep_instances});

  if (app_name == "convolution") {
    apps::conv::ConvolutionConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    if (args.get_int("size") > 0) {
      cfg.width = static_cast<int>(args.get_int("size")) * 100;
      cfg.height = static_cast<int>(args.get_int("size")) * 75;
    }
    cfg.full_fidelity = false;
    apps::conv::ConvolutionApp app(cfg);
    world.run(std::ref(app));
  } else if (app_name == "lulesh") {
    apps::lulesh::LuleshConfig cfg;
    cfg.steps = static_cast<int>(args.get_int("steps"));
    cfg.omp_threads = static_cast<int>(args.get_int("threads"));
    if (args.get_int("size") > 0) {
      cfg.s = static_cast<int>(args.get_int("size"));
    }
    cfg.full_fidelity = false;
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
  } else {
    std::fprintf(stderr, "unknown app '%s' (convolution|lulesh)\n",
                 app_name.c_str());
    return 1;
  }

  std::string text;
  if (format == "text") {
    text = profiler::render_text(prof);
    text += "virtual walltime: " + support::fmt_seconds(world.elapsed()) +
            " on " + std::to_string(ranks) + " ranks (" +
            opts.machine.name + ")\n";
  } else if (format == "csv") {
    text = profiler::render_csv(prof);
  } else if (format == "json") {
    text = profiler::render_json(prof);
  } else if (format == "tree") {
    text = profiler::render_tree(profiler::build_section_tree(prof));
  } else if (format == "balance") {
    text = profiler::render_balance(profiler::balance_report(prof));
  } else if (format == "chrome") {
    text = profiler::render_chrome_trace(prof);
  } else if (format == "snapshot") {
    text = profiler::ProfileSnapshot::capture(prof, app_name).to_csv();
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 1;
  }
  return emit(text, args.get_string("out")) ? 0 : 1;
}

int main(int argc, char** argv) {
  // Usage errors (bad --exec/--match specs and friends) must surface as a
  // one-line diagnostic with exit 1, never an uncaught-exception abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "mpisect-report: %s\n", err.what());
    return 1;
  }
}
