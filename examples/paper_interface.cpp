// The paper's interface, verbatim: a stencil-ish MPI program written
// against the C-style facade (mpix::MPI_*), instrumented exactly as the
// paper's Figure 1 proposes, and inspected through the section tree —
// the closest this repository gets to "what adopting MPI_Section in an
// existing MPI code looks like".
//
//   build/examples/paper_interface
#include <cstdio>
#include <vector>

#include "core/compat/mpi_compat.hpp"
#include "core/sections/runtime.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "profiler/tree.hpp"

using namespace mpisect;
using namespace mpisect::mpix;

namespace {

/// The "application": textbook MPI code, two added lines per phase.
void app_main(mpisim::Ctx& ctx) {
  MPI_Comm comm = ctx.world_comm();
  int rank = 0;
  int size = 0;
  MPI_Comm_rank(comm, &rank);
  MPI_Comm_size(comm, &size);

  /* Enter an MPI Section */
  MPIX_Section_enter(comm, "init");
  std::vector<double> field(1024, rank * 1.0);
  double config[16] = {};  // run parameters shipped from rank 0
  MPI_Bcast(config, 16, MPI_DOUBLE, 0, comm);
  MPIX_Section_exit(comm, "init");

  MPIX_Section_enter(comm, "solve");
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < 25; ++step) {
    MPIX_Section_enter(comm, "exchange");
    double ghost = 0.0;
    MPI_Status status;
    MPI_Sendrecv(field.data(), 1, MPI_DOUBLE, right, 0, &ghost, 1,
                 MPI_DOUBLE, left, 0, comm, &status);
    MPIX_Section_exit(comm, "exchange");

    MPIX_Section_enter(comm, "compute");
    ctx.compute_flops(2e7);
    field[0] = 0.5 * (field[0] + ghost);
    MPIX_Section_exit(comm, "compute");
  }
  MPIX_Section_exit(comm, "solve");

  MPIX_Section_enter(comm, "checkpoint");
  double norm = 0.0;
  MPI_Allreduce(&field[0], &norm, 1, MPI_DOUBLE, MPI_SUM, comm);
  if (rank == 0) std::printf("field norm after solve: %.6f\n", norm);
  MPIX_Section_exit(comm, "checkpoint");
}

}  // namespace

int main() {
  const auto world_ptr =
      mpisim::Session(8)
          .world_builder()
          .machine(mpisim::MachineModel::nehalem_cluster())
          .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world, {.keep_instances = true});

  world.run(app_main);

  std::printf("\nsection tree (phase 'call-tree', averaged over ranks):\n");
  std::fputs(profiler::render_tree(profiler::build_section_tree(prof)).c_str(),
             stdout);
  std::printf(
      "\ntwo function calls per phase bought: nesting-checked phase\n"
      "outlines, per-phase MPI-time attribution, and cross-rank imbalance\n"
      "metrics — all through a tool the application never linked against.\n");
  return 0;
}
