// Domain-specific example 2: choosing an MPI+OpenMP configuration for a
// hybrid code from MPI-level sections alone (the paper's Sec. 5.2 use).
//
// Runs mini-Lulesh in full fidelity (real Sedov shock physics) on the KNL
// model, sweeps the MiniOMP team size at a fixed rank count, detects the
// OpenMP inflexion point from the LagrangeNodal/LagrangeElements sections,
// and recommends the largest *useful* thread count.
//
//   build/examples/hybrid_lulesh [--ranks 8 --steps 20 --s 8]
#include <cstdio>

#include "apps/lulesh/lulesh.hpp"
#include "core/speedup/inflexion.hpp"
#include "core/speedup/laws.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace mpisect;

int main(int argc, char** argv) {
  support::ArgParser args("hybrid_lulesh",
                          "Pick an MPI+OpenMP configuration from sections");
  args.add_int("ranks", 8, "MPI processes (perfect cube)");
  args.add_int("s", 8, "elements per edge per rank");
  args.add_int("steps", 20, "timesteps (full physics: keep moderate)");
  if (!args.parse(argc, argv)) return 1;
  const int ranks = static_cast<int>(args.get_int("ranks"));
  const int s = static_cast<int>(args.get_int("s"));
  const int steps = static_cast<int>(args.get_int("steps"));

  speedup::ScalingSeries wall("walltime");
  speedup::ScalingSeries nodal("LagrangeNodal");
  speedup::ScalingSeries elems("LagrangeElements");
  apps::lulesh::LuleshResult physics;

  for (const int threads : {1, 2, 4, 8, 16, 32, 64}) {
    const auto world_ptr = mpisim::Session(ranks)
                               .world_builder()
                               .machine(mpisim::MachineModel::knl())
                               .build();
    mpisim::World& world = *world_ptr;
    sections::SectionRuntime::install(world);
    profiler::SectionProfiler prof(world);
    apps::lulesh::LuleshConfig cfg;
    cfg.s = s;
    cfg.steps = steps;
    cfg.omp_threads = threads;
    cfg.full_fidelity = true;  // run the actual hydro
    apps::lulesh::LuleshApp app(cfg);
    world.run(std::ref(app));
    wall.add(threads, world.elapsed());
    nodal.add(threads, prof.totals_for("LagrangeNodal").mean_per_process);
    elems.add(threads, prof.totals_for("LagrangeElements").mean_per_process);
    physics = app.result();
  }

  std::printf("Sedov blast after %d steps on %d ranks (physics sanity):\n",
              physics.steps_run, ranks);
  std::printf("  sim time %.4g s, E_int %.4g + E_kin %.4g = %.4g (deposited %.4g)\n",
              physics.sim_time, physics.internal_energy,
              physics.kinetic_energy, physics.total_energy(), 0.1);
  std::printf("  min element volume %.3g (positive = mesh intact)\n\n",
              physics.min_volume);

  support::TextTable table;
  table.set_header(
      {"OMP threads", "walltime (s)", "LagrangeNodal (s)",
       "LagrangeElements (s)", "speedup vs 1 thread"});
  const double t1 = *wall.at(1);
  for (const auto& pt : wall.points()) {
    table.add_row({std::to_string(pt.p), support::fmt_double(pt.time, 4),
                   support::fmt_double(*nodal.at(pt.p), 4),
                   support::fmt_double(*elems.at(pt.p), 4),
                   support::fmt_double(t1 / pt.time, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  // The paper's recommendation logic: never run beyond the inflexion.
  for (const auto* series : {&nodal, &elems}) {
    if (const auto ip = speedup::find_inflexion(*series)) {
      std::printf(
          "%s exhausts its parallelism budget at %d threads (then rises):\n"
          "  it alone bounds speedup at %.2fx (Eq. 6).\n",
          series->name().c_str(), ip->p, t1 / ip->time);
    } else {
      std::printf("%s still scales at the largest team size tested.\n",
                  series->name().c_str());
    }
  }
  if (const auto best = speedup::max_useful_scale(wall)) {
    std::printf(
        "\nrecommended configuration: %d ranks x %d threads — larger teams\n"
        "spend cores on fork/join and memory contention, not physics.\n",
        ranks, *best);
  }
  return 0;
}
