// Quickstart: outline a phase-based MPI program with MPI_Sections and read
// back a profile — the whole workflow in ~60 lines.
//
//   build/examples/quickstart
//
// What it shows:
//   1. build a World through a Session on a machine model (the paper's
//      Nehalem cluster) — per-rank state is constructed lazily
//   2. install the SectionRuntime (the MPI runtime side of the proposal)
//   3. attach the SectionProfiler purely through the PMPI-style hooks
//   4. bracket program phases with MPIX_Section_enter/exit
//   5. print the per-section breakdown a tool derives for free
#include <cstdio>

#include "core/sections/api.hpp"
#include "mpisim/session.hpp"
#include "profiler/report.hpp"
#include "profiler/section_profiler.hpp"

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;

int main() {
  // 16 ranks on the paper's cluster model (8-core nodes -> 2 nodes).
  // Sessions-style construction: query the process set, then build the
  // world lazily — per-rank channels materialize on first use.
  mpisim::Session session(16);
  std::printf("pset %s: %d ranks\n", "mpi://WORLD",
              session.pset_size("mpi://WORLD"));
  const auto world_ptr = session.world_builder()
                             .machine(mpisim::MachineModel::nehalem_cluster())
                             .build();
  mpisim::World& world = *world_ptr;

  // Runtime support for MPI_Sections + a profiling tool. The application
  // code below never mentions the profiler: it observes through hooks,
  // exactly like a PMPI tool.
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler profiler(world);

  world.run([](Ctx& ctx) {
    Comm comm = ctx.world_comm();

    // Phase 1: rank-local setup (imbalanced on purpose: rank 0 reads input).
    sections::MPIX_Section_enter(comm, "setup");
    if (ctx.rank() == 0) ctx.compute(0.5);
    comm.bcast(nullptr, 1 << 20, 0);  // ship the configuration
    sections::MPIX_Section_exit(comm, "setup");

    // Phase 2: iterate compute + neighbor exchange.
    for (int step = 0; step < 50; ++step) {
      const sections::ScopedSection solve(comm, "solve");
      ctx.compute_flops(5e7);  // the "science"
      const int right = (ctx.rank() + 1) % ctx.size();
      const int left = (ctx.rank() - 1 + ctx.size()) % ctx.size();
      comm.sendrecv(nullptr, 4096, right, 0, nullptr, 4096, left, 0);
    }

    // Phase 3: reduce a result.
    sections::MPIX_Section_enter(comm, "reduce");
    const double local = 1.0;
    double global = 0.0;
    comm.allreduce(&local, &global, 1, mpisim::Datatype::Double,
                   mpisim::ReduceOp::Sum);
    sections::MPIX_Section_exit(comm, "reduce");
  });

  std::printf("per-section profile (what any tool gets from the hooks):\n");
  std::fputs(profiler::render_text(profiler).c_str(), stdout);
  std::printf("virtual walltime: %.3f s across %d ranks\n", world.elapsed(),
              world.size());
  return 0;
}
