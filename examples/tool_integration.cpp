// Domain-specific example 3: writing your own tools against the section
// interface — the paper's Sec. 5.3 vision ("a debugger would tell you that
// the bug is in the 'communication' section of 'load-balancing'").
//
// Two hand-rolled tools, neither known to the application:
//   1. WhereAmI — a "debugger" view: when a rank stalls, report every
//      rank's current section stack (via SectionRuntime::stack_snapshot).
//   2. SlowInstanceDetector — uses the 32-byte tool payload (Fig. 2) to
//      timestamp section entry and flags instances that run longer than a
//      threshold, entirely inside the callbacks.
//
//   build/examples/tool_integration
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/sections/api.hpp"
#include "mpisim/session.hpp"
#include "support/strings.hpp"

using namespace mpisect;
using mpisim::Comm;
using mpisim::Ctx;

namespace {

/// Tool 2: flags slow section instances using only the enter/leave
/// callbacks and the 32-byte payload the runtime preserves between them.
class SlowInstanceDetector {
 public:
  SlowInstanceDetector(mpisim::World& world, double threshold_s)
      : threshold_(threshold_s) {
    world.hooks().section_enter_cb = [](Ctx& ctx, Comm&, const char*,
                                        char* data) {
      const double now = ctx.now();
      std::memcpy(data, &now, sizeof now);
    };
    world.hooks().section_leave_cb = [this](Ctx& ctx, Comm&,
                                            const char* label, char* data) {
      double entered = 0.0;
      std::memcpy(&entered, data, sizeof entered);
      const double took = ctx.now() - entered;
      if (took > threshold_) {
        const std::lock_guard lock(mu_);
        reports_.push_back("rank " + std::to_string(ctx.rank()) +
                           ": section '" + label + "' took " +
                           support::fmt_seconds(took) + " (threshold " +
                           support::fmt_seconds(threshold_) + ")");
      }
    };
  }

  void print() const {
    std::printf("SlowInstanceDetector findings (%zu):\n", reports_.size());
    for (const auto& r : reports_) std::printf("  %s\n", r.c_str());
  }

 private:
  double threshold_;
  mutable std::mutex mu_;
  std::vector<std::string> reports_;
};

}  // namespace

int main() {
  const auto world_ptr = mpisim::Session(4)
                             .world_builder()
                             .machine(mpisim::MachineModel::ideal(8, 2))
                             .build();
  mpisim::World& world = *world_ptr;
  auto section_rt = sections::SectionRuntime::install(world);
  SlowInstanceDetector detector(world, /*threshold_s=*/0.5);

  // Tool 1 state: where every rank currently is, sampled at the "hang".
  std::vector<std::string> stacks(4);

  world.run([&](Ctx& ctx) {
    Comm comm = ctx.world_comm();

    sections::MPIX_Section_enter(comm, "load-balancing");
    ctx.compute(0.01);
    {
      const sections::ScopedSection comm_phase(comm, "communication");
      // Rank 2 "hangs": it computes for a long time while the others wait
      // for its message. A debugger attached at this moment asks the
      // section runtime where everyone is.
      if (ctx.rank() == 2) {
        ctx.compute(2.0);  // the bug
        stacks[static_cast<std::size_t>(ctx.rank())] =
            section_rt->stack_string(ctx, comm);
        for (int r = 0; r < ctx.size(); ++r) {
          if (r != 2) comm.send(nullptr, 8, r, 0);
        }
      } else {
        stacks[static_cast<std::size_t>(ctx.rank())] =
            section_rt->stack_string(ctx, comm);
        comm.recv(nullptr, 8, 2, 0);
      }
    }
    sections::MPIX_Section_exit(comm, "load-balancing");
  });

  std::printf("WhereAmI (debugger view at the stall):\n");
  for (int r = 0; r < 4; ++r) {
    std::printf("  rank %d: %s\n", r, stacks[static_cast<std::size_t>(r)].c_str());
  }
  std::printf(
      "-> \"the bug is in the 'communication' section of 'load-balancing'\"\n\n");

  detector.print();
  std::printf(
      "\nboth tools used ONLY the standardized section interface — no app\n"
      "changes, no tool-specific markers, exactly the paper's argument for\n"
      "defining phases at the MPI level.\n");
  return 0;
}
