// Domain-specific example 1: scalability triage of a stencil application.
//
// Runs the convolution benchmark (the paper's Sec. 5.1 workload) at a few
// scales in FULL fidelity on small data — real pixels move, the result is
// written as a PPM you can open — then performs the partial-speedup-bound
// analysis and tells you which section will cap the application first.
//
//   build/examples/convolution_scaling [--width N --height N --steps N]
#include <cstdio>
#include <map>

#include "apps/convolution/convolution.hpp"
#include "core/speedup/partial_bound.hpp"
#include "core/speedup/report.hpp"
#include "mpisim/session.hpp"
#include "profiler/section_profiler.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace mpisect;

namespace {

struct Point {
  double walltime = 0.0;
  std::map<std::string, std::pair<double, double>> sections;  // mean, total
};

Point run_at(int p, const apps::conv::ConvolutionConfig& base) {
  const auto world_ptr =
      mpisim::Session(p)
          .world_builder()
          .machine(mpisim::MachineModel::nehalem_cluster())
          .build();
  mpisim::World& world = *world_ptr;
  sections::SectionRuntime::install(world);
  profiler::SectionProfiler prof(world);
  apps::conv::ConvolutionConfig cfg = base;
  if (p > 1) cfg.store_path.clear();  // write the image once, from the p=1 run
  apps::conv::ConvolutionApp app(cfg);
  world.run(std::ref(app));
  Point pt;
  pt.walltime = world.elapsed();
  for (const auto& t : prof.totals()) {
    pt.sections[t.label] = {t.mean_per_process, t.total_time};
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  support::ArgParser args("convolution_scaling",
                          "Partial-speedup-bound triage of a stencil app");
  args.add_int("width", 192, "image width (full fidelity: keep it small)");
  args.add_int("height", 144, "image height");
  args.add_int("steps", 30, "convolution steps");
  if (!args.parse(argc, argv)) return 1;

  apps::conv::ConvolutionConfig cfg;
  cfg.width = static_cast<int>(args.get_int("width"));
  cfg.height = static_cast<int>(args.get_int("height"));
  cfg.steps = static_cast<int>(args.get_int("steps"));
  cfg.full_fidelity = true;  // real pixels, verifiable output
  cfg.store_path = "convolution_result.ppm";

  const std::vector<int> ps{1, 2, 4, 8, 16};
  std::map<int, Point> sweep;
  for (const int p : ps) {
    sweep[p] = run_at(p, cfg);
    std::printf("p=%2d: virtual walltime %.4f s\n", p, sweep[p].walltime);
  }
  std::printf("(result image written to %s by the sequential run)\n\n",
              cfg.store_path.c_str());

  // Assemble the Eq. 6 analysis from the profiler numbers.
  speedup::BoundAnalysis analysis(sweep[1].walltime);
  for (const char* label : {"CONVOLVE", "HALO", "SCATTER", "GATHER"}) {
    speedup::SectionScaling s;
    s.label = label;
    for (const int p : ps) {
      const auto it = sweep[p].sections.find(label);
      if (it == sweep[p].sections.end() || it->second.first <= 0.0) continue;
      s.per_process.add(p, it->second.first);
      s.total.add(p, it->second.second);
    }
    analysis.add_section(std::move(s));
  }

  std::printf("which section caps the speedup at each scale (Eq. 6):\n");
  std::fputs(speedup::render_binding_table(analysis).c_str(), stdout);

  speedup::ScalingSeries wall("walltime");
  for (const int p : ps) wall.add(p, sweep[p].walltime);
  std::fputs(speedup::summarize_speedup(wall).c_str(), stdout);
  std::printf(
      "\ntriage recipe: the 'binding section' column is where optimization\n"
      "effort pays off — any other section, by Eq. 6, cannot lift the\n"
      "application past the binding section's bound.\n");
  return 0;
}
