file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_validation.dir/bench_ablation_validation.cpp.o"
  "CMakeFiles/bench_ablation_validation.dir/bench_ablation_validation.cpp.o.d"
  "bench_ablation_validation"
  "bench_ablation_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
