file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collalgo.dir/bench_ablation_collalgo.cpp.o"
  "CMakeFiles/bench_ablation_collalgo.dir/bench_ablation_collalgo.cpp.o.d"
  "bench_ablation_collalgo"
  "bench_ablation_collalgo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collalgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
