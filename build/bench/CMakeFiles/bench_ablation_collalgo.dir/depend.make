# Empty dependencies file for bench_ablation_collalgo.
# This may be replaced when dependencies are built.
