# Empty compiler generated dependencies file for bench_ablation_weakscaling.
# This may be replaced when dependencies are built.
