file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weakscaling.dir/bench_ablation_weakscaling.cpp.o"
  "CMakeFiles/bench_ablation_weakscaling.dir/bench_ablation_weakscaling.cpp.o.d"
  "bench_ablation_weakscaling"
  "bench_ablation_weakscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weakscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
