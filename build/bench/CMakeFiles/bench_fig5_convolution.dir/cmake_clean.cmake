file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_convolution.dir/bench_fig5_convolution.cpp.o"
  "CMakeFiles/bench_fig5_convolution.dir/bench_fig5_convolution.cpp.o.d"
  "bench_fig5_convolution"
  "bench_fig5_convolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
