file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_lulesh_broadwell.dir/bench_fig8_lulesh_broadwell.cpp.o"
  "CMakeFiles/bench_fig8_lulesh_broadwell.dir/bench_fig8_lulesh_broadwell.cpp.o.d"
  "bench_fig8_lulesh_broadwell"
  "bench_fig8_lulesh_broadwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_lulesh_broadwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
