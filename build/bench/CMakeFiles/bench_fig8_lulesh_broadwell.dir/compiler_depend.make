# Empty compiler generated dependencies file for bench_fig8_lulesh_broadwell.
# This may be replaced when dependencies are built.
