# Empty compiler generated dependencies file for bench_ablation_pcontrol.
# This may be replaced when dependencies are built.
