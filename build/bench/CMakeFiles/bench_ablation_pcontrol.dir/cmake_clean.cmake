file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcontrol.dir/bench_ablation_pcontrol.cpp.o"
  "CMakeFiles/bench_ablation_pcontrol.dir/bench_ablation_pcontrol.cpp.o.d"
  "bench_ablation_pcontrol"
  "bench_ablation_pcontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
