file(REMOVE_RECURSE
  "libmpisect_bench_common.a"
)
