# Empty dependencies file for mpisect_bench_common.
# This may be replaced when dependencies are built.
