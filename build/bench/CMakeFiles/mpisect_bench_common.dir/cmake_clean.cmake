file(REMOVE_RECURSE
  "CMakeFiles/mpisect_bench_common.dir/common.cpp.o"
  "CMakeFiles/mpisect_bench_common.dir/common.cpp.o.d"
  "libmpisect_bench_common.a"
  "libmpisect_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
