# Empty dependencies file for bench_table7_configs.
# This may be replaced when dependencies are built.
