# Empty dependencies file for bench_fig10_knl_inflexion.
# This may be replaced when dependencies are built.
