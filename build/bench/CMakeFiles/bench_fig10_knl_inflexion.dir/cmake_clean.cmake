file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_knl_inflexion.dir/bench_fig10_knl_inflexion.cpp.o"
  "CMakeFiles/bench_fig10_knl_inflexion.dir/bench_fig10_knl_inflexion.cpp.o.d"
  "bench_fig10_knl_inflexion"
  "bench_fig10_knl_inflexion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_knl_inflexion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
