file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lulesh_knl.dir/bench_fig9_lulesh_knl.cpp.o"
  "CMakeFiles/bench_fig9_lulesh_knl.dir/bench_fig9_lulesh_knl.cpp.o.d"
  "bench_fig9_lulesh_knl"
  "bench_fig9_lulesh_knl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lulesh_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
