# Empty dependencies file for bench_fig9_lulesh_knl.
# This may be replaced when dependencies are built.
