# Empty compiler generated dependencies file for bench_micro_sections.
# This may be replaced when dependencies are built.
