file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sections.dir/bench_micro_sections.cpp.o"
  "CMakeFiles/bench_micro_sections.dir/bench_micro_sections.cpp.o.d"
  "bench_micro_sections"
  "bench_micro_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
