file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_jitter.dir/bench_ablation_jitter.cpp.o"
  "CMakeFiles/bench_ablation_jitter.dir/bench_ablation_jitter.cpp.o.d"
  "bench_ablation_jitter"
  "bench_ablation_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
