file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_halo.dir/bench_sec3_halo.cpp.o"
  "CMakeFiles/bench_sec3_halo.dir/bench_sec3_halo.cpp.o.d"
  "bench_sec3_halo"
  "bench_sec3_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
