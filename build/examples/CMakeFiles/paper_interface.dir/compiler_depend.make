# Empty compiler generated dependencies file for paper_interface.
# This may be replaced when dependencies are built.
