file(REMOVE_RECURSE
  "CMakeFiles/paper_interface.dir/paper_interface.cpp.o"
  "CMakeFiles/paper_interface.dir/paper_interface.cpp.o.d"
  "paper_interface"
  "paper_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
