file(REMOVE_RECURSE
  "CMakeFiles/convolution_scaling.dir/convolution_scaling.cpp.o"
  "CMakeFiles/convolution_scaling.dir/convolution_scaling.cpp.o.d"
  "convolution_scaling"
  "convolution_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolution_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
