# Empty dependencies file for convolution_scaling.
# This may be replaced when dependencies are built.
