file(REMOVE_RECURSE
  "CMakeFiles/hybrid_lulesh.dir/hybrid_lulesh.cpp.o"
  "CMakeFiles/hybrid_lulesh.dir/hybrid_lulesh.cpp.o.d"
  "hybrid_lulesh"
  "hybrid_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
