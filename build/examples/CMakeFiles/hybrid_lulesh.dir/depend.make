# Empty dependencies file for hybrid_lulesh.
# This may be replaced when dependencies are built.
