# Empty dependencies file for tool_integration.
# This may be replaced when dependencies are built.
