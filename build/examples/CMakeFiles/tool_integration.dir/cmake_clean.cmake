file(REMOVE_RECURSE
  "CMakeFiles/tool_integration.dir/tool_integration.cpp.o"
  "CMakeFiles/tool_integration.dir/tool_integration.cpp.o.d"
  "tool_integration"
  "tool_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
