# Empty dependencies file for test_mpisim_comm_mgmt.
# This may be replaced when dependencies are built.
