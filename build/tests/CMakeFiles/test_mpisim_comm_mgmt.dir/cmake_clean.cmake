file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim_comm_mgmt.dir/test_mpisim_comm_mgmt.cpp.o"
  "CMakeFiles/test_mpisim_comm_mgmt.dir/test_mpisim_comm_mgmt.cpp.o.d"
  "test_mpisim_comm_mgmt"
  "test_mpisim_comm_mgmt.pdb"
  "test_mpisim_comm_mgmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim_comm_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
