# Empty dependencies file for test_halo_model.
# This may be replaced when dependencies are built.
