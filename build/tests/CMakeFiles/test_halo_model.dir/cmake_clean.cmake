file(REMOVE_RECURSE
  "CMakeFiles/test_halo_model.dir/test_halo_model.cpp.o"
  "CMakeFiles/test_halo_model.dir/test_halo_model.cpp.o.d"
  "test_halo_model"
  "test_halo_model.pdb"
  "test_halo_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
