# Empty dependencies file for test_mpisim_p2p.
# This may be replaced when dependencies are built.
