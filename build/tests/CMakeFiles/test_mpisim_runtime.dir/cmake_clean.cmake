file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim_runtime.dir/test_mpisim_runtime.cpp.o"
  "CMakeFiles/test_mpisim_runtime.dir/test_mpisim_runtime.cpp.o.d"
  "test_mpisim_runtime"
  "test_mpisim_runtime.pdb"
  "test_mpisim_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
