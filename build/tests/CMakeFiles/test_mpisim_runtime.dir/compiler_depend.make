# Empty compiler generated dependencies file for test_mpisim_runtime.
# This may be replaced when dependencies are built.
