# Empty compiler generated dependencies file for test_sections_runtime.
# This may be replaced when dependencies are built.
