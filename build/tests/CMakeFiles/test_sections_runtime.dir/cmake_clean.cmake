file(REMOVE_RECURSE
  "CMakeFiles/test_sections_runtime.dir/test_sections_runtime.cpp.o"
  "CMakeFiles/test_sections_runtime.dir/test_sections_runtime.cpp.o.d"
  "test_sections_runtime"
  "test_sections_runtime.pdb"
  "test_sections_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sections_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
