file(REMOVE_RECURSE
  "CMakeFiles/test_lulesh_mesh.dir/test_lulesh_mesh.cpp.o"
  "CMakeFiles/test_lulesh_mesh.dir/test_lulesh_mesh.cpp.o.d"
  "test_lulesh_mesh"
  "test_lulesh_mesh.pdb"
  "test_lulesh_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lulesh_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
