# Empty dependencies file for test_lulesh_mesh.
# This may be replaced when dependencies are built.
