file(REMOVE_RECURSE
  "CMakeFiles/test_speedup_laws.dir/test_speedup_laws.cpp.o"
  "CMakeFiles/test_speedup_laws.dir/test_speedup_laws.cpp.o.d"
  "test_speedup_laws"
  "test_speedup_laws.pdb"
  "test_speedup_laws[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speedup_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
