# Empty dependencies file for test_speedup_laws.
# This may be replaced when dependencies are built.
