# Empty dependencies file for test_minomp.
# This may be replaced when dependencies are built.
