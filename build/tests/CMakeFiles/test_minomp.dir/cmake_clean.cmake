file(REMOVE_RECURSE
  "CMakeFiles/test_minomp.dir/test_minomp.cpp.o"
  "CMakeFiles/test_minomp.dir/test_minomp.cpp.o.d"
  "test_minomp"
  "test_minomp.pdb"
  "test_minomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
