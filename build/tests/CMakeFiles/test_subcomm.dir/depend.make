# Empty dependencies file for test_subcomm.
# This may be replaced when dependencies are built.
