file(REMOVE_RECURSE
  "CMakeFiles/test_subcomm.dir/test_subcomm.cpp.o"
  "CMakeFiles/test_subcomm.dir/test_subcomm.cpp.o.d"
  "test_subcomm"
  "test_subcomm.pdb"
  "test_subcomm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subcomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
