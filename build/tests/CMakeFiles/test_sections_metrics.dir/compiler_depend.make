# Empty compiler generated dependencies file for test_sections_metrics.
# This may be replaced when dependencies are built.
