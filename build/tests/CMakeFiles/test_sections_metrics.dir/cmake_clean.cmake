file(REMOVE_RECURSE
  "CMakeFiles/test_sections_metrics.dir/test_sections_metrics.cpp.o"
  "CMakeFiles/test_sections_metrics.dir/test_sections_metrics.cpp.o.d"
  "test_sections_metrics"
  "test_sections_metrics.pdb"
  "test_sections_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sections_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
