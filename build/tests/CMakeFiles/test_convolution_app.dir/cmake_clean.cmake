file(REMOVE_RECURSE
  "CMakeFiles/test_convolution_app.dir/test_convolution_app.cpp.o"
  "CMakeFiles/test_convolution_app.dir/test_convolution_app.cpp.o.d"
  "test_convolution_app"
  "test_convolution_app.pdb"
  "test_convolution_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convolution_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
