# Empty compiler generated dependencies file for test_convolution_app.
# This may be replaced when dependencies are built.
