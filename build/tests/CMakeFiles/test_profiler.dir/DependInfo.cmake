
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/test_profiler.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_profiler.dir/test_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mpisect_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/mpisect_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpisect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minomp/CMakeFiles/mpisect_minomp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/mpisect_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpisect_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
