# Empty compiler generated dependencies file for test_pcontrol.
# This may be replaced when dependencies are built.
