file(REMOVE_RECURSE
  "CMakeFiles/test_pcontrol.dir/test_pcontrol.cpp.o"
  "CMakeFiles/test_pcontrol.dir/test_pcontrol.cpp.o.d"
  "test_pcontrol"
  "test_pcontrol.pdb"
  "test_pcontrol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
