# Empty dependencies file for test_lulesh_app.
# This may be replaced when dependencies are built.
