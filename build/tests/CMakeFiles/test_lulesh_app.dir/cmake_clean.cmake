file(REMOVE_RECURSE
  "CMakeFiles/test_lulesh_app.dir/test_lulesh_app.cpp.o"
  "CMakeFiles/test_lulesh_app.dir/test_lulesh_app.cpp.o.d"
  "test_lulesh_app"
  "test_lulesh_app.pdb"
  "test_lulesh_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lulesh_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
