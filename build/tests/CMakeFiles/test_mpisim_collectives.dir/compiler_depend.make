# Empty compiler generated dependencies file for test_mpisim_collectives.
# This may be replaced when dependencies are built.
