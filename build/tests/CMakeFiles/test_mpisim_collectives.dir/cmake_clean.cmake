file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim_collectives.dir/test_mpisim_collectives.cpp.o"
  "CMakeFiles/test_mpisim_collectives.dir/test_mpisim_collectives.cpp.o.d"
  "test_mpisim_collectives"
  "test_mpisim_collectives.pdb"
  "test_mpisim_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
