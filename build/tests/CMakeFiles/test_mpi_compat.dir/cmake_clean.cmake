file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_compat.dir/test_mpi_compat.cpp.o"
  "CMakeFiles/test_mpi_compat.dir/test_mpi_compat.cpp.o.d"
  "test_mpi_compat"
  "test_mpi_compat.pdb"
  "test_mpi_compat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
