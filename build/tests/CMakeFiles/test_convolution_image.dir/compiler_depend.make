# Empty compiler generated dependencies file for test_convolution_image.
# This may be replaced when dependencies are built.
