file(REMOVE_RECURSE
  "CMakeFiles/test_convolution_image.dir/test_convolution_image.cpp.o"
  "CMakeFiles/test_convolution_image.dir/test_convolution_image.cpp.o.d"
  "test_convolution_image"
  "test_convolution_image.pdb"
  "test_convolution_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convolution_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
