# Empty dependencies file for test_collalgo.
# This may be replaced when dependencies are built.
