file(REMOVE_RECURSE
  "CMakeFiles/test_collalgo.dir/test_collalgo.cpp.o"
  "CMakeFiles/test_collalgo.dir/test_collalgo.cpp.o.d"
  "test_collalgo"
  "test_collalgo.pdb"
  "test_collalgo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collalgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
