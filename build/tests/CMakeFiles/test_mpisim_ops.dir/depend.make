# Empty dependencies file for test_mpisim_ops.
# This may be replaced when dependencies are built.
