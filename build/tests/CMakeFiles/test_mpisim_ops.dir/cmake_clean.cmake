file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim_ops.dir/test_mpisim_ops.cpp.o"
  "CMakeFiles/test_mpisim_ops.dir/test_mpisim_ops.cpp.o.d"
  "test_mpisim_ops"
  "test_mpisim_ops.pdb"
  "test_mpisim_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
