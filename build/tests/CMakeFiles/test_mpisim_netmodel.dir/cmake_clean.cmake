file(REMOVE_RECURSE
  "CMakeFiles/test_mpisim_netmodel.dir/test_mpisim_netmodel.cpp.o"
  "CMakeFiles/test_mpisim_netmodel.dir/test_mpisim_netmodel.cpp.o.d"
  "test_mpisim_netmodel"
  "test_mpisim_netmodel.pdb"
  "test_mpisim_netmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpisim_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
