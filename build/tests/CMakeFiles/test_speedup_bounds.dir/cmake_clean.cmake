file(REMOVE_RECURSE
  "CMakeFiles/test_speedup_bounds.dir/test_speedup_bounds.cpp.o"
  "CMakeFiles/test_speedup_bounds.dir/test_speedup_bounds.cpp.o.d"
  "test_speedup_bounds"
  "test_speedup_bounds.pdb"
  "test_speedup_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speedup_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
