# Empty compiler generated dependencies file for test_speedup_bounds.
# This may be replaced when dependencies are built.
