file(REMOVE_RECURSE
  "CMakeFiles/test_lulesh_comm.dir/test_lulesh_comm.cpp.o"
  "CMakeFiles/test_lulesh_comm.dir/test_lulesh_comm.cpp.o.d"
  "test_lulesh_comm"
  "test_lulesh_comm.pdb"
  "test_lulesh_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lulesh_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
