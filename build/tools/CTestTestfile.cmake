# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools.report_text "/root/repo/build/tools/mpisect-report" "--app" "convolution" "--ranks" "4" "--steps" "10" "--machine" "ideal" "--format" "text")
set_tests_properties(tools.report_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.report_tree "/root/repo/build/tools/mpisect-report" "--app" "lulesh" "--ranks" "8" "--threads" "4" "--steps" "3" "--size" "4" "--machine" "knl" "--format" "tree")
set_tests_properties(tools.report_tree PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.report_balance "/root/repo/build/tools/mpisect-report" "--app" "convolution" "--ranks" "4" "--steps" "5" "--machine" "ideal" "--format" "balance")
set_tests_properties(tools.report_balance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools.diff_roundtrip "/usr/bin/cmake" "-DREPORT=/root/repo/build/tools/mpisect-report" "-DDIFF=/root/repo/build/tools/mpisect-diff" "-P" "/root/repo/tools/diff_roundtrip.cmake")
set_tests_properties(tools.diff_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
