file(REMOVE_RECURSE
  "CMakeFiles/mpisect-report.dir/mpisect_report.cpp.o"
  "CMakeFiles/mpisect-report.dir/mpisect_report.cpp.o.d"
  "mpisect-report"
  "mpisect-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
