# Empty dependencies file for mpisect-report.
# This may be replaced when dependencies are built.
