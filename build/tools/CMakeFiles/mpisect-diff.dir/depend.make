# Empty dependencies file for mpisect-diff.
# This may be replaced when dependencies are built.
