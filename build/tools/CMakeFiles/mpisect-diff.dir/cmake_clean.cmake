file(REMOVE_RECURSE
  "CMakeFiles/mpisect-diff.dir/mpisect_diff.cpp.o"
  "CMakeFiles/mpisect-diff.dir/mpisect_diff.cpp.o.d"
  "mpisect-diff"
  "mpisect-diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect-diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
