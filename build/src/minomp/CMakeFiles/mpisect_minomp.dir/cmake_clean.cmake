file(REMOVE_RECURSE
  "CMakeFiles/mpisect_minomp.dir/model.cpp.o"
  "CMakeFiles/mpisect_minomp.dir/model.cpp.o.d"
  "CMakeFiles/mpisect_minomp.dir/schedule.cpp.o"
  "CMakeFiles/mpisect_minomp.dir/schedule.cpp.o.d"
  "CMakeFiles/mpisect_minomp.dir/team.cpp.o"
  "CMakeFiles/mpisect_minomp.dir/team.cpp.o.d"
  "libmpisect_minomp.a"
  "libmpisect_minomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_minomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
