file(REMOVE_RECURSE
  "libmpisect_minomp.a"
)
