# Empty dependencies file for mpisect_minomp.
# This may be replaced when dependencies are built.
