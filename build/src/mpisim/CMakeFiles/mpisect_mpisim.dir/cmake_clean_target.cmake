file(REMOVE_RECURSE
  "libmpisect_mpisim.a"
)
