file(REMOVE_RECURSE
  "CMakeFiles/mpisect_mpisim.dir/channel.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/channel.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/comm.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/comm.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/datatype.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/datatype.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/error.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/error.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/hooks.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/hooks.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/machine.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/machine.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/netmodel.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/netmodel.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/op.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/op.cpp.o.d"
  "CMakeFiles/mpisect_mpisim.dir/runtime.cpp.o"
  "CMakeFiles/mpisect_mpisim.dir/runtime.cpp.o.d"
  "libmpisect_mpisim.a"
  "libmpisect_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
