
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/channel.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/channel.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/channel.cpp.o.d"
  "/root/repo/src/mpisim/comm.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/comm.cpp.o.d"
  "/root/repo/src/mpisim/datatype.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/datatype.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/datatype.cpp.o.d"
  "/root/repo/src/mpisim/error.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/error.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/error.cpp.o.d"
  "/root/repo/src/mpisim/hooks.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/hooks.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/hooks.cpp.o.d"
  "/root/repo/src/mpisim/machine.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/machine.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/machine.cpp.o.d"
  "/root/repo/src/mpisim/netmodel.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/netmodel.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/netmodel.cpp.o.d"
  "/root/repo/src/mpisim/op.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/op.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/op.cpp.o.d"
  "/root/repo/src/mpisim/runtime.cpp" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/runtime.cpp.o" "gcc" "src/mpisim/CMakeFiles/mpisect_mpisim.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mpisect_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
