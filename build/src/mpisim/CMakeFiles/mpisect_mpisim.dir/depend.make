# Empty dependencies file for mpisect_mpisim.
# This may be replaced when dependencies are built.
