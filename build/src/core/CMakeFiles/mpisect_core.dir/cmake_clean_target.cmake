file(REMOVE_RECURSE
  "libmpisect_core.a"
)
