# Empty dependencies file for mpisect_core.
# This may be replaced when dependencies are built.
