
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compat/mpi_compat.cpp" "src/core/CMakeFiles/mpisect_core.dir/compat/mpi_compat.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/compat/mpi_compat.cpp.o.d"
  "/root/repo/src/core/sections/api.cpp" "src/core/CMakeFiles/mpisect_core.dir/sections/api.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/sections/api.cpp.o.d"
  "/root/repo/src/core/sections/labels.cpp" "src/core/CMakeFiles/mpisect_core.dir/sections/labels.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/sections/labels.cpp.o.d"
  "/root/repo/src/core/sections/metrics.cpp" "src/core/CMakeFiles/mpisect_core.dir/sections/metrics.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/sections/metrics.cpp.o.d"
  "/root/repo/src/core/sections/runtime.cpp" "src/core/CMakeFiles/mpisect_core.dir/sections/runtime.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/sections/runtime.cpp.o.d"
  "/root/repo/src/core/speedup/adaptive.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/adaptive.cpp.o.d"
  "/root/repo/src/core/speedup/halo_model.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/halo_model.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/halo_model.cpp.o.d"
  "/root/repo/src/core/speedup/inflexion.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/inflexion.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/inflexion.cpp.o.d"
  "/root/repo/src/core/speedup/laws.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/laws.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/laws.cpp.o.d"
  "/root/repo/src/core/speedup/partial_bound.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/partial_bound.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/partial_bound.cpp.o.d"
  "/root/repo/src/core/speedup/report.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/report.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/report.cpp.o.d"
  "/root/repo/src/core/speedup/series.cpp" "src/core/CMakeFiles/mpisect_core.dir/speedup/series.cpp.o" "gcc" "src/core/CMakeFiles/mpisect_core.dir/speedup/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpisim/CMakeFiles/mpisect_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpisect_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
