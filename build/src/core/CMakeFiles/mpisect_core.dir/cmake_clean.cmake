file(REMOVE_RECURSE
  "CMakeFiles/mpisect_core.dir/compat/mpi_compat.cpp.o"
  "CMakeFiles/mpisect_core.dir/compat/mpi_compat.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/sections/api.cpp.o"
  "CMakeFiles/mpisect_core.dir/sections/api.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/sections/labels.cpp.o"
  "CMakeFiles/mpisect_core.dir/sections/labels.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/sections/metrics.cpp.o"
  "CMakeFiles/mpisect_core.dir/sections/metrics.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/sections/runtime.cpp.o"
  "CMakeFiles/mpisect_core.dir/sections/runtime.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/adaptive.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/adaptive.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/halo_model.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/halo_model.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/inflexion.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/inflexion.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/laws.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/laws.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/partial_bound.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/partial_bound.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/report.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/report.cpp.o.d"
  "CMakeFiles/mpisect_core.dir/speedup/series.cpp.o"
  "CMakeFiles/mpisect_core.dir/speedup/series.cpp.o.d"
  "libmpisect_core.a"
  "libmpisect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
