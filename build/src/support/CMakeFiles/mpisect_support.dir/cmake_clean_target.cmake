file(REMOVE_RECURSE
  "libmpisect_support.a"
)
