file(REMOVE_RECURSE
  "CMakeFiles/mpisect_support.dir/chart.cpp.o"
  "CMakeFiles/mpisect_support.dir/chart.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/cli.cpp.o"
  "CMakeFiles/mpisect_support.dir/cli.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/csv.cpp.o"
  "CMakeFiles/mpisect_support.dir/csv.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/histogram.cpp.o"
  "CMakeFiles/mpisect_support.dir/histogram.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/log.cpp.o"
  "CMakeFiles/mpisect_support.dir/log.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/rng.cpp.o"
  "CMakeFiles/mpisect_support.dir/rng.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/stats.cpp.o"
  "CMakeFiles/mpisect_support.dir/stats.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/strings.cpp.o"
  "CMakeFiles/mpisect_support.dir/strings.cpp.o.d"
  "CMakeFiles/mpisect_support.dir/table.cpp.o"
  "CMakeFiles/mpisect_support.dir/table.cpp.o.d"
  "libmpisect_support.a"
  "libmpisect_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
