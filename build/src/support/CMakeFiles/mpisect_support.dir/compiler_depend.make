# Empty compiler generated dependencies file for mpisect_support.
# This may be replaced when dependencies are built.
