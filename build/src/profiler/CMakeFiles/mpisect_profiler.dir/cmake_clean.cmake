file(REMOVE_RECURSE
  "CMakeFiles/mpisect_profiler.dir/balance.cpp.o"
  "CMakeFiles/mpisect_profiler.dir/balance.cpp.o.d"
  "CMakeFiles/mpisect_profiler.dir/diff.cpp.o"
  "CMakeFiles/mpisect_profiler.dir/diff.cpp.o.d"
  "CMakeFiles/mpisect_profiler.dir/pcontrol.cpp.o"
  "CMakeFiles/mpisect_profiler.dir/pcontrol.cpp.o.d"
  "CMakeFiles/mpisect_profiler.dir/report.cpp.o"
  "CMakeFiles/mpisect_profiler.dir/report.cpp.o.d"
  "CMakeFiles/mpisect_profiler.dir/section_profiler.cpp.o"
  "CMakeFiles/mpisect_profiler.dir/section_profiler.cpp.o.d"
  "CMakeFiles/mpisect_profiler.dir/tree.cpp.o"
  "CMakeFiles/mpisect_profiler.dir/tree.cpp.o.d"
  "libmpisect_profiler.a"
  "libmpisect_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
