
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/balance.cpp" "src/profiler/CMakeFiles/mpisect_profiler.dir/balance.cpp.o" "gcc" "src/profiler/CMakeFiles/mpisect_profiler.dir/balance.cpp.o.d"
  "/root/repo/src/profiler/diff.cpp" "src/profiler/CMakeFiles/mpisect_profiler.dir/diff.cpp.o" "gcc" "src/profiler/CMakeFiles/mpisect_profiler.dir/diff.cpp.o.d"
  "/root/repo/src/profiler/pcontrol.cpp" "src/profiler/CMakeFiles/mpisect_profiler.dir/pcontrol.cpp.o" "gcc" "src/profiler/CMakeFiles/mpisect_profiler.dir/pcontrol.cpp.o.d"
  "/root/repo/src/profiler/report.cpp" "src/profiler/CMakeFiles/mpisect_profiler.dir/report.cpp.o" "gcc" "src/profiler/CMakeFiles/mpisect_profiler.dir/report.cpp.o.d"
  "/root/repo/src/profiler/section_profiler.cpp" "src/profiler/CMakeFiles/mpisect_profiler.dir/section_profiler.cpp.o" "gcc" "src/profiler/CMakeFiles/mpisect_profiler.dir/section_profiler.cpp.o.d"
  "/root/repo/src/profiler/tree.cpp" "src/profiler/CMakeFiles/mpisect_profiler.dir/tree.cpp.o" "gcc" "src/profiler/CMakeFiles/mpisect_profiler.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpisect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/mpisect_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpisect_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
