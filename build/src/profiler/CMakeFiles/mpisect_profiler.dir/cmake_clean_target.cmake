file(REMOVE_RECURSE
  "libmpisect_profiler.a"
)
