# Empty compiler generated dependencies file for mpisect_profiler.
# This may be replaced when dependencies are built.
