# Empty dependencies file for mpisect_apps.
# This may be replaced when dependencies are built.
