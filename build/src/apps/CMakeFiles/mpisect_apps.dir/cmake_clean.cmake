file(REMOVE_RECURSE
  "CMakeFiles/mpisect_apps.dir/convolution/convolution.cpp.o"
  "CMakeFiles/mpisect_apps.dir/convolution/convolution.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/convolution/decomp.cpp.o"
  "CMakeFiles/mpisect_apps.dir/convolution/decomp.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/convolution/image.cpp.o"
  "CMakeFiles/mpisect_apps.dir/convolution/image.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/convolution/stencil.cpp.o"
  "CMakeFiles/mpisect_apps.dir/convolution/stencil.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/lulesh/comm.cpp.o"
  "CMakeFiles/mpisect_apps.dir/lulesh/comm.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/lulesh/domain.cpp.o"
  "CMakeFiles/mpisect_apps.dir/lulesh/domain.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/lulesh/kernels.cpp.o"
  "CMakeFiles/mpisect_apps.dir/lulesh/kernels.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/lulesh/lulesh.cpp.o"
  "CMakeFiles/mpisect_apps.dir/lulesh/lulesh.cpp.o.d"
  "CMakeFiles/mpisect_apps.dir/lulesh/mesh.cpp.o"
  "CMakeFiles/mpisect_apps.dir/lulesh/mesh.cpp.o.d"
  "libmpisect_apps.a"
  "libmpisect_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisect_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
