file(REMOVE_RECURSE
  "libmpisect_apps.a"
)
