
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/convolution/convolution.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/convolution.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/convolution.cpp.o.d"
  "/root/repo/src/apps/convolution/decomp.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/decomp.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/decomp.cpp.o.d"
  "/root/repo/src/apps/convolution/image.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/image.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/image.cpp.o.d"
  "/root/repo/src/apps/convolution/stencil.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/convolution/stencil.cpp.o.d"
  "/root/repo/src/apps/lulesh/comm.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/comm.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/comm.cpp.o.d"
  "/root/repo/src/apps/lulesh/domain.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/domain.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/domain.cpp.o.d"
  "/root/repo/src/apps/lulesh/kernels.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/kernels.cpp.o.d"
  "/root/repo/src/apps/lulesh/lulesh.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/lulesh.cpp.o.d"
  "/root/repo/src/apps/lulesh/mesh.cpp" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/mesh.cpp.o" "gcc" "src/apps/CMakeFiles/mpisect_apps.dir/lulesh/mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpisect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minomp/CMakeFiles/mpisect_minomp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/mpisect_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mpisect_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
